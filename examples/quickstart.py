#!/usr/bin/env python
"""Quickstart: a mobile subscriber surviving a handoff under MHH.

Builds a 4x4 broker grid, attaches a publisher and a mobile subscriber,
publishes while the subscriber is offline and moving, and shows that the
stored backlog follows the client to its new broker with exactly-once,
in-order delivery and a sub-second handoff delay.

Run:  python examples/quickstart.py
"""

from repro import PubSubSystem, RangeFilter


def main() -> None:
    # a 4x4 grid of brokers running the MHH mobility protocol
    system = PubSubSystem(grid_k=4, protocol="mhh", seed=42)

    # a mobile subscriber interested in "topics" 0.0 .. 0.5,
    # and a static publisher in the opposite corner
    subscriber = system.add_client(RangeFilter(0.0, 0.5), broker=0, mobile=True)
    publisher = system.add_client(RangeFilter(2.0, 2.0), broker=15)
    subscriber.connect(0)
    publisher.connect(15)
    system.run(until=2_000.0)  # let the subscription propagate

    # live delivery while connected
    publisher.publish(topic=0.25)
    system.run(until=4_000.0)
    print(f"live deliveries: {system.metrics.delivery.stats.delivered}")

    # the subscriber drops off the network; events pile up at its broker
    subscriber.disconnect()
    system.run(until=6_000.0)
    for i in range(5):
        publisher.publish(topic=0.1 * i / 5)
    system.run(until=10_000.0)

    # silent move: reconnect at a different broker — MHH migrates the
    # subscription hop-by-hop and streams the stored queue over
    subscriber.connect(10)
    system.run()

    stats = system.metrics.delivery.stats
    delay = system.metrics.handoffs.mean_delay()
    print(f"total deliveries:      {stats.delivered} (expected {stats.expected})")
    print(f"duplicates:            {stats.duplicates}")
    print(f"order violations:      {stats.order_violations}")
    print(f"handoff delay:         {delay:.0f} ms")
    print(f"mobility overhead:     "
          f"{system.metrics.traffic.overhead_hops()} wired hops")

    assert stats.delivered == stats.expected == 6
    assert stats.duplicates == stats.order_violations == 0
    print("OK: exactly-once, in-order delivery across the handoff")


if __name__ == "__main__":
    main()
