#!/usr/bin/env python
"""Frequent moving and the distributed PQlist (paper §4.3).

A commuter's phone flaps between cells faster than its stored backlog can
be shipped. Under basic handoff thinking the backlog would chase the phone
from broker to broker; MHH instead *stops* interrupted event migrations
(``stop_event_migration``) and leaves the queues where they are, linked
into the distributed PQlist. Only the final, stable reconnection drains
the list — once.

The script traces the stop/relink decisions and compares the event-
migration traffic with the ``mhh-nopqlist`` ablation that always lets
migrations run to completion.

Run:  python examples/frequent_mobility.py
"""

from repro import PubSubSystem, RangeFilter

CELL_ROUTE = [24, 4, 20, 2, 14]   # cells the phone flaps through
BACKLOG = 50                      # events stored while the phone was off


def run(protocol: str, trace=None):
    system = PubSubSystem(
        grid_k=5, protocol=protocol, seed=3,
        migration_batch_size=1, trace=trace,
    )
    phone = system.add_client(RangeFilter(0.0, 0.6), broker=0, mobile=True)
    feed = system.add_client(RangeFilter(2.0, 2.0), broker=12)
    phone.connect(0)
    feed.connect(12)
    system.run(until=2_000.0)

    # overnight: the phone is off while the feed keeps publishing
    phone.disconnect()
    system.run(until=4_000.0)
    for i in range(BACKLOG):
        feed.publish(topic=0.3)
    system.run(until=10_000.0)

    # morning commute: rapid cell flapping, 80 ms of coverage per cell
    for cell in CELL_ROUTE:
        phone.connect(cell)
        system.run(until=system.sim.now + 80.0)
        phone.disconnect()
        system.run(until=system.sim.now + 60.0)

    # at the office: stable reconnection
    phone.connect(12)
    system.run()
    stats = system.metrics.delivery.stats
    return system, stats


def main() -> None:
    system, stats = run(
        "mhh", trace=["stopped_migration", "migration_complete"]
    )
    stops = system.tracer.select("stopped_migration")
    print(f"backlog size:              {BACKLOG}")
    print(f"cells flapped through:     {len(CELL_ROUTE)}")
    print(f"migrations stopped midway: {len(stops)}")
    for rec in stops:
        print(f"   t={rec.time:8.0f} ms  broker {rec.get('broker')} kept "
              f"{rec.get('kept')} queue(s) in place")
    mhh_hops = system.metrics.traffic.wired_hops.get("event_migration", 0)

    system2, stats2 = run("mhh-nopqlist")
    nopq_hops = system2.metrics.traffic.wired_hops.get("event_migration", 0)

    print(f"\nevent-migration traffic with PQlist:    {mhh_hops} hops")
    print(f"event-migration traffic without PQlist: {nopq_hops} hops")

    for s in (stats, stats2):
        assert s.delivered == s.expected
        assert s.duplicates == 0 and s.order_violations == 0
    assert len(stops) > 0, "expected at least one stopped migration"
    assert nopq_hops > mhh_hops
    print("\nOK: the PQlist kept the backlog parked while the phone "
          "flapped, and nothing was lost either way")


if __name__ == "__main__":
    main()
