#!/usr/bin/env python
"""Reliable delivery over a lossy hotspot: the same storm, twice.

The ``lossy_hotspot`` example shows the paper's protocols staying fully
*accounted* under loss — every dropped delivery written off explicitly.
This one makes the losses go away: the identical hotspot scenario (same
seed, same mobility, same 15 % delivery loss) runs once with the paper's
best-effort downlink and once with the end-to-end ACK/retransmit layer
(:mod:`repro.pubsub.reliability`) switched on, and prints the
delivery-accounting delta side by side.

What to look for: best-effort writes off every link drop as ``lost``;
the reliable run retransmits all of them away (``lost = 0``, the drops
reappear in the ``recovered`` column) at the price of some retransmit
traffic and the duplicates that lost acks produce. ``missing`` is zero
in both runs — the ledger balances whether or not the layer is on.

Run:  python examples/reliable_lossy.py
"""

from dataclasses import replace

from repro.experiments import ExperimentConfig
from repro.experiments.runner import build_system, drain_to_quiescence
from repro.network.faults import FaultProfile
from repro.workload.spec import WorkloadSpec

PROTOCOL = "mhh"

FAULTS = FaultProfile(
    deliver_loss=0.15,        # a hostile air interface: 15 % of final
    deliver_duplicate=0.05,   # deliveries vanish, 5 % arrive twice
)

SPEC = WorkloadSpec(
    clients_per_broker=5,
    mobile_fraction=0.4,
    mean_connected_s=4.0,
    mean_disconnected_s=8.0,
    publish_interval_s=20.0,
    duration_s=400.0,
    mobility_model="hotspot",
    mobility_params={"exponent": 1.3},  # broker 0 is the hot cell
    topic_skew=1.1,
)

BEST_EFFORT = ExperimentConfig(
    protocol=PROTOCOL, grid_k=4, seed=7, workload=SPEC, faults=FAULTS,
)
RELIABLE = replace(BEST_EFFORT, reliable=True, retry_budget=8)


def run(cfg: ExperimentConfig):
    system, workload = build_system(cfg)
    system.run(until=cfg.workload.duration_ms)
    workload.stop()
    drain_to_quiescence(system, workload)
    return system


def main() -> None:
    print(
        f"scenario: {PROTOCOL} on a hotspot grid, {FAULTS.label()}, "
        f"same seed twice"
    )
    print()
    header = (
        f"{'downlink':12} {'expect':>7} {'deliver':>8} {'dup':>5} "
        f"{'lost':>5} {'recov':>6} {'miss':>5} {'linkdrop':>9} {'retx':>6}"
    )
    print(header)
    print("-" * len(header))

    outcomes = {}
    for label, cfg in (("best-effort", BEST_EFFORT), ("reliable", RELIABLE)):
        system = run(cfg)
        stats = system.metrics.delivery.stats
        drops = system.fault_injector.drops
        retx = system.metrics.traffic.total_retransmits()
        outcomes[label] = (stats, drops, retx)
        print(
            f"{label:12} {stats.expected:>7} {stats.delivered:>8} "
            f"{stats.duplicates:>5} {stats.lost_explicit:>5} "
            f"{stats.recovered:>6} {stats.missing:>5} {drops:>9} {retx:>6}"
        )

    print()
    plain_stats, plain_drops, plain_retx = outcomes["best-effort"]
    rel_stats, rel_drops, rel_retx = outcomes["reliable"]
    # best-effort: every link drop is an explicit, accounted loss
    assert plain_stats.lost_explicit == plain_drops
    assert plain_stats.missing == 0
    assert plain_retx == 0
    # reliable: the drops are retransmitted away, none written off
    assert rel_drops > 0
    assert rel_stats.lost_explicit == 0
    assert rel_stats.shed == 0
    assert rel_stats.missing == 0
    assert rel_stats.recovered > 0
    assert rel_retx > 0
    print(
        f"OK: best-effort wrote off {plain_stats.lost_explicit} link drops "
        f"as lost; the reliable run recovered all {rel_drops} of its drops "
        f"({rel_stats.recovered} recovered deliveries, {rel_retx} "
        f"retransmits, 0 lost)"
    )


if __name__ == "__main__":
    main()
