#!/usr/bin/env python
"""An adversarial scenario: hotspot mobility over a lossy wireless edge.

Everything the paper's evaluation assumed away, at once: mobile clients
crowd a few popular base stations (Zipf mobility), publishers favour hot
topics (Zipf popularity), and the wireless last hop loses 10 % of
deliveries, duplicates 5 % and jitters service times — all seeded and
replayable. Each of the four protocols runs on the *identical* workload
and fault draws; the table prints the delivery audit
(:class:`repro.metrics.delivery.DeliveryStats`) plus the injected-fault
ledgers.

What to look for: every protocol stays fully *accounted* (missing = 0 —
nothing vanishes silently), the reliable protocols lose exactly what the
link dropped, and the home-broker baseline loses *more* than the link
dropped — the protocol's own triangle-routing losses, the paper's
reliability gap, now measurable under realistic link conditions.

Run:  python examples/lossy_hotspot.py
"""

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.runner import build_system, drain_to_quiescence
from repro.network.faults import FaultProfile
from repro.workload.spec import WorkloadSpec

PROTOCOLS = ("mhh", "sub-unsub", "home-broker", "two-phase")
RELIABLE = ("mhh", "sub-unsub", "two-phase")

FAULTS = FaultProfile(
    deliver_loss=0.10,        # 10 % of deliveries lost over the air
    deliver_duplicate=0.05,   # 5 % arrive twice (retransmit, ack lost)
    wireless_jitter_ms=10.0,  # service time stretches by up to 10 ms
)

SPEC = WorkloadSpec(
    clients_per_broker=5,
    mobile_fraction=0.4,
    mean_connected_s=4.0,     # rapid-fire movement: lots of handoffs and
    mean_disconnected_s=8.0,  # in-transit events when the client leaves
    publish_interval_s=20.0,
    duration_s=400.0,
    mobility_model="hotspot",
    mobility_params={"exponent": 1.3},  # broker 0 is the hot cell
    topic_skew=1.1,                     # hot topics too
)


def main() -> None:
    print(f"scenario: hotspot mobility + topic skew, {FAULTS.label()}")
    print()
    header = (
        f"{'protocol':12} {'expect':>7} {'deliver':>8} {'dup':>5} "
        f"{'lost':>5} {'miss':>5} {'order':>6} {'linkdrop':>9} {'linkdup':>8}"
    )
    print(header)
    print("-" * len(header))

    results = {}
    for protocol in PROTOCOLS:
        cfg = ExperimentConfig(
            protocol=protocol,
            grid_k=4,
            seed=7,
            workload=SPEC,
            faults=FAULTS,
        )
        system, workload = build_system(cfg)
        system.run(until=cfg.workload.duration_ms)
        workload.stop()
        drain_to_quiescence(system, workload)
        stats = system.metrics.delivery.stats
        injector = system.fault_injector
        results[protocol] = (stats, injector)
        print(
            f"{protocol:12} {stats.expected:>7} {stats.delivered:>8} "
            f"{stats.duplicates:>5} {stats.lost_explicit:>5} "
            f"{stats.missing:>5} {stats.order_violations:>6} "
            f"{injector.drops:>9} {injector.dups_delivered:>8}"
        )

    print()
    for protocol, (stats, injector) in results.items():
        # the conformance matrix, asserted (same rules the fuzzer enforces)
        assert stats.missing == 0, protocol
        assert stats.duplicates == injector.dups_delivered, protocol
        if protocol in RELIABLE:
            assert stats.lost_explicit == injector.drops, protocol
            assert stats.order_violations == 0, protocol
        else:
            assert stats.lost_explicit >= injector.drops, protocol
    hb_stats, hb_injector = results["home-broker"]
    protocol_losses = hb_stats.lost_explicit - hb_injector.drops
    print(
        "OK: all four protocols fully accounted under loss+dup+jitter; "
        f"home-broker lost {protocol_losses} event(s) of its own on top of "
        f"{hb_injector.drops} link drops"
    )


if __name__ == "__main__":
    main()
