#!/usr/bin/env python
"""Fleet-tracking scenario: proclaimed moves and the home-broker contrast.

A logistics operator runs telemetry pub/sub over a 5x5 broker grid.
Delivery vans publish position/status events; a dispatcher subscribes to
her region's event range. The dispatcher commutes between two control
rooms every day and *announces* the move before leaving — the paper's
proclaimed move (§4.1): MHH pre-stages the subscription at the destination
while she is on the road, so the backlog is already waiting when she
arrives.

The same scenario is then replayed under the home-broker protocol, whose
in-transit events are dropped when the dispatcher moves — the reliability
gap the paper calls out (§2).

Run:  python examples/fleet_tracking.py
"""

from repro import PubSubSystem, RangeFilter
from repro.sim.rng import RandomStreams

REGION = (0.2, 0.45)  # the dispatcher's responsibility range
CONTROL_ROOMS = (2, 22)
N_VANS = 6
REPORTS_PER_LEG = 8


def run_day(protocol: str) -> dict:
    system = PubSubSystem(grid_k=5, protocol=protocol, seed=11)
    rng = RandomStreams(11).stream("telemetry")

    vans = []
    for i in range(N_VANS):
        van = system.add_client(RangeFilter(2.0, 2.0), broker=(i * 7) % 25)
        van.connect(van.home_broker)
        vans.append(van)

    dispatcher = system.add_client(
        RangeFilter(*REGION), broker=CONTROL_ROOMS[0], mobile=True
    )
    dispatcher.connect(CONTROL_ROOMS[0])
    system.run(until=3_000.0)

    for leg in range(4):  # morning/evening commutes over two days
        for van in vans:
            for _ in range(REPORTS_PER_LEG):
                van.publish(topic=float(rng.uniform()))
        system.run(until=system.sim.now + 4_000.0)
        destination = CONTROL_ROOMS[(leg + 1) % 2]
        if protocol == "mhh":
            # proclaimed move: "I'm heading to the other control room"
            dispatcher.proclaim_and_disconnect(destination)
        else:
            dispatcher.disconnect()
        # vans keep reporting while the dispatcher is on the road
        for van in vans:
            van.publish(topic=float(rng.uniform()))
        system.run(until=system.sim.now + 3_000.0)
        dispatcher.connect(destination)
        system.run(until=system.sim.now + 3_000.0)
    system.run()

    stats = system.metrics.delivery.stats
    return {
        "expected": stats.expected,
        "delivered": stats.delivered,
        "lost": stats.lost_explicit,
        "duplicates": stats.duplicates,
        "order_violations": stats.order_violations,
        "mean_delay_ms": system.metrics.handoffs.mean_delay(),
    }


def main() -> None:
    mhh = run_day("mhh")
    hb = run_day("home-broker")

    print("dispatcher's day under MHH (proclaimed moves):")
    for k, v in mhh.items():
        print(f"  {k:18} {v if not isinstance(v, float) else round(v, 1)}")
    print("same day under home-broker:")
    for k, v in hb.items():
        print(f"  {k:18} {v if not isinstance(v, float) else round(v, 1)}")

    assert mhh["delivered"] == mhh["expected"]
    assert mhh["lost"] == 0 and mhh["duplicates"] == 0
    assert hb["delivered"] + hb["lost"] == hb["expected"]
    print(f"\nOK: MHH delivered everything; home-broker lost "
          f"{hb['lost']} telemetry event(s) in transit")


if __name__ == "__main__":
    main()
