#!/usr/bin/env python
"""Side-by-side protocol comparison on one identical workload.

Runs the paper's three protocols (plus the two-phase extension) on the
same seeded workload — same subscriptions, same publishes, same movement —
and prints the §5.1 metrics for each: message overhead per handoff, mean
handoff delay, and the reliability audit. A miniature, single-command
version of the paper's evaluation section.

Run:  python examples/protocol_comparison.py            (quick)
      python examples/protocol_comparison.py --paper    (full §5.1 scale)
"""

import sys

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.report import format_table
from repro.workload.spec import WorkloadSpec

PROTOCOLS = ("mhh", "sub-unsub", "home-broker", "two-phase")


def main() -> None:
    paper_scale = "--paper" in sys.argv
    if paper_scale:
        spec = WorkloadSpec(duration_s=2400.0)           # §5.1 defaults
        grid_k = 10
    else:
        spec = WorkloadSpec(
            clients_per_broker=5,
            mean_connected_s=60.0,
            mean_disconnected_s=60.0,
            publish_interval_s=60.0,
            duration_s=900.0,
        )
        grid_k = 5

    rows = []
    for protocol in PROTOCOLS:
        cfg = ExperimentConfig(
            protocol=protocol, grid_k=grid_k, seed=1, workload=spec
        )
        row = run_experiment(cfg)
        rows.append(row)
        print(f"ran {protocol:12} ({row.wall_seconds:.1f}s wall, "
              f"{row.sim_events} sim events)")

    print()
    print(format_table(rows, title="identical workload, four protocols:"))
    print()

    by_name = {r.protocol: r for r in rows}
    mhh, su, hb = by_name["mhh"], by_name["sub-unsub"], by_name["home-broker"]
    # the paper's headline comparisons
    assert mhh.missing == 0 and mhh.duplicates == 0 and mhh.lost == 0
    assert su.missing == 0 and su.duplicates == 0 and su.lost == 0
    assert hb.missing == 0  # every event delivered OR counted lost
    assert su.mean_handoff_delay_ms > mhh.mean_handoff_delay_ms
    print("OK: MHH and sub-unsub reliable; sub-unsub slower; "
          f"home-broker lost {hb.lost} event(s)")


if __name__ == "__main__":
    main()
