#!/usr/bin/env python
"""Stock-ticker scenario: a mobile trader roaming between venues.

The pub/sub deployment models a brokerage's edge network: a 5x5 grid of
event brokers, exchange gateways publishing quote events (the ``topic``
axis encodes the instrument's sector bucket), desk clients with standing
subscriptions, and one trader on the move with a tablet.

The trader hops between office floors / sites (silent moves) while quotes
keep flowing. MHH keeps the quote stream exactly-once and in per-gateway
order, and the trader starts receiving quotes again a few hundred
milliseconds after each reconnect — no re-subscription round trip across
the whole overlay.

Run:  python examples/stock_ticker.py
"""

from repro import PubSubSystem, RangeFilter
from repro.sim.rng import RandomStreams

TECH = (0.10, 0.25)     # sector bucket the trader cares about
N_GATEWAYS = 4
QUOTES_PER_GATEWAY = 30


def main() -> None:
    system = PubSubSystem(grid_k=5, protocol="mhh", seed=7)
    rng = RandomStreams(7).stream("quotes")

    # exchange gateways in the corners publish quotes for all sectors
    gateways = []
    for corner in (0, 4, 20, 24):
        gw = system.add_client(RangeFilter(2.0, 2.0), broker=corner)
        gw.connect(corner)
        gateways.append(gw)

    # desk clients with standing sector subscriptions
    for b, (lo, hi) in enumerate([(0.0, 0.3), (0.3, 0.6), (0.6, 1.0)]):
        desk = system.add_client(RangeFilter(lo, hi), broker=5 + b)
        desk.connect(5 + b)

    # the roaming trader: tech-sector subscription, starts at broker 12
    trader = system.add_client(RangeFilter(*TECH), broker=12, mobile=True)
    trader.connect(12)
    system.run(until=3_000.0)

    trader_route = [12, 18, 3, 22]  # floors/sites visited during the day
    quotes_sent = 0
    for leg, next_site in enumerate(trader_route[1:], start=1):
        # quotes flow while the trader works...
        for gw in gateways:
            for _ in range(QUOTES_PER_GATEWAY // len(trader_route)):
                gw.publish(topic=float(rng.uniform()))
                quotes_sent += 1
        system.run(until=system.sim.now + 5_000.0)
        # ... then the tablet goes dark and reappears at the next site
        trader.disconnect()
        system.run(until=system.sim.now + 2_000.0)
        trader.connect(next_site)
        system.run(until=system.sim.now + 3_000.0)
    system.run()

    stats = system.metrics.delivery.stats
    handoffs = system.metrics.handoffs
    print(f"quotes published:        {quotes_sent}")
    print(f"deliveries (all desks):  {stats.delivered} "
          f"(expected {stats.expected})")
    print(f"trader handoffs:         {handoffs.handoff_count}")
    print(f"mean handoff delay:      {handoffs.mean_delay():.0f} ms")
    print(f"duplicates / reorders:   {stats.duplicates} / "
          f"{stats.order_violations}")

    assert stats.delivered == stats.expected
    assert stats.duplicates == 0 and stats.order_violations == 0
    assert handoffs.handoff_count == len(trader_route) - 1
    print("OK: the trader never lost a quote while roaming")


if __name__ == "__main__":
    main()
