"""Setup shim: enables legacy editable installs in offline environments
whose setuptools predates PEP 660 editable-wheel support."""

from setuptools import setup

setup()
