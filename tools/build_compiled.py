#!/usr/bin/env python
"""Build the optional mypyc extensions for the two hot modules.

Stages byte-identical copies of the pure-Python sources under
``src/repro/_compiled/`` —

* ``repro/pubsub/matching.py``  -> ``repro/_compiled/matching.py``
* ``repro/sim/core.py``         -> ``repro/_compiled/sim_core.py``

— compiles them with mypyc, then deletes the staged ``.py`` files so the
package only exposes the C extensions: an import of
``repro._compiled.matching`` can never silently fall back to an
interpreted copy. The compiled modules are opt-in via
``matching_engine="counting-compiled"`` / ``sim_engine="lanes-compiled"``
(see :mod:`repro.accel`).

mypyc is an optional extra (it ships with mypy). When it is not
installed the script prints ``SKIP`` and exits 0 so smoke jobs can run it
unconditionally; pass ``--require`` to turn that into a failure. A
compile error always fails the build (exit 1) after cleaning up the
staged sources.

Usage::

    python tools/build_compiled.py [--require] [--check]
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
STAGE = SRC / "repro" / "_compiled"

#: (pure-Python source, staged module name)
MODULES = (
    (SRC / "repro" / "pubsub" / "matching.py", "matching"),
    (SRC / "repro" / "sim" / "core.py", "sim_core"),
)


def _mypyc_available() -> bool:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        return False
    return True


def _status() -> dict:
    """Probe the built extensions in a fresh interpreter (import caches)."""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    out = subprocess.run(
        [sys.executable, "-c",
         "from repro.accel import compiled_status; print(compiled_status())"],
        cwd=REPO, capture_output=True, text=True, env=env,
    )
    return {"ok": out.returncode == 0, "stdout": out.stdout.strip(),
            "stderr": out.stderr.strip()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Build the optional mypyc extensions (repro._compiled)."
    )
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) instead of SKIP when mypyc is "
                             "not installed")
    parser.add_argument("--check", action="store_true",
                        help="only report whether the extensions import")
    args = parser.parse_args(argv)

    if args.check:
        status = _status()
        print(f"compiled extensions: {status['stdout'] or status['stderr']}")
        return 0 if status["ok"] else 1

    if not _mypyc_available():
        msg = "mypyc not installed (pip install mypy) — compiled build"
        if args.require:
            print(f"FAIL: {msg} required", file=sys.stderr)
            return 2
        print(f"SKIP: {msg} skipped; pure-Python engines remain the default")
        return 0

    staged: list[Path] = []
    try:
        for source, name in MODULES:
            target = STAGE / f"{name}.py"
            shutil.copyfile(source, target)
            staged.append(target)
        result = subprocess.run(
            [sys.executable, "-m", "mypyc",
             *(str(path) for path in staged)],
            cwd=SRC,
        )
        if result.returncode != 0:
            print("FAIL: mypyc compile error (see output above); the "
                  "pure-Python engines are unaffected", file=sys.stderr)
            return 1
    finally:
        # only the extensions may remain: a staged .py left behind would
        # let repro._compiled import an interpreted copy and lie about it
        for path in staged:
            path.unlink(missing_ok=True)
        shutil.rmtree(SRC / "build", ignore_errors=True)

    status = _status()
    print(f"built: {status['stdout'] or status['stderr']}")
    return 0 if status["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
