"""Broker crash/restart/partition schedules (the failure model).

PR 4's :class:`~repro.network.faults.FaultProfile` perturbs the *wireless*
edge of the system; this module describes failures of the broker overlay
itself: a broker process dying (volatile state lost), a dead broker coming
back empty, and an inter-broker overlay link partitioning.

A :class:`CrashPlan` is pure data — a tuple of :class:`CrashEvent` records —
so it can be embedded in frozen scenario dataclasses, hashed, compared and
replayed byte-identically from one integer seed. The machinery that *acts*
on a plan (dropping traffic addressed to dead brokers, re-converging the
spanning tree, resyncing routing state) lives in
:mod:`repro.pubsub.recovery`; like the fault injector, none of it is built
for an inactive plan, so crash-free runs stay bit-identical to the seed
behaviour.

Failure semantics (the accounted-loss crash model, see ARCHITECTURE.md):

* ``crash`` — at ``time_ms`` the broker stops receiving and its volatile
  state (queues, protocol scratchpad) is lost. ``repair_delay_ms`` later a
  repair round re-converges the surviving overlay; the window in between
  models detection + self-stabilization latency, during which losses occur
  and are *marked* so the delivery ledger stays exact.
* ``restart`` — the broker rejoins with empty state; reintegration *is* a
  repair round, so it takes effect atomically at ``time_ms``.
* ``partition`` — the overlay edge stops carrying traffic at ``time_ms``;
  the repair round ``repair_delay_ms`` later rebuilds the tree around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigurationError

__all__ = ["CrashEvent", "CrashPlan", "DEFAULT_REPAIR_DELAY_MS"]

#: default crash -> repair latency (detection + reconvergence), model ms
DEFAULT_REPAIR_DELAY_MS = 500.0

_KINDS = ("crash", "restart", "partition")


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled overlay failure (or recovery) event."""

    kind: str
    time_ms: float
    broker: Optional[int] = None
    edge: Optional[tuple[int, int]] = None
    repair_delay_ms: float = DEFAULT_REPAIR_DELAY_MS

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"crash event kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.time_ms < 0:
            raise ConfigurationError(
                f"crash event time must be >= 0, got {self.time_ms!r}"
            )
        if self.repair_delay_ms < 0:
            raise ConfigurationError(
                f"repair delay must be >= 0, got {self.repair_delay_ms!r}"
            )
        if self.kind == "partition":
            if self.edge is None or self.broker is not None:
                raise ConfigurationError(
                    "partition events carry edge=(a, b), not broker"
                )
            a, b = self.edge
            if a == b:
                raise ConfigurationError(f"degenerate partition edge {self.edge}")
            if a > b:  # canonical order so plans hash/compare stably
                object.__setattr__(self, "edge", (b, a))
        else:
            if self.broker is None or self.edge is not None:
                raise ConfigurationError(
                    f"{self.kind} events carry broker=<id>, not edge"
                )

    def label(self) -> str:
        target = (
            f"{self.edge[0]}-{self.edge[1]}"
            if self.edge is not None
            else str(self.broker)
        )
        return f"{self.kind[0]}{target}@{self.time_ms:g}"


@dataclass(frozen=True)
class CrashPlan:
    """A seeded, replayable schedule of overlay failures."""

    events: tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        # normalise any iterable into a time-sorted tuple; a stable order
        # makes plans built from unordered CLI flags deterministic
        evs = tuple(sorted(self.events, key=lambda e: (e.time_ms, e.label())))
        object.__setattr__(self, "events", evs)

    @property
    def active(self) -> bool:
        return bool(self.events)

    def label(self) -> str:
        if not self.events:
            return "none"
        return "+".join(e.label() for e in self.events)

    @classmethod
    def parse(
        cls,
        crashes: Iterable[str] = (),
        restarts: Iterable[str] = (),
        partitions: Iterable[str] = (),
        repair_delay_ms: float = DEFAULT_REPAIR_DELAY_MS,
    ) -> "CrashPlan":
        """Build a plan from CLI-style specs.

        ``crashes``/``restarts`` entries are ``"BROKER@SECONDS"``;
        ``partitions`` entries are ``"A-B@SECONDS"``. Times are model
        seconds (converted to ms here, matching the CLI's units).

        Malformed specs raise :class:`ConfigurationError` naming the
        offending token and its position in the flag list, so a typo in
        the fifth ``--broker-crash`` is findable without bisection.
        """

        def _int_token(kind: str, pos: int, spec: str,
                       token: str, role: str) -> int:
            try:
                return int(token)
            except ValueError:
                raise ConfigurationError(
                    f"bad {kind} spec {spec!r} (entry {pos}): "
                    f"{role} {token!r} is not an integer; "
                    f"expected {'A-B' if kind == 'partition' else 'BROKER'}"
                    f"@SECONDS"
                ) from None

        def _time_token(kind: str, pos: int, spec: str, token: str) -> float:
            try:
                return float(token)
            except ValueError:
                raise ConfigurationError(
                    f"bad {kind} spec {spec!r} (entry {pos}): "
                    f"time {token!r} is not a number; "
                    f"expected {'A-B' if kind == 'partition' else 'BROKER'}"
                    f"@SECONDS"
                ) from None

        events: list[CrashEvent] = []
        for kind, specs in (("crash", crashes), ("restart", restarts)):
            for pos, spec in enumerate(specs, start=1):
                broker_s, sep, time_s = spec.partition("@")
                if not sep:
                    raise ConfigurationError(
                        f"bad {kind} spec {spec!r} (entry {pos}): "
                        f"missing '@'; expected BROKER@SECONDS"
                    )
                broker = _int_token(kind, pos, spec, broker_s, "broker id")
                t = _time_token(kind, pos, spec, time_s)
                events.append(
                    CrashEvent(kind, t * 1000.0, broker=broker,
                               repair_delay_ms=repair_delay_ms)
                )
        for pos, spec in enumerate(partitions, start=1):
            edge_s, sep, time_s = spec.partition("@")
            if not sep:
                raise ConfigurationError(
                    f"bad partition spec {spec!r} (entry {pos}): "
                    f"missing '@'; expected A-B@SECONDS"
                )
            a_s, sep, b_s = edge_s.partition("-")
            if not sep:
                raise ConfigurationError(
                    f"bad partition spec {spec!r} (entry {pos}): "
                    f"edge {edge_s!r} is missing '-'; expected A-B@SECONDS"
                )
            edge = (
                _int_token("partition", pos, spec, a_s, "edge endpoint"),
                _int_token("partition", pos, spec, b_s, "edge endpoint"),
            )
            t = _time_token("partition", pos, spec, time_s)
            events.append(
                CrashEvent("partition", t * 1000.0, edge=edge,
                           repair_delay_ms=repair_delay_ms)
            )
        return cls(events=tuple(events))
