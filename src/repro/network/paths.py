"""Shortest paths in the underlying (physical) network.

Handoff requests, queue-migration streams and home-broker forwarding travel
"via the shortest path in the network" (paper Section 5.1), i.e. over grid
shortest paths rather than the overlay tree. This module provides all-pairs
next-hop/distance tables computed lazily per source with BFS (unit weights)
or Dijkstra (general weights).

Tie-breaking: among equally short next hops the numerically smallest
neighbour is chosen, so routes are deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.errors import RoutingError
from repro.network.topology import Topology

__all__ = ["ShortestPaths"]


class ShortestPaths:
    """Lazy all-pairs shortest-path oracle over a :class:`Topology`."""

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self._uniform = len({w for _u, _v, w in topo.edges()} | {1.0}) == 1
        self._dist: dict[int, list[float]] = {}
        self._first_hop: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    def _solve_from(self, src: int) -> None:
        if src in self._dist:
            return
        n = self.topo.n
        dist: list[float] = [float("inf")] * n
        first: list[int] = [-1] * n
        dist[src] = 0.0
        first[src] = src
        if self._uniform:
            q: deque[int] = deque([src])
            while q:
                u = q.popleft()
                for v in self.topo.neighbors(u):
                    if dist[v] == float("inf"):
                        dist[v] = dist[u] + 1
                        first[v] = v if u == src else first[u]
                        q.append(v)
        else:
            heap: list[tuple[float, int, int]] = [(0.0, src, src)]
            while heap:
                d, u, f = heapq.heappop(heap)
                if d > dist[u]:
                    continue
                if u != src and first[u] == -1:
                    first[u] = f
                for v in self.topo.neighbors(u):
                    nd = d + self.topo.weight(u, v)
                    if nd < dist[v]:
                        dist[v] = nd
                        heapq.heappush(
                            heap, (nd, v, v if u == src else first[u])
                        )
        self._dist[src] = dist
        self._first_hop[src] = first

    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> float:
        """Shortest-path cost between ``u`` and ``v``."""
        self._solve_from(u)
        d = self._dist[u][v]
        if d == float("inf"):
            raise RoutingError(f"no path {u} -> {v}")
        return d

    def hop_count(self, u: int, v: int) -> int:
        """Shortest-path length in edges (equals distance on unit weights)."""
        if self._uniform:
            return int(self.distance(u, v))
        return len(self.path(u, v)) - 1

    def next_hop(self, u: int, dst: int) -> int:
        """First hop from ``u`` toward ``dst`` (``u`` itself if ``u == dst``)."""
        if u == dst:
            return u
        self._solve_from(u)
        hop = self._first_hop[u][dst]
        if hop == -1:
            raise RoutingError(f"no path {u} -> {dst}")
        return hop

    def path(self, u: int, v: int) -> list[int]:
        """One shortest path from ``u`` to ``v`` inclusive (deterministic)."""
        path = [u]
        cur = u
        guard = 0
        while cur != v:
            cur = self.next_hop(cur, v)
            path.append(cur)
            guard += 1
            if guard > self.topo.n:  # pragma: no cover - safety net
                raise RoutingError(f"routing loop resolving path {u} -> {v}")
        return path

    def average_distance(self) -> float:
        """Mean shortest-path distance over ordered pairs (u != v)."""
        total = 0.0
        for u in range(self.topo.n):
            self._solve_from(u)
            total += sum(self._dist[u])
        return total / (self.topo.n * (self.topo.n - 1))

    def eccentricity(self, u: int) -> float:
        """Greatest distance from ``u`` to any node."""
        self._solve_from(u)
        return max(self._dist[u])

    def diameter(self) -> float:
        """Greatest shortest-path distance over all pairs."""
        return max(self.eccentricity(u) for u in range(self.topo.n))
