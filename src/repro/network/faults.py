"""Wireless fault injection: seeded loss, duplication and jitter.

The paper's evaluation (§5.1) runs over perfect links; real wireless
channels lose frames, deliver retransmitted copies twice, and serve at a
variable rate. This module adds those behaviours to the link layer as
*deterministic, seeded* knobs so adversarial scenarios stay replayable and
the delivery oracle stays exact:

* **loss** — an eligible downlink transmission is silently discarded with
  probability ``deliver_loss``. Every discard is reported through
  ``on_drop`` so the :class:`~repro.metrics.delivery.DeliveryChecker` can
  account it explicitly: under faults the reliability invariant for
  reliable protocols becomes ``expected == delivered + link_losses``
  (nothing goes *unaccounted*).
* **duplication** — with probability ``deliver_duplicate`` the receiver
  gets a second copy immediately after the first (a link-layer
  retransmission whose ack was lost). The copy is handed over in the same
  instant as the original, so it can neither be reordered ahead of older
  traffic nor be reclaimed by protocol queue surgery — injected duplicates
  are exactly the duplicates the checker counts.
* **jitter** — each wireless transmission's service time is stretched by a
  uniform draw from ``[0, wireless_jitter_ms]``. The channel stays a serial
  FIFO (the next message starts only when the current one finishes), so
  per-link ordering — which several protocol correctness arguments rest on
  — is preserved; only timing shifts.

Faults only ever apply to the *wireless* edge. Wired broker-broker links
stay perfect: their constant-latency FIFO property underpins protocol
correctness proofs (TQ capture, ack-triggered label deletion), and the
paper's wired backbone is not the lossy medium. Loss and duplication are
further restricted to cargo the caller marks *droppable* — the system
marks final event deliveries (``DeliverMessage``) and nothing else,
modelling control traffic riding the link layer's ARQ while data
notifications take the unreliable path. This keeps every protocol live
under faults (a lost ``ConnectMessage`` would wedge a handoff forever,
which no amount of accounting could make checkable).

Everything is off by default (:attr:`FaultProfile.active` is False for the
default profile), and an inactive profile injects **nothing** — no RNG
draws, no scheduling changes — so fault-free runs remain bit-identical to
the seed figures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.util.validation import check_non_negative, check_probability

__all__ = ["FaultProfile", "LinkFaultInjector", "FAULT_FREE"]

#: direction tags used in per-link fault accounting keys
DOWNLINK = "down"
UPLINK = "up"


@dataclass(frozen=True)
class FaultProfile:
    """Wireless fault knobs for one run. Immutable; picklable; default off."""

    #: P(an eligible downlink transmission is discarded)
    deliver_loss: float = 0.0
    #: P(an eligible downlink transmission arrives twice)
    deliver_duplicate: float = 0.0
    #: max extra service latency per wireless transmission (uniform draw, ms)
    wireless_jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        check_probability("deliver_loss", self.deliver_loss)
        check_probability("deliver_duplicate", self.deliver_duplicate)
        check_non_negative("wireless_jitter_ms", self.wireless_jitter_ms)

    @property
    def active(self) -> bool:
        """True if any knob is non-zero (an inactive profile injects nothing)."""
        return (
            self.deliver_loss > 0.0
            or self.deliver_duplicate > 0.0
            or self.wireless_jitter_ms > 0.0
        )

    def label(self) -> str:
        if not self.active:
            return "faults=off"
        return (
            f"loss={self.deliver_loss:g} dup={self.deliver_duplicate:g} "
            f"jitter={self.wireless_jitter_ms:g}ms"
        )


#: shared default profile: everything off
FAULT_FREE = FaultProfile()


class LinkFaultInjector:
    """Draws and accounts the fault fate of every wireless transmission.

    The injector is deliberately ignorant of message types: the system
    supplies ``droppable`` (which payloads may be lost/duplicated) and
    ``on_drop`` (how a discard is reported to the delivery oracle), keeping
    the network layer free of pub/sub imports.

    All draws come from one seeded stream in event-execution order, so a
    scenario replays byte-identically from its seed — across both scheduler
    engines, both matching engines, and the covering-index toggle, because
    all of those are event-order-identical.
    """

    def __init__(
        self,
        profile: FaultProfile,
        rng: np.random.Generator,
        droppable: Callable[[Any], bool],
        on_drop: Callable[[Any], None],
    ) -> None:
        self.profile = profile
        self.rng = rng
        self.droppable = droppable
        self.on_drop = on_drop
        #: discarded eligible transmissions, total and per (client, direction)
        self.drops = 0
        self.drops_by_link: defaultdict[tuple[int, str], int] = defaultdict(int)
        #: duplicate copies handed to receivers, total and per link
        self.dups_delivered = 0
        self.dups_by_link: defaultdict[tuple[int, str], int] = defaultdict(int)
        #: observer for per-category surfacing (metrics.traffic); optional
        self.account_fault: Optional[Callable[[str, str, int, str], None]] = None

    # ------------------------------------------------------------------
    # hooks called by the wireless channel
    # ------------------------------------------------------------------
    def fate(self, payload: Any, client: int, direction: str) -> str:
        """Decide this transmission's fate: ``"ok"``, ``"drop"`` or ``"dup"``.

        Called once per eligible send, *before* the payload enters the
        channel. Ineligible payloads consume no randomness.
        """
        p = self.profile
        if not (p.deliver_loss or p.deliver_duplicate):
            return "ok"
        if direction != DOWNLINK or not self.droppable(payload):
            return "ok"
        u = float(self.rng.random())
        if u < p.deliver_loss:
            self.drops += 1
            self.drops_by_link[(client, direction)] += 1
            if self.account_fault is not None:
                self.account_fault(
                    "drop", getattr(payload, "category", "?"), client, direction
                )
            self.on_drop(payload)
            return "drop"
        if p.deliver_duplicate and float(self.rng.random()) < p.deliver_duplicate:
            return "dup"
        return "ok"

    def dup_delivered(self, payload: Any, client: int, direction: str) -> None:
        """Account one duplicate copy handed to a receiver."""
        self.dups_delivered += 1
        self.dups_by_link[(client, direction)] += 1
        if self.account_fault is not None:
            self.account_fault(
                "dup", getattr(payload, "category", "?"), client, direction
            )

    def jitter(self) -> float:
        """Extra service latency for one wireless transmission (ms)."""
        j = self.profile.wireless_jitter_ms
        if j <= 0.0:
            return 0.0
        return float(self.rng.uniform(0.0, j))

    @property
    def jitters(self) -> bool:
        return self.profile.wireless_jitter_ms > 0.0
