"""Link layer: FIFO message transport with latency and hop accounting.

Models the paper's Section 5.1 network:

* **wired links** between adjacent base stations: constant 10 ms delivery,
  unbounded bandwidth (the paper measures traffic in hops, not bytes, and
  reports no queueing effects on the wired side). FIFO per link follows from
  constant latency plus the scheduler's same-time FIFO tie-break — messages
  sent earlier on a link always arrive earlier. Several protocol correctness
  arguments (TQ capture, ack-triggered label deletion) rest on this.
* **wireless links** between a client and its broker: a serial FIFO channel,
  one message per 20 ms. Serialisation matters: it is why the paper's MHH
  needs the PQ3 buffer of immigrant events — a backlog takes real time to
  push over the air, and the client can disconnect mid-drain leaving a
  remainder. Pending (not-yet-transmitting) messages can be reclaimed on
  disconnect; the in-service message always completes.
* **multi-hop unicast** between arbitrary brokers travels the grid shortest
  path. It is modelled as a single scheduling step of ``hops * 10 ms`` with
  all hops accounted immediately; because every latency is distance * 10 ms
  and the triangle inequality holds on the grid, this shortcut preserves all
  arrival-order relations that true store-and-forward would produce (proof
  sketch in DESIGN.md; property-tested in tests/test_links.py).

The link layer is **sans-IO over a clock**: it schedules exclusively
through the narrow :class:`~repro.drivers.base.Clock` facade
(``call_later`` / ``call_later_fifo`` / ``now``) and therefore runs
unchanged under any driver — the discrete-event simulator (whose
``call_later_fifo`` *is* ``Simulator.schedule_fifo``) or the live asyncio
runtime. It is also the canonical :class:`~repro.drivers.base.Transport`
implementation: ``send_broker`` / ``send_client`` / ``send_uplink`` /
``reclaim_downlink`` alias the methods below, so the kernel-facing facade
adds no indirection.

Every transmission here carries a *constant* delay (per link direction /
hop count) and is never cancelled once on the wire — exactly the contract
of ``call_later_fifo`` — so under the simulated driver the whole link
layer rides the scheduler's O(1) lane fast path: one lane for wired hops,
one per wireless latency, one per unicast hop count. The scheduler's
merged ``(time, seq)`` order keeps the FIFO guarantees stated above
bit-for-bit identical to the heap engine (and every conforming clock must
preserve the same tie-break, see :mod:`repro.drivers.base`).

The wireless edge optionally takes a :class:`~repro.network.faults.
LinkFaultInjector` (loss / duplication / jitter — see that module for the
fault model and why wired links stay perfect). With no injector — the
default — every code path below is byte-identical to the fault-free link
layer: no extra branches fire, no randomness is drawn, and jittered
(variable-latency) service is the only case that leaves the lane fast path
for the general heap.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.errors import RoutingError
from repro.network.faults import DOWNLINK, UPLINK, LinkFaultInjector
from repro.network.paths import ShortestPaths
from repro.network.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - the clock is duck-typed at runtime
    from repro.drivers.base import Clock

__all__ = ["LinkLayer", "WIRED_LATENCY_MS", "WIRELESS_LATENCY_MS"]

WIRED_LATENCY_MS = 10.0
WIRELESS_LATENCY_MS = 20.0

# account(category, hops, wireless) -> None
AccountFn = Callable[[str, int, bool], None]


def _no_account(_category: str, _hops: int, _wireless: bool) -> None:
    return None


class _WirelessChannel:
    """Serial FIFO channel in one direction between a client and a broker.

    One message occupies the channel for ``latency`` ms; others queue behind
    it. ``cancel_pending`` reclaims the queued (not in-service) messages in
    order — used by MHH when a client disconnects mid-backlog-drain.

    With a fault injector attached, each send may be discarded (loss) or
    flagged for a second handover (duplication), and each service slot may
    be stretched (jitter); the channel remains a serial FIFO throughout.
    The duplicate copy is handed over in the same instant as the original,
    directly after it — it never sits in ``queue``, so it cannot be
    reclaimed by ``cancel_pending`` and cannot overtake older traffic.
    """

    __slots__ = (
        "clock",
        "latency",
        "deliver",
        "queue",
        "busy_until",
        "_in_service",
        "faults",
        "client",
        "direction",
        "_dup_ids",
        "queue_cap",
        "on_shed",
    )

    def __init__(
        self,
        clock: "Clock",
        latency: float,
        deliver: Callable[[Any], None],
        faults: Optional[LinkFaultInjector] = None,
        client: int = -1,
        direction: str = DOWNLINK,
        queue_cap: Optional[int] = None,
        on_shed: Optional[Callable[[Any, int], bool]] = None,
    ) -> None:
        self.clock = clock
        self.latency = latency
        self.deliver = deliver
        self.queue: deque[Any] = deque()
        self.busy_until = 0.0
        self._in_service: Any = None
        self.faults = faults
        self.client = client
        self.direction = direction
        # bulkhead: with a cap configured, data traffic that would queue
        # beyond it is handed to on_shed(msg, client) -> bool; True means
        # the policy shed it (never control — the policy returns False and
        # the message is admitted over-cap). None = unbounded, the default.
        self.queue_cap = queue_cap
        self.on_shed = on_shed
        # id()s of in-channel messages flagged for duplicate handover; ids
        # are stable here because the message object is referenced by the
        # channel until its _finish removes the flag
        self._dup_ids: set[int] = set()

    def send(self, msg: Any) -> None:
        if (
            self.on_shed is not None
            and len(self.queue) >= self.queue_cap
            and not (self._in_service is None and self.clock.now >= self.busy_until)
            and self.on_shed(msg, self.client)
        ):
            # shed before the fate draw: a message that never enters the
            # channel consumes no fault randomness, so capped and uncapped
            # runs stay replayable from the same seed up to the overload
            return
        if self.faults is not None:
            fate = self.faults.fate(msg, self.client, self.direction)
            if fate == "drop":
                # drop any stale dup flag (a reclaimed-and-resent message
                # keeps its object identity; never let a discarded id linger
                # to collide with a recycled one)
                self._dup_ids.discard(id(msg))
                return
            if fate == "dup":
                self._dup_ids.add(id(msg))
        if self._in_service is None and self.clock.now >= self.busy_until:
            self._start(msg)
        else:
            self.queue.append(msg)

    def _start(self, msg: Any) -> None:
        # the in-service message always completes (cancel_pending reclaims
        # only the queue), so the non-cancellable lane path applies
        self._in_service = msg
        latency = self.latency
        if self.faults is not None and self.faults.jitters:
            # variable latency would mint a lane per distinct delay; take
            # the general heap path instead (same (time, seq) order)
            latency += self.faults.jitter()
            self.busy_until = self.clock.now + latency
            self.clock.call_later(latency, self._finish, msg)
            return
        self.busy_until = self.clock.now + latency
        self.clock.call_later_fifo(latency, self._finish, msg)

    def _finish(self, msg: Any) -> None:
        self._in_service = None
        self.deliver(msg)
        if self.faults is not None and self._dup_ids:
            if id(msg) in self._dup_ids:
                self._dup_ids.discard(id(msg))
                self.faults.dup_delivered(msg, self.client, self.direction)
                self.deliver(msg)
        if self.queue:
            self._start(self.queue.popleft())

    def cancel_pending(self) -> list[Any]:
        """Reclaim queued messages (in order). The in-service one completes."""
        pending = list(self.queue)
        self.queue.clear()
        if self._dup_ids and pending:
            # reclaimed messages leave the channel; their pending dup
            # injections evaporate with them (the duplicate ledger counts
            # delivered copies only, so nothing needs accounting here)
            for msg in pending:
                self._dup_ids.discard(id(msg))
        return pending

    def requeue(self, msgs: list[Any]) -> None:
        """Put already-sent frames back at the head of the queue, in order.

        Bypasses the fate draw (these frames took theirs on the original
        send) and the bulkhead (they were admitted once; dropping them now
        would turn a requeue into silent loss). Restarts service if idle.
        """
        self.queue.extendleft(reversed(msgs))
        if self._in_service is None and self.clock.now >= self.busy_until:
            if self.queue:
                self._start(self.queue.popleft())

    @property
    def backlog(self) -> int:
        return len(self.queue) + (1 if self._in_service is not None else 0)


class LinkLayer:
    """Message transport between brokers and between clients and brokers.

    Endpoints register receive callbacks; senders address endpoints by id.
    Every wired transmission is reported to the accounting callback with its
    message category and hop count (the paper's traffic metric).
    """

    def __init__(
        self,
        clock: "Clock",
        topo: Topology,
        paths: ShortestPaths,
        wired_latency: float = WIRED_LATENCY_MS,
        wireless_latency: float = WIRELESS_LATENCY_MS,
        account: Optional[AccountFn] = None,
        unicast_hops: Optional[Callable[[int, int], int]] = None,
        faults: Optional[LinkFaultInjector] = None,
        queue_cap: Optional[int] = None,
        on_shed: Optional[Callable[[Any, int], bool]] = None,
    ) -> None:
        self.clock = clock
        self.topo = topo
        self.paths = paths
        self.wired_latency = wired_latency
        self.wireless_latency = wireless_latency
        self.account: AccountFn = account or _no_account
        #: wireless fault injector (None = perfect links, the default)
        self.faults = faults
        #: broker crash/recovery coordinator (repro.pubsub.recovery); None
        #: — the default — keeps every path below byte-identical to the
        #: crash-free link layer (one attribute test per wired send)
        self.recovery = None
        #: reliability manager (repro.pubsub.reliability); None — the
        #: default — keeps reclaim and send paths byte-identical
        self.reliability = None
        #: downlink bulkhead: max queued messages per client before the
        #: shed policy runs (None = unbounded, the paper's model)
        self.queue_cap = queue_cap
        self._on_shed = on_shed
        # hop metric for multi-hop unicast; defaults to grid shortest paths
        # (paper §5.1); the tree-routing ablation overrides it
        self._unicast_hops = unicast_hops or paths.hop_count
        # receiver(msg, from_broker) for brokers; receiver(msg) for clients
        self._broker_rx: dict[int, Callable[[Any, int], None]] = {}
        # optional batch receiver(items) per broker; consulted only by the
        # event-batching path (see enable_event_batching)
        self._broker_rx_batch: dict[int, Callable[[list], None]] = {}
        self._client_rx: dict[int, Callable[[Any], None]] = {}
        self._downlinks: dict[int, _WirelessChannel] = {}
        self._uplinks: dict[int, _WirelessChannel] = {}
        # uplink messages are addressed to a broker chosen at send time;
        # each queued uplink message is an (broker_id, payload) pair.

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_broker(self, broker_id: int, rx: Callable[[Any, int], None]) -> None:
        self._broker_rx[broker_id] = rx

    def register_broker_batch(
        self, broker_id: int, rx_batch: Callable[[list], None]
    ) -> None:
        """Register a broker's batched receiver (``rx_batch(items)`` with
        ``(msg, frm)`` pairs in firing order); used only when event
        batching is enabled."""
        self._broker_rx_batch[broker_id] = rx_batch

    def enable_event_batching(self) -> None:
        """Drain same-instant wired deliveries as per-destination batches.

        Registers the plain wired delivery callback with the clock's lane
        batcher (``register_fifo_batch``): whenever several wired messages
        land at the same instant with nothing else due between them, they
        arrive through :meth:`_deliver_broker_batch`, which hands
        consecutive same-destination runs to the broker's batch receiver in
        one call. Crash-guarded (``_deliver_guarded``) and uplink
        deliveries are never batched — their guard checks are per-message.

        A clock without ``register_fifo_batch`` (the live asyncio driver,
        or the heap engine's lane-less scheduler) leaves delivery
        per-message; traces are identical either way.
        """
        reg = getattr(self.clock, "register_fifo_batch", None)
        if reg is not None:
            # pin the bound method as an instance attribute: every
            # call_later_fifo entry then carries the *same* object, so the
            # lane batcher's identity check recognises consecutive runs
            # (a fresh bound method per send would never compare `is`)
            self._deliver_broker = self._deliver_broker
            reg(self._deliver_broker, self._deliver_broker_batch)

    def register_client(self, client_id: int, rx: Callable[[Any], None]) -> None:
        self._client_rx[client_id] = rx
        self._downlinks[client_id] = _WirelessChannel(
            self.clock,
            self.wireless_latency,
            rx,
            faults=self.faults,
            client=client_id,
            direction=DOWNLINK,
            queue_cap=self.queue_cap,
            on_shed=self._on_shed if self.queue_cap is not None else None,
        )
        self._uplinks[client_id] = _WirelessChannel(
            self.clock,
            self.wireless_latency,
            self._deliver_uplink,
            faults=self.faults,
            client=client_id,
            direction=UPLINK,
        )

    # ------------------------------------------------------------------
    # wired transport
    # ------------------------------------------------------------------
    def broker_to_broker(self, frm: int, to: int, msg: Any) -> None:
        """One wired hop between adjacent brokers (tree or grid edge)."""
        if not self.topo.has_edge(frm, to):
            raise RoutingError(f"brokers {frm} and {to} are not adjacent")
        rec = self.recovery
        if rec is not None:
            if rec.is_down(to) or rec.edge_cut(frm, to):
                rec.on_dropped_message(msg)
                return
            self.account(msg.category, 1, False)
            self.clock.call_later_fifo(
                self.wired_latency, self._deliver_guarded,
                to, msg, frm, rec.generation,
            )
            return
        self.account(msg.category, 1, False)
        self.clock.call_later_fifo(
            self.wired_latency, self._deliver_broker, to, msg, frm
        )

    def unicast(self, frm: int, to: int, msg: Any) -> None:
        """Multi-hop unicast over the grid shortest path.

        All hops are accounted at send time; arrival is after
        ``hops * wired_latency``. ``frm == to`` delivers after zero delay
        (still FIFO-ordered behind messages already scheduled for now).
        """
        rec = self.recovery
        if rec is not None:
            if rec.is_down(to):
                rec.on_dropped_message(msg)
                return
            hops = self._unicast_hops(frm, to) if frm != to else 0
            if hops:
                self.account(msg.category, hops, False)
            self.clock.call_later_fifo(
                hops * self.wired_latency, self._deliver_guarded,
                to, msg, frm, rec.generation,
            )
            return
        hops = self._unicast_hops(frm, to) if frm != to else 0
        if hops:
            self.account(msg.category, hops, False)
        self.clock.call_later_fifo(
            hops * self.wired_latency, self._deliver_broker, to, msg, frm
        )

    def _deliver_broker(self, to: int, msg: Any, frm: int) -> None:
        rx = self._broker_rx.get(to)
        if rx is None:
            raise RoutingError(f"no broker registered with id {to}")
        rx(msg, frm)

    def _deliver_broker_batch(self, items: list) -> None:
        """Batched wired delivery: ``items`` are ``(to, msg, frm)`` argument
        tuples in firing order. Consecutive same-destination runs go to the
        broker's batch receiver in one call; destinations without one fall
        back to per-message delivery in the same order."""
        rx_batch = self._broker_rx_batch
        rx_map = self._broker_rx
        i = 0
        n = len(items)
        while i < n:
            to = items[i][0]
            j = i + 1
            while j < n and items[j][0] == to:
                j += 1
            brx = rx_batch.get(to)
            if brx is not None and j - i > 1:
                brx([(msg, frm) for _to, msg, frm in items[i:j]])
            else:
                rx = rx_map.get(to)
                if rx is None:
                    raise RoutingError(f"no broker registered with id {to}")
                for _to, msg, frm in items[i:j]:
                    rx(msg, frm)
            i = j

    def _deliver_guarded(self, to: int, msg: Any, frm: int, gen: int) -> None:
        """Wired delivery under an active crash plan.

        Messages are stamped with the overlay *generation* at send time; a
        repair round advances the generation, so anything still in flight
        when the tree is rewired is dropped (reverse-path forwarding is only
        correct relative to the tree it was routed on) and its event cargo is
        marked as crash-exposed. Messages addressed to a broker that crashed
        after the send are dropped the same way.
        """
        rec = self.recovery
        if rec.generation != gen or rec.is_down(to):
            rec.on_dropped_message(msg)
            return
        self._deliver_broker(to, msg, frm)

    # ------------------------------------------------------------------
    # wireless transport
    # ------------------------------------------------------------------
    def broker_to_client(self, client_id: int, msg: Any) -> None:
        """Queue a downlink message on the client's serial wireless channel."""
        self.account(msg.category, 1, True)
        self._downlinks[client_id].send(msg)

    def client_to_broker(self, client_id: int, broker_id: int, msg: Any) -> None:
        """Queue an uplink message; it reaches the broker after the channel
        serialises it (20 ms per message)."""
        self.account(msg.category, 1, True)
        rec = self.recovery
        if rec is not None:
            self._uplinks[client_id].send(
                (broker_id, client_id, msg, rec.generation)
            )
            return
        self._uplinks[client_id].send((broker_id, client_id, msg))

    def _deliver_uplink(self, item: tuple) -> None:
        broker_id, client_id, msg = item[0], item[1], item[2]
        rec = self.recovery
        if rec is not None:
            # uplink traffic is generation-stamped too: a repair round
            # re-synthesises the client's attachment from ground truth, so
            # a pre-repair connect/publish arriving afterwards would double
            # up — drop it and mark any event cargo as crash-exposed
            gen = item[3] if len(item) > 3 else rec.generation
            if rec.generation != gen or rec.is_down(broker_id):
                rec.on_dropped_message(msg)
                return
        rx = self._broker_rx.get(broker_id)
        if rx is None:
            raise RoutingError(f"no broker registered with id {broker_id}")
        # from-id on uplink deliveries is the *client* id; broker dispatch
        # distinguishes client messages by type, not by the from field.
        rx(msg, -1 - client_id)

    def cancel_downlink_pending(self, client_id: int) -> list[Any]:
        """Reclaim queued downlink messages for a client (see MHH PQ3).

        Under reliability the reclaim is widened to the client's full
        unacked windows: transmitted-but-dropped (and delivered-but-
        unacked) reliable messages join the queued ones in send order, so
        the protocol's existing requeue-and-redeliver machinery recovers
        wireless losses through a handoff. The client-side receive state
        dedups the delivered-but-unacked overlap.
        """
        pending = self._downlinks[client_id].cancel_pending()
        rel = self.reliability
        if rel is not None:
            return rel.reclaim_link(
                client_id, pending, self._downlinks[client_id]._in_service
            )
        return pending

    def requeue_downlink_unacked(self, client_id: int) -> list[Any]:
        """Detach safety net: requeue a client's leftover unacked frames.

        For protocol paths that drop a client without a downlink reclaim,
        any reliable frames still unacked (and not already sitting in the
        channel) are pushed back onto the raw channel — no fate draw, no
        bulkhead — so the backlog drains to the detached client exactly as
        unreclaimed plain deliveries always have. Retires the link state
        and its timers either way. Returns the requeued frames.
        """
        rel = self.reliability
        if rel is None:
            return []
        links = rel.pop_links_for_client(client_id)
        if not links:
            return []
        ch = self._downlinks[client_id]
        present = set(map(id, ch.queue))
        if ch._in_service is not None:
            present.add(id(ch._in_service))
        requeued: list[Any] = []
        for link in links:
            for msg in link.unacked.values():
                if id(msg) not in present:
                    present.add(id(msg))
                    requeued.append(msg)
            rel.retire_link(link)
        if requeued:
            ch.requeue(requeued)
        return requeued

    def downlink_backlog(self, client_id: int) -> int:
        return self._downlinks[client_id].backlog

    # ------------------------------------------------------------------
    # the kernel-facing Transport facade (repro.drivers.base.Transport):
    # pure aliases, so the sans-IO boundary costs no indirection
    # ------------------------------------------------------------------
    send_broker = broker_to_broker
    send_client = broker_to_client
    send_uplink = client_to_broker
    reclaim_downlink = cancel_downlink_pending
