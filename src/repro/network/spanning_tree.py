"""Minimum-cost spanning tree overlay.

The mainstream content-based pub/sub systems the paper builds on (SIENA,
JEDI, Rebeca) organise brokers into an acyclic overlay; the paper's testbed
builds "a minimum cost spanning tree of the network" over the grid
(Section 5.1). With uniform link costs *every* spanning tree is minimal, so
the only degree of freedom is tie-breaking. We use Prim's algorithm with
seeded random tie-breaking: deterministic per seed, and it produces the
long, winding overlay paths that the paper's sub-unsub delay numbers imply
(their safety interval is the worst-case delivery time across the overlay).

The tree also provides unique paths, distances, and the diameter used to set
the sub-unsub safety interval.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.network.topology import Topology

__all__ = ["SpanningTree", "minimum_spanning_tree", "rebuild_spanning_tree"]

#: parent-vector sentinel for nodes excluded from the tree (down brokers);
#: full-overlay trees never contain it, so pre-crash behaviour is unchanged
EXCLUDED = -2


class SpanningTree:
    """A rooted spanning tree over ``0..n-1`` given as a parent vector.

    Provides O(1) amortised queries used on the pub/sub hot path:

    * ``neighbors(u)`` — tree-adjacent brokers,
    * ``next_hop(u, dst)`` — first hop on the unique tree path,
    * ``distance(u, v)`` and ``path(u, v)``.

    Next-hop tables are built lazily per source and cached (a run touches
    only the sources that actually originate migrations).

    A parent entry of :data:`EXCLUDED` marks a node that is *not* part of
    the tree (a crashed broker after re-convergence): the tree must be
    connected over the included nodes only, and routing queries involving
    an excluded node raise :class:`TopologyError`.
    """

    def __init__(self, parent: Sequence[int], root: int) -> None:
        self.n = len(parent)
        self.root = root
        self.parent = list(parent)
        if self.parent[root] != -1:
            raise TopologyError("root's parent must be -1")
        members = sum(1 for p in self.parent if p != EXCLUDED)
        self._adj: list[list[int]] = [[] for _ in range(self.n)]
        for v, p in enumerate(self.parent):
            if p == -1 or p == EXCLUDED:
                continue
            if not (0 <= p < self.n):
                raise TopologyError(f"parent of {v} out of range: {p}")
            if self.parent[p] == EXCLUDED:
                raise TopologyError(f"parent of {v} is an excluded node: {p}")
            self._adj[v].append(p)
            self._adj[p].append(v)
        for a in self._adj:
            a.sort()
        # depth via BFS from root; also validates that parent[] is a tree.
        self.depth = [-1] * self.n
        self.depth[root] = 0
        q: deque[int] = deque([root])
        seen = 1
        while q:
            u = q.popleft()
            for v in self._adj[u]:
                if self.depth[v] == -1:
                    self.depth[v] = self.depth[u] + 1
                    seen += 1
                    q.append(v)
        if seen != members:
            raise TopologyError("parent vector does not describe a connected tree")
        # per-source next-hop tables, built on demand
        self._next_hop_cache: dict[int, list[int]] = {}

    def contains(self, u: int) -> bool:
        """Is ``u`` part of this tree? (False for crashed-out brokers.)"""
        return self.parent[u] != EXCLUDED

    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> list[int]:
        """Tree-adjacent nodes of ``u`` (ascending)."""
        return self._adj[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each tree edge once as ``(child, parent)``."""
        for v, p in enumerate(self.parent):
            if p != -1 and p != EXCLUDED:
                yield (v, p)

    def _hops_from(self, src: int) -> list[int]:
        """next_hop[dst] = first hop from src toward dst (src itself = src)."""
        table = self._next_hop_cache.get(src)
        if table is not None:
            return table
        table = [-1] * self.n
        table[src] = src
        q: deque[int] = deque()
        for v in self._adj[src]:
            table[v] = v
            q.append(v)
        while q:
            u = q.popleft()
            first = table[u]
            for v in self._adj[u]:
                if table[v] == -1:
                    table[v] = first
                    q.append(v)
        self._next_hop_cache[src] = table
        return table

    def next_hop(self, u: int, dst: int) -> int:
        """First hop on the unique tree path from ``u`` to ``dst``.

        This is exactly the broker "routing table" of Section 3: the pair
        ``(next_hop, destination)`` meaning the broker reaches ``destination``
        via neighbour ``next_hop`` in the overlay.
        """
        if u == dst:
            return u
        hop = self._hops_from(u)[dst]
        if hop == -1:
            # unreachable only when an endpoint is excluded (crashed out)
            raise TopologyError(f"no tree route {u} -> {dst}")
        return hop

    def path(self, u: int, v: int) -> list[int]:
        """The unique tree path from ``u`` to ``v`` inclusive of both ends."""
        if not (self.contains(u) and self.contains(v)):
            raise TopologyError(f"no tree path {u} -> {v}: endpoint excluded")
        if u == v:
            return [u]
        # Walk up to the common ancestor using depths.
        left: list[int] = [u]
        right: list[int] = [v]
        a, b = u, v
        while a != b:
            if self.depth[a] >= self.depth[b]:
                a = self.parent[a]
                left.append(a)
            else:
                b = self.parent[b]
                right.append(b)
        right.pop()  # drop duplicate common ancestor
        return left + right[::-1]

    def distance(self, u: int, v: int) -> int:
        """Number of tree edges between ``u`` and ``v``."""
        if not (self.contains(u) and self.contains(v)):
            raise TopologyError(f"no tree path {u} -> {v}: endpoint excluded")
        if u == v:
            return 0
        a, b, d = u, v, 0
        while a != b:
            if self.depth[a] >= self.depth[b]:
                a = self.parent[a]
            else:
                b = self.parent[b]
            d += 1
        return d

    def diameter(self) -> int:
        """Longest tree path in edges (double-BFS)."""
        far1, _ = self._farthest(self.root)
        far2, dist = self._farthest(far1)
        del far2
        return dist

    def _farthest(self, src: int) -> tuple[int, int]:
        dist = [-1] * self.n
        dist[src] = 0
        q: deque[int] = deque([src])
        best, best_d = src, 0
        while q:
            u = q.popleft()
            for v in self._adj[u]:
                if dist[v] == -1:
                    dist[v] = dist[u] + 1
                    if dist[v] > best_d:
                        best, best_d = v, dist[v]
                    q.append(v)
        return best, best_d

    def average_distance(self, sample_rng: Optional[np.random.Generator] = None,
                         samples: int = 0) -> float:
        """Mean tree distance over all (or sampled) unordered node pairs."""
        if samples and sample_rng is not None and self.n > 2:
            total = 0
            for _ in range(samples):
                u = int(sample_rng.integers(self.n))
                v = int(sample_rng.integers(self.n))
                total += self.distance(u, v)
            return total / samples
        # exact: BFS from every node (fine up to a few hundred nodes)
        total = 0
        pairs = 0
        members = [u for u in range(self.n) if self.contains(u)]
        for src in members:
            dist = [-1] * self.n
            dist[src] = 0
            q: deque[int] = deque([src])
            while q:
                u = q.popleft()
                for v in self._adj[u]:
                    if dist[v] == -1:
                        dist[v] = dist[u] + 1
                        q.append(v)
            total += sum(d for d in dist if d > 0)
            pairs += len(members) - 1
        return total / pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SpanningTree n={self.n} root={self.root}>"


def minimum_spanning_tree(
    topo: Topology, seed: int = 0, root: int = 0
) -> SpanningTree:
    """Prim's algorithm with seeded random tie-breaking.

    With uniform edge weights (the paper's grid) every spanning tree is a
    minimum spanning tree; the random tie-break selects one uniformly-ish at
    random but deterministically per seed.

    Examples
    --------
    >>> from repro.network.topology import grid_topology
    >>> t = minimum_spanning_tree(grid_topology(4), seed=1)
    >>> sum(1 for _ in t.edges())
    15
    """
    if not topo.is_connected():
        raise TopologyError("cannot build a spanning tree of a disconnected graph")
    rng = np.random.default_rng(np.random.SeedSequence([seed, topo.n, 0x5175]))
    parent = [-1] * topo.n
    in_tree = bytearray(topo.n)
    in_tree[root] = 1
    # Heap of candidate edges: (weight, tiebreak, from_node, to_node)
    heap: list[tuple[float, float, int, int]] = []
    for v in topo.neighbors(root):
        heapq.heappush(heap, (topo.weight(root, v), float(rng.random()), root, v))
    added = 1
    while heap and added < topo.n:
        _w, _tb, u, v = heapq.heappop(heap)
        if in_tree[v]:
            continue
        in_tree[v] = 1
        parent[v] = u
        added += 1
        for nxt in topo.neighbors(v):
            if not in_tree[nxt]:
                heapq.heappush(
                    heap, (topo.weight(v, nxt), float(rng.random()), v, nxt)
                )
    if added != topo.n:  # pragma: no cover - guarded by is_connected above
        raise TopologyError("Prim did not reach all nodes")
    return SpanningTree(parent, root)


def rebuild_spanning_tree(
    topo: Topology,
    alive: Iterable[int],
    avoid_edges: Iterable[tuple[int, int]] = (),
    seed: int = 0,
    generation: int = 1,
    root: Optional[int] = None,
) -> SpanningTree:
    """Re-converge the overlay over the surviving topology.

    Same seeded-Prim construction as :func:`minimum_spanning_tree`, but
    restricted to the ``alive`` brokers and skipping ``avoid_edges``
    (partitioned overlay links). ``generation`` is mixed into the seed so
    each repair round draws an independent — yet fully replayable — tree;
    crashed-out nodes are marked :data:`EXCLUDED` in the parent vector.

    Raises :class:`TopologyError` if the surviving subgraph is disconnected
    (the failure schedule must keep survivors connected; the scenario
    sampler guarantees it, hand-written plans are validated here).
    """
    alive_set = set(alive)
    if not alive_set:
        raise TopologyError("cannot rebuild a tree with no surviving brokers")
    cut = {(min(a, b), max(a, b)) for a, b in avoid_edges}
    if root is None or root not in alive_set:
        root = min(alive_set)
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, topo.n, generation, 0x5176])
    )

    def usable(u: int, v: int) -> bool:
        return v in alive_set and (min(u, v), max(u, v)) not in cut

    parent = [EXCLUDED] * topo.n
    parent[root] = -1
    in_tree = bytearray(topo.n)
    in_tree[root] = 1
    heap: list[tuple[float, float, int, int]] = []
    for v in topo.neighbors(root):
        if usable(root, v):
            heapq.heappush(
                heap, (topo.weight(root, v), float(rng.random()), root, v)
            )
    added = 1
    while heap and added < len(alive_set):
        _w, _tb, u, v = heapq.heappop(heap)
        if in_tree[v]:
            continue
        in_tree[v] = 1
        parent[v] = u
        added += 1
        for nxt in topo.neighbors(v):
            if not in_tree[nxt] and usable(v, nxt):
                heapq.heappush(
                    heap, (topo.weight(v, nxt), float(rng.random()), v, nxt)
                )
    if added != len(alive_set):
        raise TopologyError(
            f"surviving overlay is disconnected: reached {added} of "
            f"{len(alive_set)} live brokers from root {root}"
        )
    return SpanningTree(parent, root)
