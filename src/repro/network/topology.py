"""Network topology: generic undirected weighted graphs + the paper's grid.

Nodes are dense integers ``0 .. n-1`` so adjacency can live in plain lists
(the simulator indexes these on every hop).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TopologyError

__all__ = ["Topology", "grid_topology"]


class Topology:
    """Undirected weighted graph over dense integer nodes.

    Parameters
    ----------
    n:
        Number of nodes (``0..n-1``).
    edges:
        Iterable of ``(u, v)`` or ``(u, v, weight)`` tuples. Parallel edges
        and self-loops are rejected.
    """

    def __init__(
        self, n: int, edges: Iterable[tuple[int, ...]] = ()
    ) -> None:
        if n <= 0:
            raise TopologyError(f"topology needs at least one node, got n={n}")
        self.n = n
        self._adj: list[dict[int, float]] = [dict() for _ in range(n)]
        self._edge_count = 0
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = edge  # type: ignore[misc]
            self.add_edge(int(u), int(v), float(w))

    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add undirected edge ``{u, v}`` with the given weight."""
        if u == v:
            raise TopologyError(f"self-loop on node {u} not allowed")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise TopologyError(f"edge ({u},{v}) out of range for n={self.n}")
        if v in self._adj[u]:
            raise TopologyError(f"duplicate edge ({u},{v})")
        if weight <= 0:
            raise TopologyError(f"edge ({u},{v}) weight must be > 0, got {weight}")
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._edge_count += 1

    def neighbors(self, u: int) -> list[int]:
        """Neighbours of ``u`` in ascending order."""
        return sorted(self._adj[u])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        try:
            return self._adj[u][v]
        except KeyError:
            raise TopologyError(f"no edge ({u},{v})") from None

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, w)`` with ``u < v``."""
        for u in range(self.n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def is_connected(self) -> bool:
        """BFS connectivity check."""
        seen = bytearray(self.n)
        seen[0] = 1
        frontier = [0]
        count = 1
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self._adj[u]:
                    if not seen[v]:
                        seen[v] = 1
                        count += 1
                        nxt.append(v)
            frontier = nxt
        return count == self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Topology n={self.n} edges={self._edge_count}>"


def grid_topology(k: int) -> Topology:
    """The paper's base-station layout: a k x k grid, 4-neighbour wired links.

    Node ``(row, col)`` has index ``row * k + col``. All edges have unit
    weight (every wired link costs the same 10 ms — Section 5.1).

    Examples
    --------
    >>> g = grid_topology(3)
    >>> g.n, g.edge_count
    (9, 12)
    >>> g.neighbors(4)  # centre of the 3x3 grid
    [1, 3, 5, 7]
    """
    if k <= 0:
        raise TopologyError(f"grid size must be >= 1, got k={k}")
    topo = Topology(k * k)
    for row in range(k):
        for col in range(k):
            node = row * k + col
            if col + 1 < k:
                topo.add_edge(node, node + 1)
            if row + 1 < k:
                topo.add_edge(node, node + k)
    return topo
