"""Physical network substrate.

The paper's testbed is a k x k grid of base stations ("event brokers")
joined by wired links (10 ms per hop), with mobile clients attached over
wireless links (20 ms). Two routing structures coexist:

* an **overlay spanning tree** (minimum-cost spanning tree of the grid) used
  for subscription propagation and event dissemination (the acyclic pub/sub
  overlay of Section 3), and
* **shortest paths in the underlying grid** used for direct broker-to-broker
  unicast (handoff requests, queue migration streams, home-broker
  forwarding) — Section 5.1: "Any pair of stations can connect with each
  other via the shortest path in the network."
"""

from repro.network.topology import Topology, grid_topology
from repro.network.spanning_tree import SpanningTree, minimum_spanning_tree
from repro.network.paths import ShortestPaths
from repro.network.links import LinkLayer, WIRED_LATENCY_MS, WIRELESS_LATENCY_MS

__all__ = [
    "Topology",
    "grid_topology",
    "SpanningTree",
    "minimum_spanning_tree",
    "ShortestPaths",
    "LinkLayer",
    "WIRED_LATENCY_MS",
    "WIRELESS_LATENCY_MS",
]
