"""Heap-based discrete-event scheduler.

Design notes
------------
The scheduler is the innermost loop of every experiment: a paper-scale run
pumps millions of events through it, so the hot path avoids attribute lookups
and allocations where practical (tuple heap entries rather than objects,
bound-method caching in :meth:`Simulator.run`).

Determinism: the heap is keyed by ``(time, seq)`` where ``seq`` is a
monotonically increasing schedule counter. Two consequences used throughout
the protocol implementations and their proofs of correctness:

1. Events never fire out of time order.
2. Events scheduled for the same instant fire in the order they were
   scheduled — which, combined with constant per-hop link latencies, gives
   free FIFO semantics on every link (see :mod:`repro.network.links`).

Cancellation is lazy: :class:`EventHandle.cancel` flags the entry and the
main loop skips flagged entries on pop, keeping cancel O(1).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SchedulingError

__all__ = ["Simulator", "EventHandle"]


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "seq", "cancelled")

    def __init__(self, time: float, seq: int) -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Safe to call multiple times."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial clock value (milliseconds by library convention).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    __slots__ = ("_heap", "_seq", "now", "_running", "_events_processed")

    def __init__(self, start_time: float = 0.0) -> None:
        # Heap entries: (time, seq, handle, callback, args)
        self._heap: list[tuple[float, int, EventHandle, Callable[..., Any], tuple]] = []
        self._seq = 0
        self.now: float = start_time
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` ms from now.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant (FIFO).
        """
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule into the past: delay={delay!r} at t={self.now!r}"
            )
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule into the past: t={time!r} < now={self.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq)
        heapq.heappush(self._heap, (time, seq, handle, callback, args))
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run until the event heap drains or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (even if the last event fired earlier), so repeated
        ``run(until=...)`` calls compose into contiguous windows.
        """
        if self._running:
            raise SchedulingError("Simulator.run() is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                time, _seq, handle, callback, args = heap[0]
                if until is not None and time > until:
                    break
                pop(heap)
                if handle.cancelled:
                    continue
                self.now = time
                self._events_processed += 1
                callback(*args)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire exactly one (non-cancelled) event. Return False if drained."""
        heap = self._heap
        while heap:
            time, _seq, handle, callback, args = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of heap entries, including lazily cancelled ones."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Count of callbacks fired so far (cancelled events excluded)."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Simulator t={self.now:.3f} pending={self.pending} "
            f"processed={self._events_processed}>"
        )
