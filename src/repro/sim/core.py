"""Hybrid lane + heap discrete-event scheduler.

Design notes
------------
The scheduler is the innermost loop of every experiment: a paper-scale run
pumps millions of events through it, so the hot path avoids attribute lookups
and allocations where practical.

Nearly all of that volume is link traffic carrying one of a handful of
*constant* delays (10 ms wired hops, 20 ms wireless slots, ``hops * 10 ms``
unicast legs). Pushing those through a binary heap pays O(log n) sift cost
plus a tuple + handle allocation per event for ordering the heap already
knows: within one constant delay, events depart in ``now`` order, and
``now`` never decreases, so arrival order *is* submission order. The
``lanes`` engine (the default) exploits this:

* :meth:`Simulator.schedule_fifo` is the non-cancellable fast path. Each
  distinct delay owns a **lane** — a flat deque of ``time, seq, callback,
  args`` runs with O(1) append/popleft and no per-event handle or wrapper
  tuple. Per-lane times are non-decreasing by construction, so each lane is
  a sorted queue and its head is its minimum.
* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` remain the
  general heap path for the irregular tail: timers, workload arrivals, and
  anything that may be cancelled.
* The run loop merges the lane heads (tracked in a tiny auxiliary heap, one
  entry per non-empty lane) with the main heap head, always firing the
  globally smallest ``(time, seq)``. Lane count is bounded by the number of
  distinct constant delays (a few dozen at most), so the merge step is
  O(log #lanes) against the heap's O(log #pending-events).

Determinism: every event — lane or heap — is stamped with a ``seq`` from one
shared monotone counter, and execution order is exactly ascending
``(time, seq)`` under both engines. Two consequences used throughout the
protocol implementations and their proofs of correctness:

1. Events never fire out of time order.
2. Events scheduled for the same instant fire in the order they were
   scheduled — which, combined with constant per-hop link latencies, gives
   free FIFO semantics on every link (see :mod:`repro.network.links`).

Because the merged order equals the heap-only order, the legacy engine
(``engine="heap"``, where :meth:`schedule_fifo` degrades to a heap push) is
event-for-event identical — ``tests/test_sim_engine.py`` proves it with
differential property tests on randomized mobility scenarios.

Cancellation is lazy: :class:`EventHandle.cancel` flags the entry and the
main loop skips flagged entries on pop, keeping cancel O(1). Lane events are
deliberately non-cancellable (no handle exists to flag).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError, SchedulingError

__all__ = ["Simulator", "EventHandle", "SIM_ENGINES"]

#: scheduler implementations selectable via ``Simulator(engine=...)`` /
#: ``PubSubSystem(sim_engine=...)``
SIM_ENGINES = ("lanes", "heap")


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation.

    Deliberately minimal: the heap entry already carries the ``(time, seq)``
    ordering key, so the handle stores only the cancellation flag.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Safe to call multiple times."""
        self.cancelled = True


#: shared sentinel for heap entries that can never be cancelled (the
#: ``engine="heap"`` fallback of :meth:`Simulator.schedule_fifo`); avoids a
#: per-event handle allocation on that path too
_NEVER_CANCELLED = EventHandle()


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial clock value (milliseconds by library convention).
    engine:
        ``"lanes"`` (default) routes :meth:`schedule_fifo` through per-delay
        FIFO lanes; ``"heap"`` is the legacy heap-only engine, kept for
        differential testing and benchmarking.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.schedule_fifo(3.0, fired.append, "c")
    >>> sim.run()
    >>> fired
    ['b', 'c', 'a']
    """

    __slots__ = (
        "_heap",
        "_seq",
        "now",
        "_running",
        "_events_processed",
        "engine",
        "_lanes",
        "_lane_heads",
        "_use_lanes",
        "_fifo_batch",
    )

    def __init__(self, start_time: float = 0.0, engine: str = "lanes") -> None:
        if engine not in SIM_ENGINES:
            raise ConfigurationError(
                f"sim engine must be one of {SIM_ENGINES}, got {engine!r}"
            )
        # Heap entries: (time, seq, handle, callback, args)
        self._heap: list[tuple[float, int, EventHandle, Callable[..., Any], tuple]] = []
        self._seq = 0
        self.now: float = start_time
        self._running = False
        self._events_processed = 0
        self.engine = engine
        self._use_lanes = engine == "lanes"
        # delay -> lane; each lane is a flat deque of 4-field runs
        # (time, seq, callback, args) in strictly increasing (time, seq)
        self._lanes: dict[float, deque] = {}
        # aux heap holding (head_time, head_seq, lane) for each non-empty lane
        self._lane_heads: list[tuple[float, int, deque]] = []
        # callback -> batch handler; see register_fifo_batch
        self._fifo_batch: dict[Callable[..., Any], Callable[[list], Any]] = {}

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` ms from now.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant (FIFO).
        """
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule into the past: delay={delay!r} at t={self.now!r}"
            )
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule into the past: t={time!r} < now={self.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle()
        heapq.heappush(self._heap, (time, seq, handle, callback, args))
        return handle

    def schedule_fifo(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        """Non-cancellable fast path for constant-delay FIFO traffic.

        Equivalent to :meth:`schedule` (same ``(time, seq)`` firing order,
        drawn from the same counter) but returns no handle: on the lanes
        engine the event lands in the per-delay lane in O(1) with no
        allocation beyond the argument tuple; on the heap engine it degrades
        to a plain heap push.

        Use it for traffic that is never cancelled — link transmissions,
        fan-out deliveries. Anything that may need :meth:`EventHandle.cancel`
        must go through :meth:`schedule`.
        """
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule into the past: delay={delay!r} at t={self.now!r}"
            )
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        if not self._use_lanes:
            heapq.heappush(
                self._heap, (time, seq, _NEVER_CANCELLED, callback, args)
            )
            return
        lane = self._lanes.get(delay)
        if lane is None:
            lane = self._lanes[delay] = deque()
        if not lane:
            heapq.heappush(self._lane_heads, (time, seq, lane))
        lane.append(time)
        lane.append(seq)
        lane.append(callback)
        lane.append(args)

    def register_fifo_batch(
        self,
        callback: Callable[..., Any],
        handler: Callable[[list], Any],
    ) -> None:
        """Drain same-instant runs of ``callback`` lane events as one batch.

        After registration, whenever the run loop pops a lane event whose
        callback is ``callback``, it also pops every immediately-following
        event from the same lane that (a) fires at the same instant, (b)
        carries the same callback, and (c) precedes the next pending event
        from any *other* source in global ``(time, seq)`` order — then calls
        ``handler(args_list)`` once with the argument tuples in firing
        order. Because the batched events were contiguous in the global
        order and the handler processes them in sequence, any schedule the
        handler performs draws seqs exactly as the per-event callbacks
        would have: traces are identical with batching on or off (the
        differential battery in ``tests/test_matching_batch.py`` holds this
        to byte identity).

        On the ``heap`` engine :meth:`schedule_fifo` traffic bypasses the
        lanes, so registration is a no-op there — per-event delivery, same
        trace.
        """
        self._fifo_batch[callback] = handler

    #: sans-IO ``Clock`` facade (:mod:`repro.drivers.base`): the simulator
    #: *is* the simulated driver's clock, with zero adapter indirection —
    #: the aliases bind the same function objects, so the facade path is
    #: byte-identical to calling ``schedule``/``schedule_fifo`` directly.
    call_later = schedule
    call_later_fifo = schedule_fifo

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run until all event sources drain or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (even if the last event fired earlier), so repeated
        ``run(until=...)`` calls compose into contiguous windows.
        """
        if self._running:
            raise SchedulingError("Simulator.run() is not reentrant")
        self._running = True
        heap = self._heap
        lheads = self._lane_heads
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        batch_map = self._fifo_batch
        try:
            while True:
                # pick the globally smallest (time, seq) across the main
                # heap and the per-lane head index
                if lheads:
                    lhead = lheads[0]
                    if heap:
                        hhead = heap[0]
                        take_heap = hhead[0] < lhead[0] or (
                            hhead[0] == lhead[0] and hhead[1] < lhead[1]
                        )
                    else:
                        take_heap = False
                elif heap:
                    hhead = heap[0]
                    take_heap = True
                else:
                    break
                if take_heap:
                    time = hhead[0]
                    if until is not None and time > until:
                        break
                    heappop(heap)
                    if hhead[2].cancelled:
                        continue
                    callback = hhead[3]
                    args = hhead[4]
                else:
                    time = lhead[0]
                    if until is not None and time > until:
                        break
                    lane = lhead[2]
                    lane.popleft()  # time (== lhead[0])
                    lane.popleft()  # seq
                    callback = lane.popleft()
                    args = lane.popleft()
                    if batch_map:
                        handler = batch_map.get(callback)
                        if handler is not None:
                            # batch boundary: the next (time, seq) due from
                            # any other source — the main heap head or
                            # another lane's head. The current lane sits at
                            # lheads[0], so its competitors are the aux
                            # heap root's children.
                            if heap:
                                bt, bs = heap[0][0], heap[0][1]
                            else:
                                bt = bs = None
                            if len(lheads) > 1:
                                c = lheads[1]
                                if len(lheads) > 2:
                                    d = lheads[2]
                                    if d[0] < c[0] or (
                                        d[0] == c[0] and d[1] < c[1]
                                    ):
                                        c = d
                                if bt is None or c[0] < bt or (
                                    c[0] == bt and c[1] < bs
                                ):
                                    bt, bs = c[0], c[1]
                            items = [args]
                            while (
                                lane
                                and lane[0] == time
                                and lane[2] is callback
                                and (bt is None or time < bt or lane[1] < bs)
                            ):
                                lane.popleft()  # time
                                lane.popleft()  # seq
                                lane.popleft()  # callback
                                items.append(lane.popleft())
                            if lane:
                                heapreplace(lheads, (lane[0], lane[1], lane))
                            else:
                                heappop(lheads)
                            self.now = time
                            self._events_processed += len(items)
                            handler(items)
                            continue
                    if lane:
                        heapreplace(lheads, (lane[0], lane[1], lane))
                    else:
                        heappop(lheads)
                self.now = time
                self._events_processed += 1
                callback(*args)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire exactly one (non-cancelled) event. Return False if drained."""
        heap = self._heap
        lheads = self._lane_heads
        while True:
            if lheads:
                lhead = lheads[0]
                take_heap = bool(heap) and (
                    heap[0][0] < lhead[0]
                    or (heap[0][0] == lhead[0] and heap[0][1] < lhead[1])
                )
            elif heap:
                take_heap = True
            else:
                return False
            if take_heap:
                time, _seq, handle, callback, args = heapq.heappop(heap)
                if handle.cancelled:
                    continue
            else:
                lane = lhead[2]
                time = lane.popleft()
                lane.popleft()  # seq
                callback = lane.popleft()
                args = lane.popleft()
                if lane:
                    heapq.heapreplace(lheads, (lane[0], lane[1], lane))
                else:
                    heapq.heappop(lheads)
            self.now = time
            self._events_processed += 1
            callback(*args)
            return True

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        lheads = self._lane_heads
        if lheads:
            lane_t = lheads[0][0]
            if not heap or lane_t < heap[0][0]:
                return lane_t
        return heap[0][0] if heap else None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of pending entries (including lazily cancelled heap ones)."""
        n = len(self._heap)
        for lane in self._lanes.values():
            n += len(lane) // 4
        return n

    @property
    def events_processed(self) -> int:
        """Count of callbacks fired so far (cancelled events excluded)."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Simulator t={self.now:.3f} engine={self.engine} "
            f"pending={self.pending} processed={self._events_processed}>"
        )
