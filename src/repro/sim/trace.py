"""Structured simulation trace.

The tracer records protocol-level happenings (handoff started, queue frozen,
event delivered, ...) as lightweight tuples. It serves three purposes:

1. Debugging: ``tracer.format()`` renders a readable timeline.
2. Verification: integration tests assert on trace contents (e.g. "every
   sub_migration is acked exactly once").
3. Metrics cross-checks: the delivery checker can be reconciled against the
   trace.

Tracing is off by default on hot categories; experiments enable only what
they need, so paper-scale runs pay ~nothing for the facility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: time, category, and free-form payload fields."""

    time: float
    category: str
    fields: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.fields)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"[{self.time:10.3f}] {self.category}: {body}"


class Tracer:
    """Category-filtered trace collector.

    Parameters
    ----------
    enabled:
        Iterable of category names to record, or ``"*"`` to record all,
        or None/empty to record nothing.
    clock:
        Zero-argument callable returning the current simulation time.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        enabled: Optional[Iterable[str] | str] = None,
    ) -> None:
        self._clock = clock
        self.records: list[TraceRecord] = []
        self._all = enabled == "*"
        self._enabled: frozenset[str] = (
            frozenset() if (enabled is None or self._all) else frozenset(enabled)
        )

    def wants(self, category: str) -> bool:
        """True if ``category`` is being recorded (cheap guard for hot paths)."""
        return self._all or category in self._enabled

    def emit(self, category: str, **fields: Any) -> None:
        """Record one entry if the category is enabled."""
        if self._all or category in self._enabled:
            self.records.append(
                TraceRecord(self._clock(), category, tuple(fields.items()))
            )

    def select(self, category: str) -> list[TraceRecord]:
        """All recorded entries of the given category, in time order."""
        return [r for r in self.records if r.category == category]

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (up to ``limit``) records."""
        records = self.records if limit is None else self.records[:limit]
        return "\n".join(str(r) for r in records)

    def clear(self) -> None:
        self.records.clear()
