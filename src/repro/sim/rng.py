"""Named, independently seeded random streams.

Every stochastic component of an experiment (topology tie-breaks, workload
subscriptions, each client's mobility process, publication jitter, ...) draws
from its own named stream derived from the experiment seed via
``numpy.random.SeedSequence.spawn``-style key hashing. Consequences:

* Runs are exactly reproducible given the experiment seed.
* Changing how many draws one component makes does not perturb any other
  component (no accidental coupling through a shared global generator) —
  essential when comparing protocols under *identical* workloads: the three
  protocol runs of a figure point share the same workload streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


def _key_to_entropy(key: str) -> int:
    """Stable 128-bit entropy from a stream name (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "little")


class RandomStreams:
    """Factory of named :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> a = RandomStreams(7).stream("mobility/client/3")
    >>> b = RandomStreams(7).stream("mobility/client/3")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            ss = np.random.SeedSequence([self.seed, _key_to_entropy(name)])
            gen = np.random.default_rng(ss)
            self._cache[name] = gen
        return gen

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        """One uniform integer draw in ``[low, high)`` from stream ``name``."""
        return int(self.stream(name).integers(low, high))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform float draw in ``[low, high)`` from stream ``name``."""
        return float(self.stream(name).uniform(low, high))
