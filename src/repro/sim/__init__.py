"""Discrete-event simulation engine.

A small, fast, deterministic DES kernel purpose-built for this reproduction
(SimPy is not available in the offline environment). The engine provides:

* :class:`~repro.sim.core.Simulator` — hybrid lane + heap scheduler with
  strict deterministic ordering: events fire in non-decreasing time order
  and same-time events fire in schedule order (FIFO tie-break). Constant-
  delay FIFO traffic takes the O(1) ``schedule_fifo`` lane fast path; the
  heap serves the cancellable/irregular tail.
* :class:`~repro.sim.process.Process` — generator-based cooperative
  processes for workload modelling (``yield delay`` suspends).
* :class:`~repro.sim.rng.RandomStreams` — named, independently seeded
  numpy random streams so workload draws are reproducible and decoupled.
* :class:`~repro.sim.trace.Tracer` — structured event trace for debugging
  and for the delivery/ordering checkers.
"""

from repro.sim.core import SIM_ENGINES, Simulator, EventHandle
from repro.sim.process import Process, spawn
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "SIM_ENGINES",
    "Simulator",
    "EventHandle",
    "Process",
    "spawn",
    "RandomStreams",
    "Tracer",
    "TraceRecord",
]
