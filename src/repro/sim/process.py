"""Generator-based cooperative processes.

The mobility model and publisher workloads are most naturally written as
sequential processes ("sleep exp(1/λ), connect, sleep, disconnect, ...").
This module provides the thin coroutine layer on top of the callback
scheduler: a process is a Python generator that yields the number of
milliseconds to sleep; the driver reschedules itself on each yield.

A generator may also yield ``0`` to defer to other events at the current
instant (everything already scheduled for "now" runs first).

Processes are **clock-agnostic**: they schedule through the sans-IO
``Clock`` facade's cancellable path (``call_later`` — on the simulator
that is the scheduler's *heap* path, not the constant-delay FIFO lanes:
wakeup delays are irregular and :meth:`Process.interrupt` needs the
cancellable handle). The same generator processes therefore drive the
workload under the discrete-event simulator *and* under the live asyncio
runtime (:mod:`repro.drivers.live`). Process wakeups are a vanishing
fraction of event volume — the lanes exist for the link layer underneath
(:mod:`repro.network.links`), which is where the millions of constant-delay
events come from.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - the clock is duck-typed at runtime
    from repro.drivers.base import CancelHandle, Clock

__all__ = ["Process", "spawn"]

ProcessGen = Generator[float, None, None]


class Process:
    """A running generator process bound to a clock.

    The process starts automatically at construction time (its first segment
    runs at ``clock.now + start_delay``). Use :meth:`interrupt` to stop it;
    interruption cancels the pending wakeup and closes the generator.
    """

    __slots__ = ("clock", "_gen", "_pending", "alive", "name")

    def __init__(
        self,
        clock: "Clock",
        gen: ProcessGen,
        start_delay: float = 0.0,
        name: str = "",
    ) -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you call the generator function?"
            )
        self.clock = clock
        self._gen = gen
        self.alive = True
        self.name = name
        self._pending: Optional["CancelHandle"] = clock.call_later(
            start_delay, self._resume
        )

    def _resume(self) -> None:
        self._pending = None
        try:
            delay = next(self._gen)
        except StopIteration:
            self.alive = False
            return
        if delay is None or delay < 0:
            self.alive = False
            raise SimulationError(
                f"process {self.name or self._gen!r} yielded invalid delay {delay!r}"
            )
        self._pending = self.clock.call_later(delay, self._resume)

    def interrupt(self) -> None:
        """Stop the process permanently. Idempotent."""
        if not self.alive:
            return
        self.alive = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._gen.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "done"
        return f"<Process {self.name or id(self):x} {state}>"


def spawn(
    clock: "Clock",
    gen: ProcessGen,
    start_delay: float = 0.0,
    name: str = "",
) -> Process:
    """Convenience wrapper: ``Process(clock, gen, start_delay, name)``.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def worker():
    ...     log.append(("start", sim.now))
    ...     yield 10.0
    ...     log.append(("end", sim.now))
    >>> _ = spawn(sim, worker())
    >>> sim.run()
    >>> log
    [('start', 0.0), ('end', 10.0)]
    """
    return Process(clock, gen, start_delay=start_delay, name=name)
