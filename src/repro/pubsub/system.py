"""PubSubSystem: wires the driver, network, brokers, clients and protocol.

This is the top-level object a user (or the experiment runner) builds:

>>> from repro.pubsub.system import PubSubSystem
>>> from repro.pubsub.filters import RangeFilter
>>> sys_ = PubSubSystem(grid_k=3, protocol="mhh", seed=1)
>>> c = sys_.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
>>> c.connect(0); sys_.sim.run(until=100.0)

Brokers sit on a k x k grid; the overlay is a seeded minimum spanning tree;
the mobility protocol is chosen by name ("mhh", "sub-unsub", "home-broker",
"two-phase") or supplied as a factory.

The protocol core is sans-IO: brokers, clients and the mobility protocols
only ever touch ``system.clock`` (now / call_later) and ``system.net``
(send_broker / unicast / send_client / send_uplink) — the ``driver``
argument decides what stands behind those facades. The default
:class:`~repro.drivers.simulated.SimulatedDriver` is the discrete-event
engine (byte-identical to the pre-driver system); a
:class:`~repro.drivers.live.LiveDriver` runs the same kernel under a real
asyncio event loop (see ``python -m repro.experiments.cli soak``).
"""

from __future__ import annotations

from typing import Callable, Optional, Union, TYPE_CHECKING

from repro.drivers.base import Driver
from repro.drivers.simulated import SimulatedDriver
from repro.errors import ConfigurationError
from repro.metrics.hub import MetricsHub
from repro.network.faults import FaultProfile, LinkFaultInjector
from repro.network.recovery import CrashPlan
from repro.network.links import (
    WIRED_LATENCY_MS,
    WIRELESS_LATENCY_MS,
)
from repro.network.paths import ShortestPaths
from repro.network.spanning_tree import minimum_spanning_tree
from repro.network.topology import Topology, grid_topology
from repro.pubsub.broker import Broker
from repro.pubsub.client import Client
from repro.pubsub.filters import Filter
from repro.sim.core import SIM_ENGINES
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer
from repro.util.ids import IdAllocator

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobility.base import MobilityProtocol
    from repro.pubsub.recovery import RecoveryCoordinator
    from repro.pubsub.wal import LogStore

__all__ = ["PubSubSystem"]

ProtocolSpec = Union[str, Callable[["PubSubSystem"], "MobilityProtocol"]]

DriverSpec = Union[str, Driver, None]


def _protocol_factory(spec: ProtocolSpec) -> Callable[["PubSubSystem"], "MobilityProtocol"]:
    if callable(spec):
        return spec
    from repro.mobility import registry

    return registry.factory(spec)


class PubSubSystem:
    """A complete simulated pub/sub deployment."""

    def __init__(
        self,
        grid_k: int,
        protocol: ProtocolSpec = "mhh",
        seed: int = 0,
        wired_latency: float = WIRED_LATENCY_MS,
        wireless_latency: float = WIRELESS_LATENCY_MS,
        covering_enabled: Optional[bool] = None,
        migration_batch_size: int = 10,
        stream_pacing_ms: Optional[float] = None,
        unicast_routing: str = "grid",
        trace: Optional[Union[str, list[str]]] = None,
        topology: Optional[Topology] = None,
        matching_engine: str = "counting",
        sim_engine: str = "lanes",
        covering_index: bool = True,
        faults: Optional[FaultProfile] = None,
        crashes: Optional["CrashPlan"] = None,
        driver: DriverSpec = None,
        reliable: bool = False,
        retry_budget: int = 8,
        queue_cap: Optional[int] = None,
        durable: bool = False,
        wal_dir: Optional[str] = None,
        log_store: Optional["LogStore"] = None,
        event_batching: bool = False,
    ) -> None:
        if grid_k <= 0 and topology is None:
            raise ConfigurationError(f"grid_k must be >= 1, got {grid_k}")
        if retry_budget < 1:
            raise ConfigurationError(
                f"retry_budget must be >= 1, got {retry_budget}"
            )
        if queue_cap is not None and queue_cap < 1:
            raise ConfigurationError(
                f"queue_cap must be >= 1 (or None for unbounded), "
                f"got {queue_cap}"
            )
        if wal_dir is not None and not durable:
            raise ConfigurationError("wal_dir requires durable=True")
        if log_store is not None and not durable:
            raise ConfigurationError("log_store requires durable=True")
        if migration_batch_size <= 0:
            raise ConfigurationError(
                f"migration_batch_size must be >= 1, got {migration_batch_size}"
            )
        if unicast_routing not in ("grid", "tree"):
            raise ConfigurationError(
                f"unicast_routing must be 'grid' or 'tree', got {unicast_routing!r}"
            )
        if matching_engine not in ("counting", "scan", "counting-compiled"):
            raise ConfigurationError(
                f"matching_engine must be 'counting', 'scan' or "
                f"'counting-compiled', got {matching_engine!r}"
            )
        if sim_engine not in (*SIM_ENGINES, "lanes-compiled"):
            raise ConfigurationError(
                f"sim_engine must be one of "
                f"{(*SIM_ENGINES, 'lanes-compiled')}, got {sim_engine!r}"
            )
        if driver is None or driver == "sim":
            driver = SimulatedDriver(engine=sim_engine)
        elif not isinstance(driver, Driver):
            raise ConfigurationError(
                f"driver must be None, 'sim' or a Driver instance, "
                f"got {driver!r}"
            )
        #: the execution driver: owns the clock and builds the transport.
        #: Default is the discrete-event SimulatedDriver; pass a
        #: repro.drivers.live.LiveDriver to run the same kernel under an
        #: asyncio event loop (or a VirtualClock for differential tests).
        self.driver = driver
        #: sans-IO Clock facade (now / call_later / call_later_fifo)
        self.clock = driver.clock
        #: the discrete-event engine when the driver is simulated, else
        #: None — only `run`/`run_until_quiescent` and the experiment
        #: runner depend on it; the kernel itself never touches it
        self.sim = driver.sim
        #: broker matching implementation: 'counting' (broker-wide counting
        #: engine, the default) or 'scan' (legacy per-neighbour scan path,
        #: kept for differential testing)
        self.matching_engine = matching_engine
        #: scheduler implementation: 'lanes' (per-delay FIFO lanes + heap,
        #: the default) or 'heap' (legacy heap-only engine, kept for
        #: differential testing)
        self.sim_engine = sim_engine
        #: indexed covering (per-neighbour CoveringIndex + broker-wide
        #: withdrawal-candidate index; the default) vs the legacy scan-based
        #: covering checks — message-for-message identical, kept toggleable
        #: for differential testing (tests/test_control_plane.py)
        self.covering_index = bool(covering_index)
        self.seed = seed
        #: events per queue-migration message (bulk queue transfers)
        self.migration_batch_size = migration_batch_size
        #: dispatch interval between consecutive batches of one queue
        #: stream. Default: one batch per wired-link slot, so shipping a
        #: backlog takes time proportional to its size (a 60-event queue is
        #: not teleported); 0 disables pacing.
        if stream_pacing_ms is None:
            stream_pacing_ms = wired_latency
        if stream_pacing_ms < 0:
            raise ConfigurationError(
                f"stream_pacing_ms must be >= 0, got {stream_pacing_ms}"
            )
        self.stream_pacing_ms = stream_pacing_ms
        self.streams = RandomStreams(seed)
        self.ids = IdAllocator()
        self.metrics = MetricsHub()
        self.tracer = Tracer(lambda: self.clock.now, enabled=trace)

        self.topology = topology if topology is not None else grid_topology(grid_k)
        self.paths = ShortestPaths(self.topology)
        self.tree = minimum_spanning_tree(self.topology, seed=seed)
        #: 'grid' (paper §5.1: stations talk via shortest paths) or 'tree'
        #: (route point-to-point traffic over the overlay too — ablation)
        self.unicast_routing = unicast_routing

        #: wireless fault profile (None / inactive = perfect links; the
        #: injector is only built for an *active* profile so fault-free
        #: runs stay bit-identical to the seed behaviour)
        self.faults = faults
        self.fault_injector: Optional[LinkFaultInjector] = None
        if faults is not None and faults.active:
            from repro.pubsub.messages import DeliverMessage

            def _droppable(payload: object) -> bool:
                # only final event deliveries ride the unreliable path;
                # control traffic uses the link-layer ARQ (see
                # repro.network.faults). isinstance: ReliableDeliver frames
                # are final deliveries too and must face the same channel.
                return isinstance(payload, DeliverMessage)

            def _on_drop(payload: "DeliverMessage") -> None:
                rel = self.reliability
                if rel is not None and rel.is_tracked(payload):
                    # the retransmit window still covers this frame: a
                    # recoverable drop, reconciled at end of run instead
                    # of an immediate loss write-off
                    self.metrics.on_recoverable_drop(
                        payload.client, payload.event
                    )
                    return
                self.metrics.on_loss(payload.client, payload.event)

            self.fault_injector = LinkFaultInjector(
                faults,
                rng=self.streams.stream("faults/wireless"),
                droppable=_droppable,
                on_drop=_on_drop,
            )
            self.fault_injector.account_fault = self.metrics.traffic.account_fault

        #: end-to-end reliability layer (None = the paper's best-effort
        #: downlink, the default; built below only when reliable=True so
        #: default-off runs construct nothing and draw nothing)
        self.reliability = None
        self.queue_cap = queue_cap

        _on_shed = None
        if queue_cap is not None:
            from repro.pubsub.messages import DeliverMessage as _Deliver

            def _on_shed(payload: object, client_id: int) -> bool:
                # bulkhead policy: shed data (final deliveries), never
                # control — control messages are admitted over-cap
                if not isinstance(payload, _Deliver):
                    return False
                self.metrics.traffic.account_shed("queue_cap", client_id)
                rel = self.reliability
                if rel is not None and rel.is_tracked(payload):
                    # retry-covered: the retransmission timer redelivers
                    # (or eventually writes the window off); ledger only
                    return True
                self.metrics.delivery.mark_shed(client_id, payload.event)
                return True

        #: sans-IO Transport facade the kernel sends through (under the
        #: simulated driver this is the modelled LinkLayer; the live
        #: driver hands the *same* LinkLayer a wall-clock asyncio clock)
        self.net = driver.build_transport(
            self.topology,
            self.paths,
            wired_latency=wired_latency,
            wireless_latency=wireless_latency,
            account=self.metrics.account,
            unicast_hops=(
                self.tree.distance if unicast_routing == "tree" else None
            ),
            faults=self.fault_injector,
            queue_cap=queue_cap,
            on_shed=_on_shed,
        )
        #: legacy alias for the transport (pre-driver call sites/tests)
        self.links = self.net

        if reliable:
            from repro.pubsub.reliability import ReliabilityManager

            self.reliability = ReliabilityManager(
                self, retry_budget=retry_budget
            )
            self.net.reliability = self.reliability
            self.metrics.delivery.enable_reliability()
        elif queue_cap is not None:
            # capped-but-unreliable runs still write sheds off explicitly;
            # the checker needs pair tracking to reconcile them
            self.metrics.delivery.enable_reliability()

        #: durable broker state (write-ahead log + persistent sessions).
        #: Like faults/crashes/reliability, the manager is only built when
        #: durable=True: default-off runs construct nothing, append
        #: nothing, and stay byte-identical to the non-durable seed
        #: behaviour (the hot-path hooks are a single `is not None` check)
        self.durability = None
        if durable:
            from repro.pubsub.wal import DurabilityManager

            store = (log_store if log_store is not None
                     else driver.build_log_store(wal_dir))
            self.durability = DurabilityManager(self, store)

        self.brokers: dict[int, Broker] = {}
        for bid in range(self.topology.n):
            broker = Broker(self, bid)
            self.brokers[bid] = broker
            self.net.register_broker(bid, broker.receive)

        #: batched event fan-out: drain same-instant wired EventMessage
        #: arrivals at a broker through one FilterTable.match_batch pass.
        #: Trace-identical to per-event delivery (the fuzzer's batching
        #: lane gates byte identity); default off, so seed digests are
        #: untouched. No-op under drivers/engines without FIFO lanes.
        self.event_batching = bool(event_batching)
        if event_batching:
            register_batch = getattr(self.net, "register_broker_batch", None)
            enable = getattr(self.net, "enable_event_batching", None)
            if register_batch is not None and enable is not None:
                for bid, broker in self.brokers.items():
                    register_batch(bid, broker.receive_batch)
                enable()

        self.clients: dict[int, Client] = {}

        factory = _protocol_factory(protocol)
        self.protocol: "MobilityProtocol" = factory(self)
        # Covering-based propagation pruning: ON for protocols that flood
        # subscriptions per handoff (sub-unsub), OFF for MHH whose migration
        # surgery requires exact per-key table state (paper §4.1 notes the
        # extra machinery covering would need; DESIGN.md records the choice).
        if covering_enabled is None:
            covering_enabled = self.protocol.default_covering
        self.covering_enabled = covering_enabled

        #: overlay failure schedule (None / inactive = crash-free; like the
        #: fault injector, the coordinator is only built for an *active*
        #: plan, so crash-free runs stay bit-identical to the seed behaviour)
        self.crashes = crashes
        self.recovery: Optional["RecoveryCoordinator"] = None
        if crashes is not None and crashes.active:
            from repro.pubsub.recovery import RecoveryCoordinator

            self.recovery = RecoveryCoordinator(self, crashes)
            self.net.recovery = self.recovery
            self.metrics.delivery.enable_crash_tracking()
            self.recovery.schedule()

    # ------------------------------------------------------------------
    @property
    def broker_count(self) -> int:
        return self.topology.n

    def add_client(
        self,
        filter: Filter,
        broker: int,
        mobile: bool = False,
    ) -> Client:
        """Create a client whose home broker is ``broker``.

        The client is *not* connected yet; call :meth:`Client.connect`.
        Its subscription is registered with the delivery checker if it is a
        topic range (the workload's case).
        """
        if broker not in self.brokers:
            raise ConfigurationError(f"unknown broker id {broker}")
        cid = self.ids.next("client")
        client = Client(self, cid, filter, home_broker=broker, mobile=mobile)
        self.clients[cid] = client
        rng = filter.as_range()
        if rng is not None and rng[0] == "topic":
            self.metrics.delivery.register_subscription(cid, rng[1], rng[2])
        return client

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation (see :meth:`repro.sim.core.Simulator.run`).

        Only meaningful under the simulated driver; a live system is driven
        by its clock (the asyncio loop / :class:`VirtualClock`) instead.
        """
        self._require_sim().run(until=until)

    def run_until_quiescent(self, max_time: Optional[float] = None) -> None:
        """Drain every pending event (bounded by ``max_time`` if given)."""
        if max_time is None:
            self._require_sim().run()
        else:
            self._require_sim().run(until=max_time)

    def _require_sim(self):
        if self.sim is None:
            raise ConfigurationError(
                f"PubSubSystem.run is only available under the simulated "
                f"driver (driver={self.driver.name!r}); drive the live "
                f"clock / event loop instead"
            )
        return self.sim

    # ------------------------------------------------------------------
    # invariants (used by tests)
    # ------------------------------------------------------------------
    def check_mirror_invariant(self) -> None:
        """Every broker's advertised set equals the neighbour's received set."""
        for bid, broker in self.brokers.items():
            for nbr in broker.table.neighbors:
                mine = broker.table.snapshot_advertised()[nbr]
                theirs = self.brokers[nbr].table.snapshot_broker_filters()[bid]
                if mine != theirs:
                    raise AssertionError(
                        f"mirror invariant broken on edge {bid}->{nbr}: "
                        f"advertised={sorted(map(str, mine))} "
                        f"received={sorted(map(str, theirs))}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PubSubSystem brokers={self.broker_count} "
            f"clients={len(self.clients)} protocol={self.protocol.name}>"
        )
