"""Fast stabbing/containment queries over a dynamic set of closed intervals.

The broker hot path asks, for every event at every hop, "does any filter
advertised by neighbour *n* match this event?" — with range filters this is
an interval *stabbing* query. The subscription-propagation path asks "is this
new interval contained in an existing one?" — a *containment* query. The
covering-based withdrawal path asks the reverse: "which installed intervals
does this withdrawn one contain?" — a containment *enumeration*
(:meth:`~IntervalIndex.contained_keys`).

The broker-wide counting engine (:mod:`repro.pubsub.matching`) additionally
asks "*which* intervals contain this point?" — a stabbing *enumeration*
query (:meth:`~IntervalIndex.stab_all`).

Boolean stab and containment are answered in O(log n) from one structure:
intervals sorted by ``(lo, hi)`` with prefix maxima over ``hi`` (top-2
maxima, so containment can exclude one key). Mobility churn mutates these
indexes on **every handoff**, so mutation cost is what shapes the paper's
Figure 5(a)/6(a) curves; the index therefore maintains the sorted arrays
*incrementally* — a bisect insert/delete plus a local repair of the prefix
maxima (the repair stops at the first position whose top-2 is unaffected),
so a mutation costs O(log n) comparisons plus one C-level ``memmove``
instead of the former full O(n log n) re-sort. Enumeration is answered from
a centred interval tree built lazily; mutations go into a small pending
overlay (a tombstone set plus an extras map consulted at query time) and
the tree is only rebuilt once the overlay outgrows a fraction of the index.

The former rebuild-the-world behaviour — mark dirty on any mutation, re-sort
on the next query — is kept behind ``IntervalIndex(incremental=False)`` as
the differential-testing oracle and the benchmark baseline
(``benchmarks/bench_control_plane.py``); both modes must answer every query
identically (``tests/test_control_plane.py`` asserts it under randomized
churn).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from operator import itemgetter
from typing import Hashable, Iterator, Optional

__all__ = ["IntervalIndex"]

_NEG_INF = float("-inf")
_POS_INF = float("inf")

#: pending-overlay spill threshold: rebuild the stab_all tree once more than
#: max(_TREE_SLACK, n/8) mutations have accumulated since it was built
_TREE_SLACK = 16


class IntervalIndex:
    """Dynamic set of keyed closed intervals with fast queries.

    Examples
    --------
    >>> idx = IntervalIndex()
    >>> idx.add("a", 0.1, 0.4)
    >>> idx.add("b", 0.3, 0.9)
    >>> idx.stab(0.35)
    True
    >>> idx.stab(0.95)
    False
    >>> idx.contains_interval(0.2, 0.4)  # covered by "a"? lo 0.1<=0.2, hi 0.4>=0.4 -> yes
    True
    """

    __slots__ = (
        "_items", "_incremental", "_dirty", "_pairs", "_keys",
        "_max1_hi", "_max1_key", "_max2_hi",
        "_tree", "_tree_removed", "_tree_extra",
    )

    def __init__(self, incremental: bool = True) -> None:
        self._items: dict[Hashable, tuple[float, float]] = {}
        self._incremental = incremental
        self._dirty = True
        self._pairs: list[tuple[float, float]] = []
        self._keys: list[Hashable] = []
        self._max1_hi: list[float] = []
        self._max1_key: list[Hashable] = []
        self._max2_hi: list[float] = []
        self._tree: Optional[tuple] = None
        self._tree_removed: set = set()
        self._tree_extra: dict[Hashable, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: Hashable, lo: float, hi: float) -> None:
        """Insert or replace interval ``key``."""
        if self._incremental:
            if not self._dirty:
                old = self._items.get(key)
                if old is not None:
                    self._remove_sorted(key, old)
                self._insert_sorted(key, lo, hi)
            # the stab_all tree is patched through the overlay even while
            # the boolean arrays are still dirty: consumers that only ever
            # call stab_all (the counting engine's per-attribute indexes)
            # must not pay a full tree rebuild per mutation
            self._items[key] = (lo, hi)
            self._tree_update(key, (lo, hi))
            return
        self._items[key] = (lo, hi)
        self._dirty = True
        self._tree = None

    def remove(self, key: Hashable) -> None:
        """Remove interval ``key`` (KeyError if absent)."""
        iv = self._items.pop(key)
        self._after_remove(key, iv)

    def discard(self, key: Hashable) -> None:
        """Remove interval ``key`` if present."""
        iv = self._items.pop(key, None)
        if iv is not None:
            self._after_remove(key, iv)

    def _after_remove(self, key: Hashable, iv: tuple[float, float]) -> None:
        if self._incremental:
            if not self._dirty:
                self._remove_sorted(key, iv)
            self._tree_update(key, None)
            return
        self._dirty = True
        self._tree = None

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    def get(self, key: Hashable) -> Optional[tuple[float, float]]:
        return self._items.get(key)

    def items(self) -> Iterator[tuple[Hashable, tuple[float, float]]]:
        return iter(self._items.items())

    # ------------------------------------------------------------------
    # incremental maintenance of the sorted arrays
    # ------------------------------------------------------------------
    def _insert_sorted(self, key: Hashable, lo: float, hi: float) -> None:
        pairs = self._pairs
        i = bisect_right(pairs, (lo, hi))
        pairs.insert(i, (lo, hi))
        self._keys.insert(i, key)
        m1, mk, m2 = self._max1_hi, self._max1_key, self._max2_hi
        if i == 0:
            best, bkey, second = _NEG_INF, None, _NEG_INF
        else:
            best, bkey, second = m1[i - 1], mk[i - 1], m2[i - 1]
        if hi > best:
            second = best
            best, bkey = hi, key
        elif hi > second:
            second = hi
        m1.insert(i, best)
        mk.insert(i, bkey)
        m2.insert(i, second)
        # ripple the new hi into the (shifted) suffix triples. Prefix top-2
        # values are non-decreasing, so once hi falls out of some prefix's
        # top-2 it can never re-enter: stop at the first unaffected slot.
        for j in range(i + 1, len(pairs)):
            if hi <= m2[j]:
                break
            if hi > m1[j]:
                m2[j] = m1[j]
                m1[j] = hi
                mk[j] = key
            else:
                m2[j] = hi

    def _remove_sorted(self, key: Hashable, iv: tuple[float, float]) -> None:
        pairs = self._pairs
        keys = self._keys
        i = bisect_left(pairs, iv)
        while keys[i] != key:  # equal (lo, hi) pairs: scan for the key
            i += 1
        pairs.pop(i)
        keys.pop(i)
        m1, mk, m2 = self._max1_hi, self._max1_key, self._max2_hi
        m1.pop(i)
        mk.pop(i)
        m2.pop(i)
        if i == 0:
            best, bkey, second = _NEG_INF, None, _NEG_INF
        else:
            best, bkey, second = m1[i - 1], mk[i - 1], m2[i - 1]
        # re-run the prefix recurrence from the removal point; once the
        # running state matches what is stored, the rest is unchanged too
        # (same deterministic recurrence over identical remaining elements)
        for j in range(i, len(pairs)):
            hj = pairs[j][1]
            if hj > best:
                second = best
                best, bkey = hj, keys[j]
            elif hj > second:
                second = hj
            if m1[j] == best and mk[j] == bkey and m2[j] == second:
                break
            m1[j], mk[j], m2[j] = best, bkey, second

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        # key is the (lo, hi) pair itself; a C-level itemgetter avoids a
        # python-level lambda per item. In incremental mode this runs once
        # (first query after bulk load); afterwards mutations maintain the
        # arrays in place. In rebuild mode every mutation re-triggers it.
        order = sorted(self._items.items(), key=itemgetter(1))
        n = len(order)
        self._keys = [k for k, _iv in order]
        self._pairs = [iv for _k, iv in order]
        self._max1_hi = [0.0] * n
        self._max1_key = [None] * n
        self._max2_hi = [0.0] * n
        best_hi, best_key, second_hi = _NEG_INF, None, _NEG_INF
        for i, (k, (_lo, hi)) in enumerate(order):
            if hi > best_hi:
                second_hi = best_hi
                best_hi, best_key = hi, k
            elif hi > second_hi:
                second_hi = hi
            self._max1_hi[i] = best_hi
            self._max1_key[i] = best_key
            self._max2_hi[i] = second_hi
        self._dirty = False

    def stab(self, x: float) -> bool:
        """True if any interval contains point ``x``."""
        if self._dirty:
            self._rebuild()
        idx = bisect_right(self._pairs, (x, _POS_INF)) - 1
        return idx >= 0 and self._max1_hi[idx] >= x

    def contains_interval(
        self, lo: float, hi: float, exclude: Hashable = None
    ) -> bool:
        """True if some interval (other than ``exclude``) contains [lo, hi]."""
        if self._dirty:
            self._rebuild()
        idx = bisect_right(self._pairs, (lo, _POS_INF)) - 1
        if idx < 0:
            return False
        if self._max1_key[idx] != exclude:
            return self._max1_hi[idx] >= hi
        return self._max2_hi[idx] >= hi

    def contained_keys(self, lo: float, hi: float) -> list[Hashable]:
        """Keys whose interval [l, h] satisfies ``lo <= l`` and ``h <= hi``.

        The covering enumeration: every installed interval the (withdrawn)
        interval [lo, hi] covers. Cost is O(log n + w) where w is the number
        of intervals whose ``l`` falls inside [lo, hi] — output-shaped for
        the narrow filters mobility workloads install.
        """
        if self._dirty:
            self._rebuild()
        pairs = self._pairs
        keys = self._keys
        out: list[Hashable] = []
        for i in range(bisect_left(pairs, (lo, _NEG_INF)), len(pairs)):
            l, h = pairs[i]
            if l > hi:
                break
            if h <= hi:
                out.append(keys[i])
        return out

    def stabbing_keys(self, x: float) -> list[Hashable]:
        """All keys whose interval contains ``x`` (linear scan; cold path)."""
        return [k for k, (lo, hi) in self._items.items() if lo <= x <= hi]

    # ------------------------------------------------------------------
    # stabbing enumeration (centred interval tree + pending overlay; hot
    # path of the counting engine)
    # ------------------------------------------------------------------
    def _tree_update(self, key: Hashable, iv: Optional[tuple[float, float]]) -> None:
        if self._tree is None:
            return  # no tree built yet: nothing to patch
        removed = self._tree_removed
        removed.add(key)
        if iv is None:
            self._tree_extra.pop(key, None)
        else:
            self._tree_extra[key] = iv
        if len(removed) > _TREE_SLACK and len(removed) * 8 > len(self._items):
            self._tree = None
            removed.clear()
            self._tree_extra.clear()

    def stab_all(self, x: float) -> list[Hashable]:
        """All keys whose interval contains ``x`` in O(log n + k).

        Unordered. NaN stabs nothing (consistent with comparison
        semantics: ``lo <= nan`` is False).
        """
        if x != x:
            return []
        node = self._tree
        if node is None:
            self._tree_removed.clear()
            self._tree_extra.clear()
            node = self._tree = _build_tree(
                [(lo, hi, k) for k, (lo, hi) in self._items.items()]
            )
        out: list[Hashable] = []
        while node is not None and node[7] <= x <= node[8]:
            center = node[0]
            if x < center:
                if node[5] <= x:
                    for lo, k in node[3]:
                        if lo > x:
                            break
                        out.append(k)
                node = node[1]
            elif x > center:
                if node[6] >= x:
                    for hi, k in node[4]:
                        if hi < x:
                            break
                        out.append(k)
                node = node[2]
            else:
                # x == center: every interval at this node contains x; the
                # left subtree ends before x and the right starts after it
                out.extend(k for _, k in node[3])
                break
        removed = self._tree_removed
        if removed:
            out = [k for k in out if k not in removed]
        if self._tree_extra:
            for k, (lo, hi) in self._tree_extra.items():
                if lo <= x <= hi:
                    out.append(k)
        return out

    def stab_all_xs(self, xs: list, strict: bool) -> list[list[Hashable]]:
        """:meth:`stab_all` for a vector of raw event values.

        Returns one result list per value, parallel to ``xs``, with the
        matching engine's numeric guard fused in: non-numeric and NaN
        values stab nothing, and ``strict`` additionally rejects bools
        (non-topic ``RangeFilter`` semantics). For values passing the
        guard the answer is identical to :meth:`stab_all` — element order
        included. Fusing the guard lets the batched matching path hand the
        attribute vector over as-is: no pair/tuple building, no masked
        copy, one set of hoisted bindings for the whole vector.
        """
        root = self._tree
        if root is None:
            self._tree_removed.clear()
            self._tree_extra.clear()
            root = self._tree = _build_tree(
                [(lo, hi, k) for k, (lo, hi) in self._items.items()]
            )
        removed = self._tree_removed
        extra = self._tree_extra
        outs: list[list[Hashable]] = [[] for _ in xs]
        if root is None:
            return outs
        for j, x in enumerate(xs):
            if (
                not isinstance(x, (int, float))
                or x != x
                or (strict and isinstance(x, bool))
            ):
                continue
            out = outs[j]
            node = root
            while node is not None and node[7] <= x <= node[8]:
                center = node[0]
                if x < center:
                    if node[5] <= x:
                        for lo, k in node[3]:
                            if lo > x:
                                break
                            out.append(k)
                    node = node[1]
                elif x > center:
                    if node[6] >= x:
                        for hi, k in node[4]:
                            if hi < x:
                                break
                            out.append(k)
                    node = node[2]
                else:
                    out.extend(k for _, k in node[3])
                    break
            if removed and out:
                outs[j] = out = [k for k in out if k not in removed]
            if extra:
                for k, (lo, hi) in extra.items():
                    if lo <= x <= hi:
                        out.append(k)
        return outs


def _build_tree(items: list[tuple[float, float, Hashable]]) -> Optional[tuple]:
    """Centred interval tree over ``(lo, hi, key)`` triples.

    The centre is the median endpoint, so each side holds at most half of
    the endpoints and depth is O(log n) regardless of interval layout.

    Nodes are 9-tuples ``(center, left, right, by_lo, by_hi, lo0, hi0,
    min_lo, max_hi)``: ``lo0``/``hi0`` are the first endpoints of the mid
    lists (a probe whose value cannot reach them skips the scan without
    paying loop setup) and ``min_lo``/``max_hi`` span the whole *subtree*
    (a probe outside the span stops descending — narrow mobility intervals
    make most subtrees skippable well before the leaves).
    """
    if not items:
        return None
    endpoints = sorted(
        v for lo, hi, _k in items for v in (lo, hi)
    )
    center = endpoints[len(endpoints) // 2]
    left = [it for it in items if it[1] < center]
    right = [it for it in items if it[0] > center]
    mid = [it for it in items if it[0] <= center <= it[1]]
    # sort on the endpoint only: keys may not be mutually comparable
    first = itemgetter(0)
    by_lo = sorted(((lo, k) for lo, _hi, k in mid), key=first)
    by_hi = sorted(((hi, k) for _lo, hi, k in mid), key=first, reverse=True)
    return (
        center, _build_tree(left), _build_tree(right), by_lo, by_hi,
        by_lo[0][0], by_hi[0][0], endpoints[0], endpoints[-1],
    )
