"""Fast stabbing/containment queries over a dynamic set of closed intervals.

The broker hot path asks, for every event at every hop, "does any filter
advertised by neighbour *n* match this event?" — with range filters this is
an interval *stabbing* query. The subscription-propagation path asks "is this
new interval contained in an existing one?" — a *containment* query.

The broker-wide counting engine (:mod:`repro.pubsub.matching`) additionally
asks "*which* intervals contain this point?" — a stabbing *enumeration*
query.

Boolean stab and containment are answered in O(log n) from one static
structure: intervals sorted by ``lo`` with prefix maxima over ``hi`` (top-2
maxima, so containment can exclude one key). Enumeration (:meth:`~IntervalIndex.stab_all`)
is answered in O(log n + k) from a centred interval tree built on demand.
Mutations mark both structures dirty; each is rebuilt lazily on its next
query (tables mutate only on subscription changes, which are orders of
magnitude rarer than event matches).
"""

from __future__ import annotations

from bisect import bisect_right
from operator import itemgetter
from typing import Hashable, Iterator, Optional

__all__ = ["IntervalIndex"]

_NEG_INF = float("-inf")


class IntervalIndex:
    """Dynamic set of keyed closed intervals with fast queries.

    Examples
    --------
    >>> idx = IntervalIndex()
    >>> idx.add("a", 0.1, 0.4)
    >>> idx.add("b", 0.3, 0.9)
    >>> idx.stab(0.35)
    True
    >>> idx.stab(0.95)
    False
    >>> idx.contains_interval(0.2, 0.4)  # covered by "a"? no: lo 0.1<=0.2, hi 0.4>=0.4 -> yes
    True
    """

    __slots__ = (
        "_items", "_dirty", "_los", "_max1_hi", "_max1_key", "_max2_hi", "_tree"
    )

    def __init__(self) -> None:
        self._items: dict[Hashable, tuple[float, float]] = {}
        self._dirty = True
        self._los: list[float] = []
        self._max1_hi: list[float] = []
        self._max1_key: list[Hashable] = []
        self._max2_hi: list[float] = []
        self._tree: Optional[tuple] = None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: Hashable, lo: float, hi: float) -> None:
        """Insert or replace interval ``key``."""
        self._items[key] = (lo, hi)
        self._dirty = True
        self._tree = None

    def remove(self, key: Hashable) -> None:
        """Remove interval ``key`` (KeyError if absent)."""
        del self._items[key]
        self._dirty = True
        self._tree = None

    def discard(self, key: Hashable) -> None:
        """Remove interval ``key`` if present."""
        if self._items.pop(key, None) is not None:
            self._dirty = True
            self._tree = None

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    def get(self, key: Hashable) -> Optional[tuple[float, float]]:
        return self._items.get(key)

    def items(self) -> Iterator[tuple[Hashable, tuple[float, float]]]:
        return iter(self._items.items())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        # key is the (lo, hi) pair itself; a C-level itemgetter avoids a
        # python-level lambda per item (mobility churn marks this index
        # dirty on every handoff, so rebuilds are the fig-5a hot spot)
        order = sorted(self._items.items(), key=itemgetter(1))
        n = len(order)
        self._los = [lo for _k, (lo, _hi) in order]
        self._max1_hi = [0.0] * n
        self._max1_key = [None] * n
        self._max2_hi = [0.0] * n
        best_hi, best_key, second_hi = _NEG_INF, None, _NEG_INF
        for i, (k, (_lo, hi)) in enumerate(order):
            if hi > best_hi:
                second_hi = best_hi
                best_hi, best_key = hi, k
            elif hi > second_hi:
                second_hi = hi
            self._max1_hi[i] = best_hi
            self._max1_key[i] = best_key
            self._max2_hi[i] = second_hi
        self._dirty = False

    def stab(self, x: float) -> bool:
        """True if any interval contains point ``x``."""
        if self._dirty:
            self._rebuild()
        idx = bisect_right(self._los, x) - 1
        return idx >= 0 and self._max1_hi[idx] >= x

    def contains_interval(
        self, lo: float, hi: float, exclude: Hashable = None
    ) -> bool:
        """True if some interval (other than ``exclude``) contains [lo, hi]."""
        if self._dirty:
            self._rebuild()
        idx = bisect_right(self._los, lo) - 1
        if idx < 0:
            return False
        if self._max1_key[idx] != exclude:
            return self._max1_hi[idx] >= hi
        return self._max2_hi[idx] >= hi

    def stabbing_keys(self, x: float) -> list[Hashable]:
        """All keys whose interval contains ``x`` (linear scan; cold path)."""
        return [k for k, (lo, hi) in self._items.items() if lo <= x <= hi]

    # ------------------------------------------------------------------
    # stabbing enumeration (centred interval tree; hot path of the
    # counting engine)
    # ------------------------------------------------------------------
    def stab_all(self, x: float) -> list[Hashable]:
        """All keys whose interval contains ``x`` in O(log n + k).

        Unordered. NaN stabs nothing (consistent with comparison
        semantics: ``lo <= nan`` is False).
        """
        if x != x:
            return []
        if self._tree is None:
            self._tree = _build_tree(
                [(lo, hi, k) for k, (lo, hi) in self._items.items()]
            )
        out: list[Hashable] = []
        node = self._tree
        while node is not None:
            center, left, right, by_lo, by_hi = node
            if x < center:
                for lo, k in by_lo:
                    if lo > x:
                        break
                    out.append(k)
                node = left
            elif x > center:
                for hi, k in by_hi:
                    if hi < x:
                        break
                    out.append(k)
                node = right
            else:
                # x == center: every interval at this node contains x; the
                # left subtree ends before x and the right starts after it
                out.extend(k for _, k in by_lo)
                break
        return out


def _build_tree(items: list[tuple[float, float, Hashable]]) -> Optional[tuple]:
    """Centred interval tree over ``(lo, hi, key)`` triples.

    The centre is the median endpoint, so each side holds at most half of
    the endpoints and depth is O(log n) regardless of interval layout.
    """
    if not items:
        return None
    endpoints = sorted(
        v for lo, hi, _k in items for v in (lo, hi)
    )
    center = endpoints[len(endpoints) // 2]
    left = [it for it in items if it[1] < center]
    right = [it for it in items if it[0] > center]
    mid = [it for it in items if it[0] <= center <= it[1]]
    # sort on the endpoint only: keys may not be mutually comparable
    first = itemgetter(0)
    by_lo = sorted(((lo, k) for lo, _hi, k in mid), key=first)
    by_hi = sorted(((hi, k) for _lo, hi, k in mid), key=first, reverse=True)
    return (center, _build_tree(left), _build_tree(right), by_lo, by_hi)
