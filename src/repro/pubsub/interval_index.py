"""Fast stabbing/containment queries over a dynamic set of closed intervals.

The broker hot path asks, for every event at every hop, "does any filter
advertised by neighbour *n* match this event?" — with range filters this is
an interval *stabbing* query. The subscription-propagation path asks "is this
new interval contained in an existing one?" — a *containment* query.

Both are answered in O(log n) from the same static structure: intervals
sorted by ``lo`` with prefix maxima over ``hi`` (top-2 maxima, so containment
can exclude one key). Mutations mark the structure dirty; it is rebuilt
lazily on the next query (tables mutate only on subscription changes, which
are orders of magnitude rarer than event matches).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Hashable, Iterator, Optional

__all__ = ["IntervalIndex"]

_NEG_INF = float("-inf")


class IntervalIndex:
    """Dynamic set of keyed closed intervals with fast queries.

    Examples
    --------
    >>> idx = IntervalIndex()
    >>> idx.add("a", 0.1, 0.4)
    >>> idx.add("b", 0.3, 0.9)
    >>> idx.stab(0.35)
    True
    >>> idx.stab(0.95)
    False
    >>> idx.contains_interval(0.2, 0.4)  # covered by "a"? no: lo 0.1<=0.2, hi 0.4>=0.4 -> yes
    True
    """

    __slots__ = ("_items", "_dirty", "_los", "_max1_hi", "_max1_key", "_max2_hi")

    def __init__(self) -> None:
        self._items: dict[Hashable, tuple[float, float]] = {}
        self._dirty = True
        self._los: list[float] = []
        self._max1_hi: list[float] = []
        self._max1_key: list[Hashable] = []
        self._max2_hi: list[float] = []

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: Hashable, lo: float, hi: float) -> None:
        """Insert or replace interval ``key``."""
        self._items[key] = (lo, hi)
        self._dirty = True

    def remove(self, key: Hashable) -> None:
        """Remove interval ``key`` (KeyError if absent)."""
        del self._items[key]
        self._dirty = True

    def discard(self, key: Hashable) -> None:
        """Remove interval ``key`` if present."""
        if self._items.pop(key, None) is not None:
            self._dirty = True

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    def get(self, key: Hashable) -> Optional[tuple[float, float]]:
        return self._items.get(key)

    def items(self) -> Iterator[tuple[Hashable, tuple[float, float]]]:
        return iter(self._items.items())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        order = sorted(self._items.items(), key=lambda kv: (kv[1][0], kv[1][1]))
        n = len(order)
        self._los = [lo for _k, (lo, _hi) in order]
        self._max1_hi = [0.0] * n
        self._max1_key = [None] * n
        self._max2_hi = [0.0] * n
        best_hi, best_key, second_hi = _NEG_INF, None, _NEG_INF
        for i, (k, (_lo, hi)) in enumerate(order):
            if hi > best_hi:
                second_hi = best_hi
                best_hi, best_key = hi, k
            elif hi > second_hi:
                second_hi = hi
            self._max1_hi[i] = best_hi
            self._max1_key[i] = best_key
            self._max2_hi[i] = second_hi
        self._dirty = False

    def stab(self, x: float) -> bool:
        """True if any interval contains point ``x``."""
        if self._dirty:
            self._rebuild()
        idx = bisect_right(self._los, x) - 1
        return idx >= 0 and self._max1_hi[idx] >= x

    def contains_interval(
        self, lo: float, hi: float, exclude: Hashable = None
    ) -> bool:
        """True if some interval (other than ``exclude``) contains [lo, hi]."""
        if self._dirty:
            self._rebuild()
        idx = bisect_right(self._los, lo) - 1
        if idx < 0:
            return False
        if self._max1_key[idx] != exclude:
            return self._max1_hi[idx] >= hi
        return self._max2_hi[idx] >= hi

    def stabbing_keys(self, x: float) -> list[Hashable]:
        """All keys whose interval contains ``x`` (linear scan; cold path)."""
        return [k for k, (lo, hi) in self._items.items() if lo <= x <= hi]
