"""Content-based subscription filters.

A filter selects the subset of events a subscriber wants. The library
implements a SIENA-style language: a filter is a **conjunction of attribute
constraints**, where each constraint compares one event attribute against a
value with one of the operators in :class:`Op`.

Two filter classes exist:

* :class:`RangeFilter` — a single closed range ``lo <= attr <= hi`` on one
  numeric attribute. This is the workhorse of the paper's workload (interest
  in a contiguous slice of the topic space) and has a fast matching path and
  an exact covering test.
* :class:`ConjunctionFilter` — general conjunction of
  :class:`AttributeConstraint`; matching is exact, covering is *conservative*
  (syntactic implication per attribute — it may answer "not covered" for
  semantically covered filters, which is safe for routing: covering is only
  ever used to prune redundant subscription propagation).
"""

from __future__ import annotations

import enum
import math
from typing import Any, Iterable, Optional

from repro.errors import FilterError
from repro.pubsub.events import Notification

__all__ = ["Op", "AttributeConstraint", "Filter", "RangeFilter", "ConjunctionFilter"]


class Op(enum.Enum):
    """Comparison operators available in attribute constraints."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    RANGE = "in"        # closed interval [value[0], value[1]]
    EXISTS = "exists"   # attribute present (value ignored)
    PREFIX = "prefix"   # string attribute starts with value


class AttributeConstraint:
    """One constraint ``attr <op> value``.

    For :attr:`Op.RANGE`, ``value`` must be a 2-tuple ``(lo, hi)`` with
    ``lo <= hi``.
    """

    __slots__ = ("attr", "op", "value")

    def __init__(self, attr: str, op: Op, value: Any = None) -> None:
        if not attr:
            raise FilterError("constraint attribute name must be non-empty")
        if op is Op.RANGE:
            try:
                lo, hi = value
            except (TypeError, ValueError):
                raise FilterError(
                    f"RANGE constraint needs a (lo, hi) pair, got {value!r}"
                ) from None
            if not (lo <= hi):
                raise FilterError(f"RANGE constraint with lo > hi: {value!r}")
        if op is Op.PREFIX and not isinstance(value, str):
            raise FilterError(f"PREFIX constraint needs a string, got {value!r}")
        self.attr = attr
        self.op = op
        self.value = value

    # ------------------------------------------------------------------
    def matches_value(self, v: Any) -> bool:
        """Does an attribute value satisfy this constraint?"""
        op = self.op
        if op is Op.EXISTS:
            return v is not None
        if v is None:
            return False
        try:
            if op is Op.EQ:
                return bool(v == self.value)
            if op is Op.NE:
                return bool(v != self.value)
            if op is Op.LT:
                return bool(v < self.value)
            if op is Op.LE:
                return bool(v <= self.value)
            if op is Op.GT:
                return bool(v > self.value)
            if op is Op.GE:
                return bool(v >= self.value)
            if op is Op.RANGE:
                lo, hi = self.value
                return bool(lo <= v <= hi)
            if op is Op.PREFIX:
                return isinstance(v, str) and v.startswith(self.value)
        except TypeError:
            # incomparable types never match (e.g. string event attr vs
            # numeric constraint)
            return False
        raise FilterError(f"unknown operator {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def implies(self, other: "AttributeConstraint") -> bool:
        """Conservative syntactic implication: self ⇒ other.

        True means every value satisfying ``self`` satisfies ``other``.
        False means "unknown or not implied". Only constraints on the same
        attribute can imply each other.
        """
        if self.attr != other.attr:
            return False
        so, oo = self.op, other.op
        sv, ov = self.value, other.value
        if oo is Op.EXISTS:
            # every operator except EXISTS requires the attribute present
            return True
        # Normalise numeric-comparable ops to interval form where possible.
        s_iv = self._as_interval()
        o_iv = other._as_interval()
        if s_iv is not None and o_iv is not None:
            (slo, shi, slo_open, shi_open) = s_iv
            (olo, ohi, olo_open, ohi_open) = o_iv
            lo_ok = olo < slo or (
                olo == slo and (not olo_open or slo_open)
            )
            hi_ok = ohi > shi or (
                ohi == shi and (not ohi_open or shi_open)
            )
            return lo_ok and hi_ok
        if so is Op.EQ:
            # a point value implies any constraint it satisfies
            return other.matches_value(sv)
        if so is Op.PREFIX and oo is Op.PREFIX:
            return isinstance(sv, str) and sv.startswith(ov)
        if so is Op.NE and oo is Op.NE:
            return sv == ov
        return False

    def _as_interval(self) -> Optional[tuple[float, float, bool, bool]]:
        """(lo, hi, lo_open, hi_open) for numeric interval-like ops, else None."""
        op, v = self.op, self.value
        if op is Op.RANGE:
            lo, hi = v
            if _is_number(lo) and _is_number(hi):
                return (float(lo), float(hi), False, False)
            return None
        if not _is_number(v):
            return None
        x = float(v)
        if op is Op.EQ:
            return (x, x, False, False)
        if op is Op.LT:
            return (-math.inf, x, False, True)
        if op is Op.LE:
            return (-math.inf, x, False, False)
        if op is Op.GT:
            return (x, math.inf, True, False)
        if op is Op.GE:
            return (x, math.inf, False, False)
        return None

    # ------------------------------------------------------------------
    def key(self) -> tuple:
        """Hashable identity used for equality and deduplication."""
        v = self.value
        if isinstance(v, (list, tuple)):
            v = tuple(v)
        return (self.attr, self.op, v)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttributeConstraint) and other.key() == self.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.attr} {self.op.value} {self.value!r}"


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class Filter:
    """Abstract subscription filter."""

    __slots__ = ()

    def matches(self, event: Notification) -> bool:
        raise NotImplementedError

    def covers(self, other: "Filter") -> bool:
        """Conservative covering test: True ⇒ self matches ⊇ other matches."""
        raise NotImplementedError

    def identity(self) -> tuple:
        """Hashable structural identity (used for dedup/equality)."""
        raise NotImplementedError

    # Range fast-path introspection: (attr, lo, hi) if this filter is exactly
    # one closed numeric range, else None. Lets the broker index it.
    def as_range(self) -> Optional[tuple[str, float, float]]:
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Filter) and other.identity() == self.identity()

    def __hash__(self) -> int:
        return hash(self.identity())


class RangeFilter(Filter):
    """Closed range ``lo <= attr <= hi`` on one numeric attribute.

    Examples
    --------
    >>> f = RangeFilter(0.2, 0.4)
    >>> f.matches(Notification(0, 0, 0, 0.0, 0.3))
    True
    >>> RangeFilter(0.1, 0.5).covers(f)
    True
    """

    __slots__ = ("attr", "lo", "hi")

    def __init__(self, lo: float, hi: float, attr: str = "topic") -> None:
        if not lo <= hi:
            raise FilterError(f"range filter with lo > hi: [{lo}, {hi}]")
        self.attr = attr
        self.lo = float(lo)
        self.hi = float(hi)

    def matches(self, event: Notification) -> bool:
        if self.attr == "topic":
            return self.lo <= event.topic <= self.hi
        v = event.get(self.attr)
        if not _is_number(v):
            return False
        return self.lo <= v <= self.hi

    def covers(self, other: Filter) -> bool:
        if isinstance(other, RangeFilter):
            return (
                other.attr == self.attr
                and self.lo <= other.lo
                and other.hi <= self.hi
            )
        rng = other.as_range()
        if rng is not None:
            attr, lo, hi = rng
            return attr == self.attr and self.lo <= lo and hi <= self.hi
        if isinstance(other, ConjunctionFilter):
            mine = AttributeConstraint(self.attr, Op.RANGE, (self.lo, self.hi))
            return any(c.implies(mine) for c in other.constraints)
        return False

    def identity(self) -> tuple:
        return ("range", self.attr, self.lo, self.hi)

    def as_range(self) -> Optional[tuple[str, float, float]]:
        return (self.attr, self.lo, self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeFilter({self.attr} in [{self.lo:.4f}, {self.hi:.4f}])"


class ConjunctionFilter(Filter):
    """Conjunction of attribute constraints (all must hold).

    An empty conjunction matches everything (and covers everything).
    """

    __slots__ = ("constraints", "_identity")

    def __init__(self, constraints: Iterable[AttributeConstraint]) -> None:
        self.constraints = tuple(constraints)
        # identity() sorts the constraint keys; hashing/equality run on
        # every engine install and covering probe, so compute lazily once
        self._identity: Optional[tuple] = None

    def matches(self, event: Notification) -> bool:
        for c in self.constraints:
            if not c.matches_value(event.get(c.attr)):
                return False
        return True

    def covers(self, other: Filter) -> bool:
        # self covers other iff every constraint of self is implied by some
        # constraint of other (conservative: constraints combine per
        # attribute independently).
        if isinstance(other, ConjunctionFilter):
            others = other.constraints
        else:
            rng = other.as_range()
            if rng is None:
                return False
            attr, lo, hi = rng
            others = (AttributeConstraint(attr, Op.RANGE, (lo, hi)),)
        for mine in self.constraints:
            if not any(theirs.implies(mine) for theirs in others):
                return False
        return True

    def identity(self) -> tuple:
        ident = self._identity
        if ident is None:
            # sort key flattens Op to its string value: two constraints on
            # the same attribute would otherwise compare unorderable enum
            # members
            keys = sorted(
                (c.key() for c in self.constraints),
                key=lambda k: (k[0], k[1].value, repr(k[2])),
            )
            ident = self._identity = ("conj", tuple(keys))
        return ident

    def as_range(self) -> Optional[tuple[str, float, float]]:
        if len(self.constraints) != 1:
            return None
        c = self.constraints[0]
        iv = c._as_interval()
        if iv is None:
            return None
        lo, hi, lo_open, hi_open = iv
        if lo_open or hi_open or lo == -math.inf or hi == math.inf:
            return None
        return (c.attr, lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ConjunctionFilter(" + " AND ".join(map(repr, self.constraints)) + ")"
