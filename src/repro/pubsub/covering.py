"""The covering relation, covering indexes, and filter-set reduction.

``covers(f, g)`` holds when every event matching ``g`` also matches ``f``
(``f``'s event set is a superset). Content-based routers use it to prune
subscription propagation: a broker need not forward a subscription to a
neighbour that already received a covering one (SIENA [16]); the paper's
Figure 6(a) discussion relies on this effect for the sub-unsub baseline.

Covering here is *conservative*: a True answer is always sound; a False
answer may be a "don't know" for complex conjunctions. Soundness is all
routing correctness requires.

Covering prunes the *propagation* path (fewer subscriptions flooded); the
matching hot path is the complement: whatever survives pruning lands in
the broker-wide counting engine (:mod:`repro.pubsub.matching`), which
resolves events against the installed filter set. MHH disables covering by
default because its hop-by-hop migration surgery needs exact per-key table
state (see :mod:`repro.pubsub.system`).

:class:`CoveringIndex` is the *indexed* form of both covering directions
the control plane needs:

* :meth:`CoveringIndex.covers` — "is this incoming filter covered by some
  member?" (the per-neighbour advertisement-suppression check, run on every
  covering-pruned ``_advertise``);
* :meth:`CoveringIndex.covered_by` — "which members does this withdrawn
  filter cover?" (the ``Broker._withdraw`` re-advertisement candidate
  search, which previously materialized the whole table per withdrawal).

Range-shaped members (anything with an :meth:`~Filter.as_range` form) live
in per-attribute containment interval indexes; general conjunctions are
bucketed by their anchor (first-constraint) attribute — sound *and*
complete, because a conjunction can only cover a filter whose constraint
attributes include every one of its own — and their numeric-interval
constraint closures feed per-attribute containment indexes for the reverse
direction. Both answers are **exactly** what the unindexed scans give
(``tests/test_control_plane.py`` asserts equality under randomized churn),
so toggling the index changes nothing but cost.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.pubsub.filters import ConjunctionFilter, Filter, Op, RangeFilter
from repro.pubsub.interval_index import IntervalIndex

__all__ = ["CoveringIndex", "covers", "is_covered_by_set", "reduce_by_covering"]


def covers(f: Filter, g: Filter) -> bool:
    """True if ``f`` (conservatively) covers ``g``."""
    return f.covers(g)


def is_covered_by_set(candidate: Filter, existing: Sequence[Filter]) -> bool:
    """True if some filter in ``existing`` covers ``candidate``."""
    return any(f.covers(candidate) for f in existing)


def reduce_by_covering(
    filters: Mapping[Hashable, Filter],
) -> dict[Hashable, Filter]:
    """Minimal sub-map whose filters cover every filter of the input.

    Keys give a deterministic tie-break for equal filters (the smallest key
    survives), so reduction is stable across runs.

    Examples
    --------
    >>> from repro.pubsub.filters import RangeFilter
    >>> kept = reduce_by_covering({1: RangeFilter(0.0, 0.5),
    ...                            2: RangeFilter(0.1, 0.2)})
    >>> sorted(kept)
    [1]
    """
    # repr(key) is the tie-break ordering; compute it once per item instead
    # of once per O(n^2) comparison
    items = sorted(
        ((repr(key), key, f) for key, f in filters.items()),
        key=lambda item: item[0],
    )
    kept: dict[Hashable, Filter] = {}
    for rk, key, f in items:
        covered = False
        for other_rk, other_key, other in items:
            if other_key == key:
                continue
            if not other.covers(f):
                continue
            # mutual covering (equal extents): smaller repr-key survives.
            # When the coverer sorts earlier it wins either way (strictly
            # covering, or mutual with the smaller key), so the reverse
            # f.covers(other) check is only needed for later-sorting items.
            if other_rk < rk or not f.covers(other):
                covered = True
                break
        if not covered:
            kept[key] = f
    return kept


def _nan_free(lo: float, hi: float) -> bool:
    """NaN-free bounds (NaN would poison the sorted interval arrays)."""
    return lo == lo and hi == hi


def _constraint_closure(c) -> "tuple[float, float] | None":
    """The closed closure [lo, hi] of a constraint's numeric extent.

    Implication between numeric constraints is governed by closures with
    closed endpoints dominating open ones, so closure containment is the
    index-friendly form of ``implies``. Bool-valued EQ constraints are
    normalised to a point closure — ``True == 1`` in Python, so ``x == True``
    implies (and is implied through) numeric intervals containing 1 even
    though :meth:`AttributeConstraint._as_interval` excludes bools.
    """
    iv = c._as_interval()
    if iv is not None:
        return (iv[0], iv[1]) if _nan_free(iv[0], iv[1]) else None
    if c.op is Op.EQ and isinstance(c.value, bool):
        x = float(c.value)
        return (x, x)
    return None


class CoveringIndex:
    """Keyed filter set answering both covering directions sub-linearly.

    Members are added with :meth:`add` under an opaque hashable key and
    routed into one of four structures:

    * **interval members** — filters exposing an :meth:`~Filter.as_range`
      form: one containment :class:`IntervalIndex` per attribute;
    * **conjunction members** — general :class:`ConjunctionFilter`\\ s,
      bucketed by the attribute of their first constraint (their *anchor*).
      A conjunction only covers filters constraining **all** of its own
      attributes, so probing the buckets of the query's attributes is
      complete. Each member's numeric-interval constraint *closures*
      additionally feed per-attribute containment indexes, which drive the
      reverse (:meth:`covered_by`) direction;
    * **universal members** — empty conjunctions (they cover everything);
    * **other members** — unknown :class:`Filter` subclasses (and the rare
      NaN-bounded range), always checked exactly.

    :meth:`covers` reproduces the *peer-set* covering semantics of the
    unindexed scan exactly, including its one conservative quirk: topic
    interval members are consulted only for topic-range queries (the scan
    keeps them in a topic-only index that general queries never reach).
    :meth:`covered_by` is exactly ``{k : f.covers(member_k)}``. Both
    equivalences are what lets the broker toggle the index on and off
    without changing a single message on the wire.
    """

    __slots__ = (
        "_members", "_ranges", "_conj_anchor", "_conj_closures",
        "_universal", "_other",
    )

    def __init__(self) -> None:
        self._members: dict[Hashable, Filter] = {}
        self._ranges: dict[str, IntervalIndex] = {}
        self._conj_anchor: dict[str, dict[Hashable, ConjunctionFilter]] = {}
        # closure intervals of conjunction constraints, keyed (member, slot)
        self._conj_closures: dict[str, IntervalIndex] = {}
        self._universal: dict[Hashable, Filter] = {}
        self._other: dict[Hashable, Filter] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._members

    def get(self, key: Hashable) -> "Filter | None":
        return self._members.get(key)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: Hashable, f: Filter) -> None:
        """Register (or replace) member ``key``."""
        self.discard(key)
        self._members[key] = f
        rng = f.as_range()
        if rng is not None and _nan_free(rng[1], rng[2]):
            attr, lo, hi = rng
            idx = self._ranges.get(attr)
            if idx is None:
                idx = self._ranges[attr] = IntervalIndex()
            idx.add(key, lo, hi)
            return
        if isinstance(f, ConjunctionFilter):
            if not f.constraints:
                self._universal[key] = f
                return
            anchor = f.constraints[0].attr
            self._conj_anchor.setdefault(anchor, {})[key] = f
            for i, c in enumerate(f.constraints):
                closure = _constraint_closure(c)
                if closure is None:
                    continue
                cidx = self._conj_closures.get(c.attr)
                if cidx is None:
                    cidx = self._conj_closures[c.attr] = IntervalIndex()
                cidx.add((key, i), closure[0], closure[1])
            return
        self._other[key] = f

    def discard(self, key: Hashable) -> None:
        """Unregister member ``key`` if present."""
        f = self._members.pop(key, None)
        if f is None:
            return
        rng = f.as_range()
        if rng is not None and _nan_free(rng[1], rng[2]):
            idx = self._ranges[rng[0]]
            idx.discard(key)
            if not len(idx):
                del self._ranges[rng[0]]
            return
        if isinstance(f, ConjunctionFilter):
            if not f.constraints:
                del self._universal[key]
                return
            anchor = f.constraints[0].attr
            bucket = self._conj_anchor[anchor]
            del bucket[key]
            if not bucket:
                del self._conj_anchor[anchor]
            for i, c in enumerate(f.constraints):
                cidx = self._conj_closures.get(c.attr)
                if cidx is not None:
                    cidx.discard((key, i))
                    if not len(cidx):
                        del self._conj_closures[c.attr]
            return
        del self._other[key]

    # ------------------------------------------------------------------
    # forward direction: is an incoming filter covered by some member?
    # ------------------------------------------------------------------
    def covers(self, f: Filter) -> bool:
        """True iff some member covers ``f`` (peer-set scan semantics)."""
        if self._universal:
            return True  # an empty conjunction covers everything
        rng = f.as_range()
        if rng is not None:
            attr, lo, hi = rng
            idx = self._ranges.get(attr)
            if idx is not None and idx.contains_interval(lo, hi):
                return True
            bucket = self._conj_anchor.get(attr)
            if bucket:
                for g in bucket.values():
                    if g.covers(f):
                        return True
            return self._other_covers(f)
        if isinstance(f, ConjunctionFilter):
            probed: set[str] = set()
            for c in f.constraints:
                attr = c.attr
                if attr != "topic":
                    # the scan path keeps topic intervals in a topic-only
                    # index that conjunction queries never reach; mirror it
                    closure = _constraint_closure(c)
                    if closure is not None:
                        idx = self._ranges.get(attr)
                        if idx is not None and idx.contains_interval(*closure):
                            return True
                if attr not in probed:
                    probed.add(attr)
                    bucket = self._conj_anchor.get(attr)
                    if bucket:
                        for g in bucket.values():
                            if g.covers(f):
                                return True
            return self._other_covers(f)
        return self._other_covers(f)

    def _other_covers(self, f: Filter) -> bool:
        return any(g.covers(f) for g in self._other.values())

    # ------------------------------------------------------------------
    # reverse direction: which members does a (withdrawn) filter cover?
    # ------------------------------------------------------------------
    def covered_by(self, f: Filter) -> list[Hashable]:
        """Keys of every member ``m`` with ``f.covers(m)``, unordered."""
        rng = (
            f.as_range()
            if isinstance(f, (RangeFilter, ConjunctionFilter))
            else None
        )
        if rng is not None and _nan_free(rng[1], rng[2]):
            # a single closed range covers exactly: interval members it
            # contains, and conjunctions with a constraint whose closure it
            # contains (closed endpoints dominate open ones, so closure
            # containment is equivalent to constraint implication here)
            attr, lo, hi = rng
            out: list[Hashable] = []
            idx = self._ranges.get(attr)
            if idx is not None:
                out.extend(idx.contained_keys(lo, hi))
            cidx = self._conj_closures.get(attr)
            if cidx is not None:
                seen: set = set()
                for mkey, _slot in cidx.contained_keys(lo, hi):
                    if mkey not in seen:
                        seen.add(mkey)
                        out.append(mkey)
            return out
        members = self._members
        if isinstance(f, ConjunctionFilter):
            if not f.constraints:
                return list(members)  # empty conjunction covers everything
            # anchor on one numeric-interval constraint: any covered member
            # must contain a constraint (or range) implying it, whose
            # closure nests inside the anchor's closure — a candidate
            # superset, verified exactly below
            anchor = None
            for c in f.constraints:
                closure = _constraint_closure(c)
                if closure is not None:
                    anchor = (c.attr, closure[0], closure[1])
                    break
            if anchor is None:
                candidates: Iterable[Hashable] = members
            else:
                attr, lo, hi = anchor
                cand: list[Hashable] = []
                idx = self._ranges.get(attr)
                if idx is not None:
                    cand.extend(idx.contained_keys(lo, hi))
                cidx = self._conj_closures.get(attr)
                if cidx is not None:
                    cand.extend(
                        mkey for mkey, _slot in cidx.contained_keys(lo, hi)
                    )
                candidates = cand
            out, seen = [], set()
            for mkey in candidates:
                if mkey in seen:
                    continue
                seen.add(mkey)
                if f.covers(members[mkey]):
                    out.append(mkey)
            return out
        # unknown Filter subclass: its covers() may hold for anything
        return [k for k, g in members.items() if f.covers(g)]
