"""The covering relation and covering-based filter-set reduction.

``covers(f, g)`` holds when every event matching ``g`` also matches ``f``
(``f``'s event set is a superset). Content-based routers use it to prune
subscription propagation: a broker need not forward a subscription to a
neighbour that already received a covering one (SIENA [16]); the paper's
Figure 6(a) discussion relies on this effect for the sub-unsub baseline.

Covering here is *conservative*: a True answer is always sound; a False
answer may be a "don't know" for complex conjunctions. Soundness is all
routing correctness requires.

Covering prunes the *propagation* path (fewer subscriptions flooded); the
matching hot path is the complement: whatever survives pruning lands in
the broker-wide counting engine (:mod:`repro.pubsub.matching`), which
resolves events against the installed filter set. MHH disables covering by
default because its hop-by-hop migration surgery needs exact per-key table
state (see :mod:`repro.pubsub.system`).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.pubsub.filters import Filter

__all__ = ["covers", "is_covered_by_set", "reduce_by_covering"]


def covers(f: Filter, g: Filter) -> bool:
    """True if ``f`` (conservatively) covers ``g``."""
    return f.covers(g)


def is_covered_by_set(candidate: Filter, existing: Sequence[Filter]) -> bool:
    """True if some filter in ``existing`` covers ``candidate``."""
    return any(f.covers(candidate) for f in existing)


def reduce_by_covering(
    filters: Mapping[Hashable, Filter],
) -> dict[Hashable, Filter]:
    """Minimal sub-map whose filters cover every filter of the input.

    Keys give a deterministic tie-break for equal filters (the smallest key
    survives), so reduction is stable across runs.

    Examples
    --------
    >>> from repro.pubsub.filters import RangeFilter
    >>> kept = reduce_by_covering({1: RangeFilter(0.0, 0.5),
    ...                            2: RangeFilter(0.1, 0.2)})
    >>> sorted(kept)
    [1]
    """
    # repr(key) is the tie-break ordering; compute it once per item instead
    # of once per O(n^2) comparison
    items = sorted(
        ((repr(key), key, f) for key, f in filters.items()),
        key=lambda item: item[0],
    )
    kept: dict[Hashable, Filter] = {}
    for rk, key, f in items:
        covered = False
        for other_rk, other_key, other in items:
            if other_key == key:
                continue
            if not other.covers(f):
                continue
            # mutual covering (equal extents): smaller repr-key survives.
            # When the coverer sorts earlier it wins either way (strictly
            # covering, or mutual with the smaller key), so the reverse
            # f.covers(other) check is only needed for later-sorting items.
            if other_rk < rk or not f.covers(other):
                covered = True
                break
        if not covered:
            kept[key] = f
    return kept
