"""Content-based publish/subscribe substrate.

Implements the system model of the paper's Section 3:

* brokers organised into an acyclic overlay (spanning tree of the grid),
* **filter tables** per broker: ``{(neighbour, filter)}`` meaning "neighbour
  is interested in events satisfying the filter", with the MHH *label*
  extension on client entries,
* **reverse path forwarding**: subscriptions flood the tree (pruned by the
  covering relation); published events follow the reverse paths of the
  subscriptions that match them,
* a broker-wide **counting matching engine** resolving each event against
  all registered filters in one pass (see :mod:`repro.pubsub.matching`),
* FIFO-ordered message delivery on every link.

Clients are publishers and subscribers attached to brokers over wireless
links; mobility (connect / disconnect / handoff) is delegated to a pluggable
:class:`~repro.mobility.base.MobilityProtocol`.
"""

from repro.pubsub.events import Notification
from repro.pubsub.filters import (
    Filter,
    RangeFilter,
    AttributeConstraint,
    ConjunctionFilter,
    Op,
)
from repro.pubsub.covering import covers, reduce_by_covering
from repro.pubsub.interval_index import IntervalIndex
from repro.pubsub.matching import CountingMatchingEngine
from repro.pubsub.filter_table import FilterTable, ClientEntry
from repro.pubsub.broker import Broker
from repro.pubsub.client import Client
from repro.pubsub.system import PubSubSystem

__all__ = [
    "Notification",
    "Filter",
    "RangeFilter",
    "AttributeConstraint",
    "ConjunctionFilter",
    "Op",
    "covers",
    "reduce_by_covering",
    "IntervalIndex",
    "CountingMatchingEngine",
    "FilterTable",
    "ClientEntry",
    "Broker",
    "Client",
    "PubSubSystem",
]
