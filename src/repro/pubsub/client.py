"""Client: a mobile (or static) publisher/subscriber endpoint.

A client is attached to at most one broker at a time over a wireless link.
It remembers the identifier of its last-visited broker across disconnection
periods (required by the silent-move handoff, paper §4.2) and exposes the
three life-cycle operations the mobility model drives:

* :meth:`connect` — attach at a broker (silent-move reconnect when the
  broker differs from the last one);
* :meth:`disconnect` — detach silently;
* :meth:`proclaim_and_disconnect` — detach after announcing the destination
  broker (proclaimed move, §4.1).

Publishing is only possible while connected. Received events are reported to
the system's delivery log, which also powers the handoff-delay metric
("the period from a client's reconnection time to the time it receives the
first event", §5.1).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ClientStateError
from repro.pubsub.events import Notification
from repro.pubsub.filters import Filter
from repro.pubsub import messages as m

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.system import PubSubSystem

__all__ = ["Client"]


class Client:
    """One pub/sub client."""

    def __init__(
        self,
        system: "PubSubSystem",
        client_id: int,
        filter: Filter,
        home_broker: int,
        mobile: bool = False,
    ) -> None:
        self.system = system
        self.id = client_id
        self.filter = filter
        self.home_broker = home_broker
        self.mobile = mobile
        self.current_broker: Optional[int] = None
        self.last_broker: Optional[int] = None
        self.connected = False
        self.ever_connected = False
        #: monotone counter stamped on every connect; the mobility protocol
        #: uses it to recognise handoff requests that a later reconnect has
        #: superseded (the client may abandon a connect before the broker
        #: even learns of it)
        self.connect_epoch = 0
        self._pub_seq = 0
        #: optional application callback, invoked exactly once per distinct
        #: event (see _deliver_event); the delivery ledger still records
        #: every copy, so the duplicates metric is unaffected
        self.on_event = None
        #: (publisher, seq) pairs already handed to the application —
        #: retransmission makes duplicates a normal event, not only a
        #: fault artifact, so the client dedups before the app boundary
        self._seen_events: set = set()
        system.net.register_client(client_id, self._on_downlink)

    # ------------------------------------------------------------------
    # life-cycle
    # ------------------------------------------------------------------
    def connect(self, broker_id: int) -> None:
        """Attach at ``broker_id``; the broker learns of it after the
        wireless uplink latency."""
        if self.connected:
            raise ClientStateError(f"client {self.id} already connected")
        rec = self.system.recovery
        if rec is not None:
            # station association: a dead base station answers no probes, so
            # the client attaches at the nearest live one instead
            broker_id = rec.reroute(broker_id)
        previous = self.last_broker
        self.connected = True
        self.current_broker = broker_id
        self.ever_connected = True
        self.connect_epoch += 1
        self.system.metrics.on_client_connect(
            self.id, self.system.clock.now, previous, broker_id
        )
        self.system.net.send_uplink(
            self.id,
            broker_id,
            m.ConnectMessage(self.id, self.filter, previous, self.connect_epoch),
        )

    def disconnect(self) -> None:
        """Silent move: detach without notice; the broker detects it
        immediately (link-layer detection, modelled as synchronous)."""
        broker = self._require_connected("disconnect")
        self.connected = False
        self.current_broker = None
        self.last_broker = broker
        self.system.metrics.on_client_disconnect(self.id, self.system.clock.now)
        self.system.protocol.on_disconnect(self.system.brokers[broker], self.id)
        rel = self.system.reliability
        if rel is not None:
            # safety net AFTER the protocol handler: whatever the handoff
            # did not reclaim keeps draining to the detached client
            rel.on_client_detach(self.id)

    def force_disconnect(self) -> None:
        """Crash-side detach: the attached broker just died, so no protocol
        disconnect handler runs (there is no broker left to run it)."""
        broker = self._require_connected("force_disconnect")
        self.connected = False
        self.current_broker = None
        self.last_broker = broker
        self.system.metrics.on_client_disconnect(self.id, self.system.clock.now)
        rel = self.system.reliability
        if rel is not None:
            # the crash reclaim (RecoveryCoordinator) marks whatever it
            # pulls; this only clears timers/links the reclaim missed
            rel.on_client_detach(self.id)

    def proclaim_and_disconnect(self, dest_broker: int) -> None:
        """Proclaimed move (§4.1): announce the destination, then detach.

        The subscription starts migrating immediately; the client's notion
        of "last visited broker" becomes the destination, because that is
        where its subscription (and stored events) will be rooted.
        """
        broker = self._require_connected("proclaim_and_disconnect")
        self.connected = False
        self.current_broker = None
        self.last_broker = dest_broker if dest_broker != broker else broker
        self.system.metrics.on_client_disconnect(self.id, self.system.clock.now)
        self.system.protocol.on_proclaimed_disconnect(
            self.system.brokers[broker], self.id, dest_broker
        )
        rel = self.system.reliability
        if rel is not None:
            rel.on_client_detach(self.id)

    def _require_connected(self, op: str) -> int:
        if not self.connected or self.current_broker is None:
            raise ClientStateError(f"client {self.id}: {op} while disconnected")
        return self.current_broker

    # ------------------------------------------------------------------
    # publish / receive
    # ------------------------------------------------------------------
    def publish(self, topic: float, attrs: Optional[dict] = None) -> Notification:
        """Publish one event at the current broker (uplink, 20 ms)."""
        broker = self._require_connected("publish")
        event = Notification(
            event_id=self.system.ids.next("event"),
            publisher=self.id,
            seq=self._pub_seq,
            publish_time=self.system.clock.now,
            topic=topic,
            attrs=attrs,
        )
        self._pub_seq += 1
        self.system.metrics.on_publish(event)
        rec = self.system.recovery
        if rec is not None:
            rec.on_publish(event)
        self.system.net.send_uplink(
            self.id, broker, m.PublishMessage(event)
        )
        return event

    def _on_downlink(self, msg: m.Message) -> None:
        if type(msg) is m.DeliverMessage:
            self._deliver_event(msg.event)
        elif type(msg) is m.ReliableDeliver:
            # sequenced delivery: the reliability layer orders/dedups per
            # (client, origin) session and calls back into _deliver_event
            self.system.reliability.on_deliver(self, msg)
        else:  # pragma: no cover - no other downlink message types exist
            raise ClientStateError(f"unexpected downlink message {msg!r}")

    def _deliver_event(self, event: Notification) -> None:
        """Record one delivered copy; hand *distinct* events to the app.

        Every copy — including retransmitted and fault-duplicated ones —
        reaches the delivery ledger (which owns the ``duplicates``
        metric); the application callback sees each (publisher, seq)
        exactly once.
        """
        self.system.metrics.on_delivery(self.id, event, self.system.clock.now)
        dur = self.system.durability
        if dur is not None:
            # advance the durable delivery cursor (app-level receipt; a
            # no-op under the reliability layer, whose cumulative ACK is
            # the cursor of record)
            dur.on_client_delivered(
                self.id, self.current_broker if self.connected else None,
                event,
            )
        key = (event.publisher, event.seq)
        if key in self._seen_events:
            return
        self._seen_events.add(key)
        if self.on_event is not None:
            self.on_event(event)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f"@B{self.current_broker}" if self.connected else "offline"
        return f"<Client {self.id} {where}>"
