"""Self-stabilizing overlay repair: crashes, restarts, partitions.

This module acts on a :class:`~repro.network.recovery.CrashPlan`. It is the
control-plane analogue of PR 4's wireless fault injector: a
:class:`RecoveryCoordinator` is only built for an *active* plan, so
crash-free runs execute exactly the pre-crash code paths and stay
bit-identical to the seed behaviour.

The accounted-loss crash model
------------------------------
A broker crash destroys volatile state (stored queues, protocol scratch
state) and silently discards in-flight traffic. Rather than pretending the
kernel can recover what is physically gone, the model keeps the delivery
ledger *exact*: every (client, event) pair put at risk is marked via
:meth:`~repro.metrics.delivery.DeliveryChecker.mark_crash_risk`, and at the
end of the run the pairs that were neither delivered nor fault-lost
reconcile into ``stats.crash_lost``. Over-marking is harmless (delivered
pairs reconcile to zero); *under*-marking would surface as ``missing > 0``
— which is precisely what the conformance fuzzer's crash lane asserts never
happens.

Marking happens at four places:

* publish-time, while the overlay is **dirty** (between a failure event and
  the completing repair round): routing state may silently eat any event,
  so all matched clients of every publish in the window are marked;
* crash-time, for the crashed broker's stored queues, stray transfer
  buffers, and its attached clients' untransmitted downlink messages;
* delivery-time, when the link layer drops a generation-stale or
  dead-addressed message carrying event cargo;
* repair-time, for gathered backlog events that would violate per-publisher
  order if replayed (the client has already seen a newer event).

The repair round (self-stabilization, PSVR-style)
-------------------------------------------------
``repair_delay_ms`` after each failure event (immediately for restarts) a
single synchronous repair round restores a consistent global state:

1. **gather** the surviving backlog from all live brokers' persistent
   queues and stray buffers, deduplicated, minus delivered/superseded pairs,
   sorted into publish order;
2. **re-converge**: bump the generation (invalidating every in-flight
   message and armed protocol timer), rebuild the spanning tree over the
   survivors (:func:`~repro.network.spanning_tree.rebuild_spanning_tree`),
   and give every live broker a fresh :class:`FilterTable` wired to the new
   tree neighbours;
3. **resync routing state**: for every client (in id order) install a
   canonical offline subscription at its anchor broker via the protocol's
   ``install_recovered`` hook and flood the entry synchronously — replaying
   the exact ``_advertise`` / ``_handle_subscribe`` logic including
   covering-index pruning, so the rebuilt tables equal a from-scratch
   construction (the differential oracle in ``tests/test_recovery.py``
   checks this equality broker by broker);
4. **reattach**: for clients that were connected when the round ran,
   synthesize the protocol's normal ``on_connect`` (reusing the client's
   existing connect epoch, so interrupted MHH/two-phase handoffs restart
   cleanly instead of double-installing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigurationError
from repro.network.recovery import CrashPlan
from repro.network.spanning_tree import rebuild_spanning_tree
from repro.network.topology import Topology
from repro.pubsub.events import Notification
from repro.pubsub.filter_table import FilterTable
from repro.pubsub.filters import Filter
from repro.pubsub import messages as m

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.broker import Broker
    from repro.pubsub.client import Client
    from repro.pubsub.system import PubSubSystem

__all__ = ["RecoveryCoordinator", "validate_plan"]


def validate_plan(topo: Topology, plan: CrashPlan) -> None:
    """Reject plans the repair machinery cannot honour, before the run.

    Checks, replaying the schedule event by event: broker ids and edges
    exist, crashes hit live brokers, restarts revive dead ones, and the
    surviving overlay stays connected after every event (a disconnected
    survivor set has no spanning tree to re-converge to).
    """
    down: set[int] = set()
    cut: set[tuple[int, int]] = set()
    for e in plan.events:
        if e.kind == "partition":
            a, b = e.edge  # type: ignore[misc]
            if not (0 <= a < topo.n and 0 <= b < topo.n and topo.has_edge(a, b)):
                raise ConfigurationError(
                    f"partition event {e.label()}: {e.edge} is not an "
                    f"overlay link"
                )
            cut.add(e.edge)  # type: ignore[arg-type]
        else:
            bid = e.broker
            if not (bid is not None and 0 <= bid < topo.n):
                raise ConfigurationError(
                    f"{e.kind} event {e.label()}: no broker {bid}"
                )
            if e.kind == "crash":
                if bid in down:
                    raise ConfigurationError(
                        f"crash event {e.label()}: broker {bid} is already down"
                    )
                down.add(bid)
            else:
                if bid not in down:
                    raise ConfigurationError(
                        f"restart event {e.label()}: broker {bid} is not down"
                    )
                down.discard(bid)
        if not _survivors_connected(topo, down, cut):
            raise ConfigurationError(
                f"failure plan disconnects the surviving overlay at "
                f"event {e.label()}"
            )


def _survivors_connected(
    topo: Topology, down: set[int], cut: set[tuple[int, int]]
) -> bool:
    alive = [u for u in range(topo.n) if u not in down]
    if not alive:
        return False
    seen = {alive[0]}
    stack = [alive[0]]
    while stack:
        u = stack.pop()
        for v in topo.neighbors(u):
            if v in down or v in seen:
                continue
            if (min(u, v), max(u, v)) in cut:
                continue
            seen.add(v)
            stack.append(v)
    return len(seen) == len(alive)


class RecoveryCoordinator:
    """Executes a :class:`CrashPlan` against a running system."""

    def __init__(self, system: "PubSubSystem", plan: CrashPlan) -> None:
        validate_plan(system.topology, plan)
        self.system = system
        self.plan = plan
        #: bumped by every repair round; messages and protocol timers carry
        #: the generation they were created under and are dropped on mismatch
        self.generation = 0
        self.down: set[int] = set()
        self.cut: set[tuple[int, int]] = set()
        #: True between a failure event and the completing repair round:
        #: the overlay may silently eat any publish, so they are all marked
        self._dirty = False
        #: completed repair rounds / publishes observed on a clean repaired
        #: overlay — the fuzzer uses these to prove its "deliveries resume
        #: after reconvergence" invariant is not vacuous
        self.repairs = 0
        self.post_repair_publishes = 0
        self.last_repair_time = float("-inf")

    # ------------------------------------------------------------------
    # queries (link layer, timers, clients)
    # ------------------------------------------------------------------
    def is_down(self, broker: int) -> bool:
        return broker in self.down

    def edge_cut(self, a: int, b: int) -> bool:
        return (min(a, b), max(a, b)) in self.cut

    def guarded(self, broker_id: int, generation: int, fn, args) -> None:
        """Run a protocol timer continuation unless a repair round has
        invalidated it or its owning broker died (see ``MobilityProtocol.later``)."""
        if generation != self.generation or broker_id in self.down:
            return
        fn(*args)

    def reroute(self, target: int) -> int:
        """Redirect a client attach aimed at a dead broker to the nearest
        live one (grid hop count, lowest id wins ties) — the station's
        association logic, not a protocol message."""
        if target not in self.down:
            return target
        paths = self.system.paths
        alive = [b for b in self.system.brokers if b not in self.down]
        return min(alive, key=lambda b: (paths.hop_count(target, b), b))

    # ------------------------------------------------------------------
    # accounting hooks
    # ------------------------------------------------------------------
    def on_publish(self, event: Notification) -> None:
        if self._dirty:
            checker = self.system.metrics.delivery
            for cid in checker.matching_clients(event.topic):
                checker.mark_crash_risk(int(cid), event)
        elif self.generation:
            self.post_repair_publishes += 1

    def on_dropped_message(self, msg: m.Message) -> None:
        """A generation-stale or dead-addressed message was discarded; mark
        any event cargo it carried. Control messages carry none — the
        repair round rebuilds the structure they would have built."""
        checker = self.system.metrics.delivery
        t = type(msg)
        if t is m.ForwardedEvent or isinstance(msg, m.DeliverMessage):
            # isinstance: ReliableDeliver frames carry event cargo too
            checker.mark_crash_risk(msg.client, msg.event)
        elif t is m.MigrateBatch or t is m.TransferBatch or t is m.ForwardedBatch:
            for ev in msg.events:
                checker.mark_crash_risk(msg.client, ev)
        elif t is m.EventMessage or t is m.PublishMessage:
            for cid in checker.matching_clients(msg.event.topic):
                checker.mark_crash_risk(int(cid), msg.event)
            if t is m.PublishMessage and self.system.durability is not None:
                # the publish died before reaching any broker's WAL —
                # brokered logs cannot replay what they never saw. Model
                # the durable publisher outbox: the client library keeps
                # the event and re-submits it after the repair round.
                self.system.durability.dead_letter(msg.event)

    # ------------------------------------------------------------------
    # schedule execution
    # ------------------------------------------------------------------
    def schedule(self) -> None:
        """Arm the plan's events on the system clock (both drivers)."""
        clock = self.system.clock
        for e in self.plan.events:
            if e.kind == "crash":
                clock.call_later(e.time_ms, self._apply_crash, e.broker)
                clock.call_later(e.time_ms + e.repair_delay_ms, self._repair)
            elif e.kind == "partition":
                clock.call_later(e.time_ms, self._apply_partition, e.edge)
                clock.call_later(e.time_ms + e.repair_delay_ms, self._repair)
            else:  # restart: reintegration is itself a repair round
                clock.call_later(e.time_ms, self._apply_restart, e.broker)

    def _apply_crash(self, bid: int) -> None:
        system = self.system
        checker = system.metrics.delivery
        broker = system.brokers[bid]
        self.down.add(bid)
        self._dirty = True
        # volatile state is lost: mark every stored pair as crash-exposed
        for q in broker.queues.values():
            for ev in q:
                checker.mark_crash_risk(q.client, ev)
        for cid, ev in system.protocol.gather_stray(broker):
            checker.mark_crash_risk(cid, ev)
        # the base station is gone: its attached clients drop off the air
        # without any disconnect handling (there is no broker to run it)
        for cid in sorted(system.clients):
            client = system.clients[cid]
            if client.connected and client.current_broker == bid:
                # under reliability the reclaim is widened to the client's
                # unacked windows (and retires their retransmit timers), so
                # a crashed broker's in-flight reliable backlog is marked
                # here through the same call
                for pending in system.net.reclaim_downlink(cid):
                    if isinstance(pending, m.DeliverMessage):
                        checker.mark_crash_risk(cid, pending.event)
                client.force_disconnect()
        if system.reliability is not None:
            # retire any straggler transmit windows owned by the corpse:
            # the epoch bump cancels their pending retransmission timers
            # (a timer armed mid-backoff must never fire into the repaired
            # generation), and their frames are marked crash-exposed
            system.reliability.on_broker_crash(bid)
        broker.queues.clear()
        broker.pstate.clear()
        system.tracer.emit("broker_crash", broker=bid)

    def _apply_partition(self, edge: tuple[int, int]) -> None:
        self.cut.add(edge)
        self._dirty = True
        self.system.tracer.emit("overlay_partition", edge=edge)

    def _apply_restart(self, bid: int) -> None:
        self.down.discard(bid)
        self.system.tracer.emit("broker_restart", broker=bid)
        self._repair()

    # ------------------------------------------------------------------
    # the repair round
    # ------------------------------------------------------------------
    def _repair(self) -> None:
        system = self.system
        checker = system.metrics.delivery
        protocol = system.protocol
        self.generation += 1
        alive = sorted(b for b in system.brokers if b not in self.down)

        # 1. gather the surviving backlog: deduplicate by event id, skip
        #    pairs already delivered, and retire pairs whose replay would
        #    violate per-publisher order (the client saw a newer event).
        backlog: dict[int, dict[int, Notification]] = {}

        def keep(cid: int, ev: Notification) -> None:
            if checker.delivered_pair(cid, ev):
                return
            if ev.seq <= checker.max_delivered_seq(cid, ev.publisher):
                checker.mark_crash_risk(cid, ev)
                return
            backlog.setdefault(cid, {}).setdefault(ev.event_id, ev)

        for bid in alive:
            broker = system.brokers[bid]
            for q in broker.queues.values():
                for ev in q:
                    keep(q.client, ev)
            for cid, ev in protocol.gather_stray(broker):
                keep(cid, ev)

        dur = system.durability
        rel = system.reliability
        if rel is not None:
            # no reliability state may outlive a corpse: cancel pending
            # retransmit timers against down brokers and drop their stale
            # breaker verdicts before sessions are re-homed
            rel.on_overlay_repair(self.down)
        if dur is not None:
            # stable storage outlives the processes: replay every broker's
            # WAL and fold the logged events back into the backlog for all
            # matching subscribers. Volatile queues lost to a crash are
            # thereby rebuilt from the log (crash_lost -> 0); `keep`
            # dedups against what the live gather already found.
            for ev in dur.replay_events():
                for cid in checker.matching_clients(ev.topic):
                    keep(int(cid), ev)
            # publisher-outbox re-submission: publishes that died on the
            # wire before any broker logged them re-enter through the same
            # backlog path (keep dedups pairs already delivered or queued)
            for ev in dur.dead_letter_events():
                for cid in checker.matching_clients(ev.topic):
                    keep(int(cid), ev)

        # 2. re-converge the overlay and wipe routing/protocol state
        tree = rebuild_spanning_tree(
            system.topology, alive, self.cut,
            seed=system.seed, generation=self.generation,
        )
        system.tree = tree
        for bid in alive:
            broker = system.brokers[bid]
            broker.queues.clear()
            broker.pstate.clear()
            broker.tree = tree
            broker.table = FilterTable(
                bid,
                tree.neighbors(bid),
                engine=system.matching_engine,
                covering_index=system.covering_index,
            )
        protocol.on_repair_reset()

        # 3 + 4. resync routing state client by client (id order — the same
        # order the differential oracle uses), then reattach
        alive_set = set(alive)
        for cid in sorted(system.clients):
            client = system.clients[cid]
            anchor = protocol.recovery_anchor(
                client, alive_set, self._default_anchor(client, alive_set)
            )
            events = sorted(
                backlog.get(cid, {}).values(), key=lambda e: e.event_id
            )
            entry = protocol.install_recovered(
                system.brokers[anchor], client, events
            )
            self._flood_entry(anchor, entry.key, entry.filter)
            if dur is not None:
                # if the client's durable session was anchored at a broker
                # now declared dead, hand the unacked window over to the
                # new anchor (rides this synchronous resync) instead of
                # letting retries exhaust against the corpse
                dur.rehome_session(cid, anchor, self.down)
            if client.connected:
                protocol.on_connect(
                    system.brokers[client.current_broker],
                    cid,
                    last_broker=client.current_broker,
                    epoch=client.connect_epoch,
                )
            else:
                client.last_broker = anchor
        self._dirty = False
        self.repairs += 1
        self.last_repair_time = system.clock.now
        system.tracer.emit(
            "overlay_repair", generation=self.generation, alive=len(alive)
        )

    @staticmethod
    def _default_anchor(client: "Client", alive: set[int]) -> int:
        if client.connected:
            return client.current_broker  # crash detaches, connect reroutes
        for cand in (client.last_broker, client.home_broker):
            if cand is not None and cand in alive:
                return cand
        return min(alive)

    def _flood_entry(self, origin: int, key, filt: Filter) -> None:
        """Synchronously replay the subscription flood for one entry.

        Mirrors ``Broker._advertise`` + ``Broker._handle_subscribe``
        exactly — advertised-key dedup, covering-index pruning, mirror
        bookkeeping — but applies the table mutations in place instead of
        sending messages, so the repaired routing state is consistent the
        instant the round completes (and equals a from-scratch build).
        """
        broker = self.system.brokers[origin]
        for nbr in broker.table.neighbors:
            self._sync_advertise(broker, nbr, key, filt)

    def _sync_advertise(
        self, broker: "Broker", nbr: int, key, filt: Filter
    ) -> None:
        table = broker.table
        if self.system.covering_enabled and table.advertised_covers(nbr, filt):
            return
        if table.advertised_has(nbr, key):
            return
        table.advertised_add(nbr, key, filt)
        receiver = self.system.brokers[nbr]
        receiver.table.add_broker_filter(broker.id, key, filt)
        for nxt in receiver.table.neighbors:
            if nxt != broker.id:
                self._sync_advertise(receiver, nxt, key, filt)
