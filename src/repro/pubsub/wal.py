"""Durable broker state: write-ahead log, persistent sessions, handover.

PR 6 made brokers mortal and PR 7 made delivery reliable, but both buy
correctness with *accounted write-offs*: a crashed broker loses its
volatile downlink queues and retransmit windows (``crash_lost``), and a
retry budget exhausted against a dead link is shed. This module closes
both holes behind an opt-in ``durable=True`` switch:

* **Write-ahead log** (:class:`BrokerWal` over a :class:`LogStore`) — every
  broker appends a checksummed record *before* the corresponding send:
  ``pub`` at the ingress broker before the event is routed, ``dlv`` before
  a deliver frame leaves for a client, ``ack`` when the cumulative-ACK
  cursor advances, ``ses`` when a client session is created or re-homed.
  Records are length+CRC32 framed inside fixed-size segments; a torn tail
  (mid-record crash) is detected by checksum and truncated on open.

* **Persistent client sessions** (:class:`ClientSession`) — subscription
  range, delivery cursor (the set of settled event ids) and the unacked
  retransmit window, all reconstructible purely from the log by
  :meth:`DurabilityManager.replay`.

* **Checkpoint/compaction** — every ``checkpoint_every`` appends a broker
  rewrites its log to the live set: publishes not yet settled by every
  matching subscriber, the unacked window of each session anchored here,
  and the acks that keep settled-but-live events from being re-offered.
  Compaction is keyed to the cumulative-ACK cursor, so the log stays
  bounded while *never* dropping an unacked record.

* **Recovery integration** — the repair round
  (:meth:`repro.pubsub.recovery.RecoveryCoordinator._repair`) folds
  :meth:`DurabilityManager.replay_events` into its gathered backlog (so a
  restarted broker's queues are rebuilt from stable storage,
  ``crash_lost -> 0``) and calls :meth:`DurabilityManager.rehome_session`
  for every client whose session anchor died: the unacked window rides a
  :class:`repro.pubsub.messages.SessionTransfer` to the new home broker
  instead of exhausting the retry budget against a corpse
  (``shed -> 0``).

Modeling note: the log is *stable storage* — it survives crash, restart
and permanent death of the broker process, exactly like a disk that
outlives the machine that wrote it. The simulated driver backs it with
:class:`MemoryLogStore`; the live driver uses :class:`FileLogStore`
(real files, real torn tails) behind the same facade.

Determinism: all bookkeeping is driven by the event stream itself (append
counts, not wall time; sorted iteration everywhere), so durable runs stay
byte-identical across sim engines and drivers. Default-off runs construct
nothing from this module at all.
"""

from __future__ import annotations

import ast
import os
import shutil
import struct
import zlib
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.pubsub import messages as m
from repro.pubsub.events import Notification

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pubsub.broker import Broker
    from repro.pubsub.system import PubSubSystem

__all__ = [
    "LogStore",
    "MemoryLogStore",
    "FileLogStore",
    "BrokerWal",
    "ClientSession",
    "DurabilityManager",
    "ReplayState",
    "encode_record",
    "decode_records",
]

#: default segment roll size (bytes of encoded records per segment)
SEGMENT_BYTES = 64 * 1024
#: default appends between checkpoint/compaction passes per broker
CHECKPOINT_EVERY = 512

# ---------------------------------------------------------------------------
# record framing: <u32 payload-length> <u32 crc32(payload)> <payload>
# ---------------------------------------------------------------------------

_HDR = struct.Struct("<II")


def encode_record(payload_obj: tuple) -> bytes:
    """Frame one record: length + CRC32 header, then the payload bytes.

    The payload is the ``repr`` of a plain tuple of literals, decoded with
    :func:`ast.literal_eval` — deterministic, human-inspectable, and free
    of pickle's code-execution surface.
    """
    payload = repr(payload_obj).encode("utf-8")
    return _HDR.pack(len(payload), zlib.crc32(payload)) + payload


def decode_records(blob: bytes) -> Tuple[List[tuple], int]:
    """Decode a segment image into records, truncating any torn tail.

    Returns ``(records, torn_bytes)``. Decoding stops at the first frame
    that is short, fails its checksum, or does not parse — everything from
    that offset on is the torn tail left by a mid-record crash and is
    reported (not returned) so callers can truncate stable storage to the
    clean prefix.
    """
    records: List[tuple] = []
    off, n = 0, len(blob)
    while off < n:
        if off + _HDR.size > n:
            break
        length, crc = _HDR.unpack_from(blob, off)
        start = off + _HDR.size
        end = start + length
        if end > n:
            break
        payload = bytes(blob[start:end])
        if zlib.crc32(payload) != crc:
            break
        try:
            obj = ast.literal_eval(payload.decode("utf-8"))
        except (ValueError, SyntaxError, UnicodeDecodeError):
            break
        if not isinstance(obj, tuple):
            break
        records.append(obj)
        off = end
    return records, n - off


# ---------------------------------------------------------------------------
# log stores: one facade, a simulated and a file-backed implementation
# ---------------------------------------------------------------------------


class LogStore:
    """Per-broker append-only segment storage behind one facade.

    The durability layer only ever needs four primitives; both drivers
    implement them so the protocol kernel stays sans-IO:

    * :meth:`append` — add framed bytes to the broker's open segment,
      rolling to a new segment past the size threshold;
    * :meth:`segments` — the ordered raw segment images for replay;
    * :meth:`replace` — atomically swap all segments for a compacted one;
    * :meth:`brokers` — which brokers have any logged state.
    """

    name = "abstract"

    def append(self, broker: int, data: bytes) -> None:
        raise NotImplementedError

    def append_record(self, broker: int, payload: tuple) -> None:
        """Append one not-yet-framed record (the manager's hot path).

        Stores where "stable" means bytes-on-media encode immediately;
        stores where it is a modeling statement (:class:`MemoryLogStore`)
        may defer framing until the bytes are actually observed
        (:meth:`segments`) — the byte images are identical either way.
        """
        self.append(broker, encode_record(payload))

    def segments(self, broker: int) -> List[bytes]:
        raise NotImplementedError

    def replace(self, broker: int, data: bytes) -> None:
        raise NotImplementedError

    def brokers(self) -> List[int]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class MemoryLogStore(LogStore):
    """In-memory stable storage for the simulated driver.

    "Stable" is a modeling statement: the byte arrays live in the
    :class:`DurabilityManager`, not in the broker objects, so a broker
    crash (which clears its volatile queues) leaves them intact — the same
    contract a surviving disk gives the live driver.
    """

    name = "memory"

    def __init__(self, segment_bytes: int = SEGMENT_BYTES) -> None:
        self.segment_bytes = segment_bytes
        self._segs: Dict[int, List[bytearray]] = {}
        # records appended but not yet framed: encoding (repr + crc) is
        # pure function of the record, so it can run when the bytes are
        # first *observed* instead of on the simulation hot path — the
        # resulting segment images are byte-identical to eager framing
        self._pending: Dict[int, List[tuple]] = {}

    def _flush(self, broker: int) -> None:
        pending = self._pending.get(broker)
        if not pending:
            return
        self._pending[broker] = []
        segs = self._segs.setdefault(broker, [bytearray()])
        for payload in pending:
            data = encode_record(payload)
            if segs[-1] and len(segs[-1]) + len(data) > self.segment_bytes:
                segs.append(bytearray())
            segs[-1] += data

    def append(self, broker: int, data: bytes) -> None:
        self._flush(broker)
        segs = self._segs.setdefault(broker, [bytearray()])
        if segs[-1] and len(segs[-1]) + len(data) > self.segment_bytes:
            segs.append(bytearray())
        segs[-1] += data

    def append_record(self, broker: int, payload: tuple) -> None:
        try:
            self._pending[broker].append(payload)
        except KeyError:
            self._segs.setdefault(broker, [bytearray()])
            self._pending[broker] = [payload]

    def segments(self, broker: int) -> List[bytes]:
        self._flush(broker)
        return [bytes(s) for s in self._segs.get(broker, [])]

    def replace(self, broker: int, data: bytes) -> None:
        # the compacted image supersedes every record appended so far,
        # framed or still pending
        self._pending.pop(broker, None)
        self._segs[broker] = [bytearray(data)]

    def brokers(self) -> List[int]:
        return sorted(self._segs)


class FileLogStore(LogStore):
    """File-backed stable storage for the live driver.

    Layout: ``<root>/b<broker>/seg<index>.wal``. Appends go to the
    highest-index segment and are flushed per record (append-before-send
    is only meaningful if the bytes actually hit the file). On open, every
    existing segment is scanned and torn tails — artifacts of a real
    mid-record crash — are truncated to the last clean record boundary.
    """

    name = "file"

    def __init__(self, root: str, segment_bytes: int = SEGMENT_BYTES,
                 owns_dir: bool = False) -> None:
        self.root = str(root)
        self.segment_bytes = segment_bytes
        self._owns_dir = owns_dir
        self._sizes: Dict[int, int] = {}  # open-segment size per broker
        self._index: Dict[int, int] = {}  # open-segment index per broker
        os.makedirs(self.root, exist_ok=True)
        for bid in self.brokers():
            paths = self._segment_paths(bid)
            for path in paths:
                self._truncate_torn(path)
            self._index[bid] = self._path_index(paths[-1]) if paths else 0
            self._sizes[bid] = os.path.getsize(paths[-1]) if paths else 0

    # -- path helpers -----------------------------------------------------

    def _broker_dir(self, broker: int) -> str:
        return os.path.join(self.root, f"b{broker:03d}")

    @staticmethod
    def _path_index(path: str) -> int:
        stem = os.path.splitext(os.path.basename(path))[0]
        return int(stem[3:])

    def _segment_paths(self, broker: int) -> List[str]:
        bdir = self._broker_dir(broker)
        if not os.path.isdir(bdir):
            return []
        names = sorted(n for n in os.listdir(bdir)
                       if n.startswith("seg") and n.endswith(".wal"))
        return [os.path.join(bdir, n) for n in names]

    @staticmethod
    def _truncate_torn(path: str) -> None:
        with open(path, "rb") as fh:
            blob = fh.read()
        _, torn = decode_records(blob)
        if torn:
            with open(path, "r+b") as fh:
                fh.truncate(len(blob) - torn)

    # -- LogStore primitives ---------------------------------------------

    def append(self, broker: int, data: bytes) -> None:
        bdir = self._broker_dir(broker)
        os.makedirs(bdir, exist_ok=True)
        idx = self._index.get(broker, 0)
        size = self._sizes.get(broker, 0)
        if size and size + len(data) > self.segment_bytes:
            idx += 1
            size = 0
        path = os.path.join(bdir, f"seg{idx:06d}.wal")
        with open(path, "ab") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        self._index[broker] = idx
        self._sizes[broker] = size + len(data)

    def segments(self, broker: int) -> List[bytes]:
        out = []
        for path in self._segment_paths(broker):
            with open(path, "rb") as fh:
                out.append(fh.read())
        return out

    def replace(self, broker: int, data: bytes) -> None:
        bdir = self._broker_dir(broker)
        os.makedirs(bdir, exist_ok=True)
        idx = self._index.get(broker, 0) + 1
        path = os.path.join(bdir, f"seg{idx:06d}.wal")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        for old in self._segment_paths(broker):
            if old != path:
                os.unlink(old)
        self._index[broker] = idx
        self._sizes[broker] = len(data)

    def brokers(self) -> List[int]:
        out = []
        for name in os.listdir(self.root):
            if name.startswith("b") and name[1:].isdigit():
                out.append(int(name[1:]))
        return sorted(out)

    def close(self) -> None:
        if self._owns_dir:
            shutil.rmtree(self.root, ignore_errors=True)


# ---------------------------------------------------------------------------
# per-broker WAL: record codec over a store
# ---------------------------------------------------------------------------


class BrokerWal:
    """One broker's view of the log: append framed records, replay them.

    Record payloads (all plain literal tuples; ``lsn`` is a manager-global
    log sequence number that gives replay a total order across brokers):

    * ``("pub", lsn, (event_id, publisher, seq, publish_time, topic, attrs))``
    * ``("dlv", lsn, client, event_id)`` — deliver frame about to leave
    * ``("ack", lsn, client, event_id)`` — delivery cursor advanced
    * ``("ses", lsn, client, lo, hi, acked)`` — session created / re-homed
      here; ``acked`` folds the live part of the delivery cursor into the
      anchor record (one record per move, not one per settled event)
    """

    __slots__ = ("store", "broker")

    def __init__(self, store: LogStore, broker: int) -> None:
        self.store = store
        self.broker = broker

    def append(self, payload: tuple) -> None:
        self.store.append_record(self.broker, payload)

    def replay(self) -> Tuple[List[tuple], int]:
        """Decode every segment; returns ``(records, torn_segments)``."""
        records: List[tuple] = []
        torn_segments = 0
        for blob in self.store.segments(self.broker):
            recs, torn = decode_records(blob)
            records.extend(recs)
            if torn:
                torn_segments += 1
        return records, torn_segments


def _event_tuple(ev: Notification) -> tuple:
    attrs = dict(ev.attrs) if ev.attrs else None
    return (ev.event_id, ev.publisher, ev.seq, ev.publish_time, ev.topic, attrs)


def _event_from_tuple(t: tuple) -> Notification:
    return Notification(t[0], t[1], t[2], t[3], t[4], t[5])


# ---------------------------------------------------------------------------
# persistent client sessions
# ---------------------------------------------------------------------------


class ClientSession:
    """Durable per-client delivery state.

    ``anchor`` is the broker whose WAL currently owns the session;
    ``acked`` is the delivery cursor (event ids settled by cumulative ACK
    or, without the reliability layer, by app-level delivery); ``unacked``
    is the retransmit window — delivered-but-unsettled events in send
    order. ``lo``/``hi`` record the client's topic-range subscription for
    the handover message.
    """

    __slots__ = ("client", "anchor", "lo", "hi", "acked", "unacked")

    def __init__(self, client: int, anchor: int,
                 lo: Optional[float] = None, hi: Optional[float] = None) -> None:
        self.client = client
        self.anchor = anchor
        self.lo = lo
        self.hi = hi
        self.acked: set[int] = set()
        self.unacked: Dict[int, Notification] = {}

    def state_key(self) -> tuple:
        """Canonical comparison key (used by the replay-oracle tests)."""
        return (self.client, self.anchor, self.lo, self.hi,
                tuple(sorted(self.acked)), tuple(sorted(self.unacked)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClientSession(c{self.client}@b{self.anchor}, "
                f"acked={len(self.acked)}, unacked={len(self.unacked)})")


class ReplayState:
    """What :meth:`DurabilityManager.replay` reconstructs from the log."""

    __slots__ = ("events", "sessions", "torn_segments")

    def __init__(self, events: Dict[int, Notification],
                 sessions: Dict[int, ClientSession], torn_segments: int) -> None:
        self.events = events
        self.sessions = sessions
        self.torn_segments = torn_segments


# ---------------------------------------------------------------------------
# the durability manager
# ---------------------------------------------------------------------------


class DurabilityManager:
    """WAL + session bookkeeping for every broker in one system.

    Runtime hooks (:meth:`on_publish`, :meth:`on_deliver`,
    :meth:`on_settled`) append to the log *before* the corresponding send
    and mirror the state in memory; recovery deliberately ignores the
    mirror and reconstructs everything from the log bytes
    (:meth:`replay`), so the WAL stays load-bearing rather than
    decorative.
    """

    def __init__(self, system: "PubSubSystem", store: LogStore,
                 checkpoint_every: int = CHECKPOINT_EVERY) -> None:
        self.system = system
        self.store = store
        self.checkpoint_every = checkpoint_every
        self._wals: Dict[int, BrokerWal] = {}
        self._lsn = 0
        #: live (uncompacted) published events, id -> Notification
        self.events: Dict[int, Notification] = {}
        self._event_home: Dict[int, int] = {}  # event id -> ingress broker
        #: publisher-outbox dead letters: publishes that died on the wire
        #: before reaching any broker's log (uplink into a dead or
        #: generation-stale target). The publishing device's library holds
        #: the event durably and re-submits it after the repair round;
        #: client devices do not crash in this model, so a plain dict is
        #: the outbox.
        self.dead_letters: Dict[int, Notification] = {}
        self.sessions: Dict[int, ClientSession] = {}
        self._since_ckpt: Dict[int, int] = {}
        self.checkpoints = 0
        self.handovers = 0
        self.records_appended = 0

    # -- plumbing ---------------------------------------------------------

    def wal(self, broker: int) -> BrokerWal:
        w = self._wals.get(broker)
        if w is None:
            w = self._wals[broker] = BrokerWal(self.store, broker)
        return w

    def _append(self, broker: int, payload: tuple) -> None:
        self.store.append_record(broker, payload)
        self.records_appended += 1
        n = self._since_ckpt.get(broker, 0) + 1
        if n >= self.checkpoint_every:
            self.checkpoint(broker)
        else:
            self._since_ckpt[broker] = n

    def _next_lsn(self) -> int:
        self._lsn += 1
        return self._lsn

    def _session(self, client: int, broker: int) -> ClientSession:
        s = self.sessions.get(client)
        if s is None:
            lo = hi = None
            cl = self.system.clients.get(client)
            if cl is not None:
                rng = cl.filter.as_range()
                if rng is not None and rng[0] == "topic":
                    lo, hi = rng[1], rng[2]
            s = self.sessions[client] = ClientSession(client, broker, lo, hi)
            self._append(broker, ("ses", self._next_lsn(), client, lo, hi, ()))
        return s

    # -- runtime hooks (append-before-send) -------------------------------

    def on_publish(self, broker: int, event: Notification) -> None:
        """Ingress broker logs the event before routing it anywhere."""
        self.events[event.event_id] = event
        self._event_home[event.event_id] = broker
        self._append(broker, ("pub", self._next_lsn(), _event_tuple(event)))

    def on_deliver(self, broker: int, client: int, event: Notification) -> None:
        """A deliver frame is about to leave ``broker`` for ``client``."""
        s = self._session(client, broker)
        if s.anchor != broker:
            self._move_session(s, broker)
        # mirror before append: the append itself may trigger a checkpoint,
        # which compacts from the mirror — a not-yet-mirrored delivery
        # would be dropped from the very image replacing its record
        if event.event_id not in s.acked:
            s.unacked.setdefault(event.event_id, event)
        self._append(broker, ("dlv", self._next_lsn(), client, event.event_id))

    def _move_session(self, s: ClientSession, broker: int) -> None:
        """Re-anchor ``s`` at ``broker``, logging its full state there.

        A mobility handoff moves the session's home; without this, the old
        anchor's next checkpoint would drop the session's records (it only
        rewrites sessions anchored *there*) while the new anchor's log had
        never seen them — an unacked window silently lost from stable
        storage. Writing the whole window at the new anchor keeps every
        anchor's log self-contained, so old-anchor records are redundant
        by the time compaction discards them.
        """
        s.anchor = broker
        # the live part of the delivery cursor rides inside the ses record
        # (one append per move, not one per settled event); intersect from
        # the bounded live-event side — the full cursor grows with the run
        self._append(broker, ("ses", self._next_lsn(), s.client, s.lo, s.hi,
                              tuple(sorted(self.events.keys() & s.acked))))
        for eid in s.unacked:  # insertion order == send order
            self._append(broker, ("dlv", self._next_lsn(), s.client, eid))

    def on_settled(self, broker: int, client: int, event: Notification) -> None:
        """The delivery cursor advanced (cum-ACK progress or app receipt)."""
        s = self._session(client, broker)
        eid = event.event_id
        if eid in s.acked:
            return
        s.acked.add(eid)
        s.unacked.pop(eid, None)
        self._append(broker, ("ack", self._next_lsn(), client, eid))

    def on_client_delivered(self, client: int, broker: Optional[int],
                            event: Notification) -> None:
        """App-level delivery receipt — the cursor when reliability is off.

        With the reliability layer on, the cumulative ACK is the durable
        cursor (settlement happens broker-side in
        :meth:`repro.pubsub.reliability.ReliabilityManager.on_ack`), so
        this is a no-op there to keep the log single-sourced.
        """
        if self.system.reliability is not None:
            return
        s = self.sessions.get(client)
        if s is None or event.event_id not in s.unacked:
            return
        self.on_settled(broker if broker is not None else s.anchor,
                        client, event)

    # -- checkpoint / compaction -----------------------------------------

    def _settled_everywhere(self, event: Notification) -> bool:
        checker = self.system.metrics.delivery
        eid = event.event_id
        for cid in checker.matching_clients(event.topic):
            cid = int(cid)
            s = self.sessions.get(cid)
            if s is not None and eid in s.acked:
                continue
            if checker.delivered_pair(cid, event):
                continue
            return False
        return True

    def checkpoint(self, broker: int) -> None:
        """Compact ``broker``'s log to the live set (cum-ACK keyed).

        Keeps: publishes ingressed here and not yet settled by every
        matching subscriber; for each session anchored here, its latest
        ``ses`` record, the unacked window (``dlv``), and acks against
        still-live events. Everything else is provably never needed by
        replay, so the log stays bounded. Never drops an unacked record —
        the property the WAL test battery pins.
        """
        out: List[bytes] = []
        for eid in sorted(e for e, h in self._event_home.items() if h == broker):
            ev = self.events[eid]
            if self._settled_everywhere(ev):
                del self.events[eid]
                del self._event_home[eid]
            else:
                out.append(encode_record(
                    ("pub", self._next_lsn(), _event_tuple(ev))))
        for cid in sorted(self.sessions):
            s = self.sessions[cid]
            if s.anchor != broker:
                continue
            out.append(encode_record(
                ("ses", self._next_lsn(), cid, s.lo, s.hi,
                 tuple(sorted(self.events.keys() & s.acked)))))
            for eid in s.unacked:
                out.append(encode_record(("dlv", self._next_lsn(), cid, eid)))
        self.store.replace(broker, b"".join(out))
        self._since_ckpt[broker] = 0
        self.checkpoints += 1

    # -- replay (pure function of the log bytes) --------------------------

    def replay(self) -> ReplayState:
        """Rebuild events + sessions purely from stable storage.

        Records from all brokers are merged in global ``lsn`` order, so a
        session re-homed at repair time resolves to its newest anchor and
        an ack always lands before any stale ``dlv`` rewrite. Applying a
        log twice yields the same state as applying it once (every record
        application is idempotent), which the test battery asserts.
        """
        merged: List[Tuple[int, int, tuple]] = []
        torn = 0
        for bid in sorted(self.store.brokers()):
            records, torn_segs = self.wal(bid).replay()
            torn += torn_segs
            for rec in records:
                merged.append((rec[1], bid, rec))
        merged.sort(key=lambda t: (t[0], t[1]))
        # pass 1: the event payloads. Compaction rewrites surviving pub
        # records with fresh lsns, so a pub may sort *after* a dlv that
        # references it — events must be complete before sessions apply.
        events: Dict[int, Notification] = {}
        for _lsn, _bid, rec in merged:
            if rec[0] == "pub":
                ev = _event_from_tuple(rec[2])
                events[ev.event_id] = ev
        # pass 2: sessions, in global lsn order (newest anchor wins, acks
        # land before any stale dlv rewrite)
        sessions: Dict[int, ClientSession] = {}
        for _lsn, bid, rec in merged:
            kind = rec[0]
            if kind == "ses":
                cid, lo, hi = rec[2], rec[3], rec[4]
                s = sessions.get(cid)
                if s is None:
                    s = sessions[cid] = ClientSession(cid, bid, lo, hi)
                s.anchor, s.lo, s.hi = bid, lo, hi
                for eid in rec[5]:
                    s.acked.add(eid)
                    s.unacked.pop(eid, None)
            elif kind == "dlv":
                cid, eid = rec[2], rec[3]
                s = sessions.get(cid)
                if s is None:
                    s = sessions[cid] = ClientSession(cid, bid)
                s.anchor = bid
                if eid not in s.acked and eid in events:
                    s.unacked.setdefault(eid, events[eid])
            elif kind == "ack":
                cid, eid = rec[2], rec[3]
                s = sessions.get(cid)
                if s is None:
                    s = sessions[cid] = ClientSession(cid, bid)
                s.acked.add(eid)
                s.unacked.pop(eid, None)
        return ReplayState(events, sessions, torn)

    def replay_events(self) -> List[Notification]:
        """All live logged events in id order — the repair-round gather."""
        state = self.replay()
        return [state.events[eid] for eid in sorted(state.events)]

    def dead_letter(self, event: Notification) -> None:
        """A publish was dropped before any broker's log saw it."""
        self.dead_letters.setdefault(event.event_id, event)

    def dead_letter_events(self) -> List[Notification]:
        """Outstanding dead letters in id order (repair re-submission).

        Never drained: the repair round's ``keep`` dedups against pairs
        already delivered or queued, and an event re-ingressed into a
        volatile backlog may be wiped by a *later* crash — the outbox only
        forgets when the run ends.
        """
        return [self.dead_letters[eid] for eid in sorted(self.dead_letters)]

    # -- repair-round integration ----------------------------------------

    def rehome_session(self, client: int, anchor: int,
                       down: Iterable[int]) -> None:
        """Hand the session over to ``anchor`` if its home broker died.

        Rides the repair round's synchronous resync (same trust model as
        the routing-table reinstall): the unacked window and the live part
        of the delivery cursor travel in a
        :class:`~repro.pubsub.messages.SessionTransfer`, which the new
        anchor logs to *its* WAL before any redelivery happens.
        """
        s = self.sessions.get(client)
        if s is None or s.anchor == anchor or s.anchor not in down:
            return
        acked_live = tuple(sorted(self.events.keys() & s.acked))
        msg = m.SessionTransfer(client, s.anchor, anchor,
                                tuple(s.unacked.values()), acked_live)
        self.system.brokers[anchor].receive(msg, -1 - client)
        self.handovers += 1

    def on_session_transfer(self, broker: "Broker",
                            msg: "m.SessionTransfer") -> None:
        """New anchor installs a handed-over session and logs it durably."""
        bid = broker.id
        s = self.sessions.get(msg.client)
        if s is None:
            s = self._session(msg.client, bid)
        s.anchor = bid
        for eid in msg.acked:
            s.acked.add(eid)
            s.unacked.pop(eid, None)
        # one ses record re-anchors the session *and* carries the live part
        # of the handed-over delivery cursor
        self._append(bid, ("ses", self._next_lsn(), msg.client, s.lo, s.hi,
                           tuple(sorted(self.events.keys() & s.acked))))
        for ev in msg.events:
            # mirror before append (see on_deliver): a checkpoint fired by
            # this very append compacts from the mirror
            if ev.event_id not in s.acked:
                s.unacked.setdefault(ev.event_id, ev)
            self._append(bid, ("dlv", self._next_lsn(), msg.client,
                               ev.event_id))

    def close(self) -> None:
        self.store.close()
