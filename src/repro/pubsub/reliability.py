"""End-to-end reliable downlink delivery: ACK/retransmit, breakers, backoff.

The fault layer (PR 4) makes the wireless downlink lossy and the crash
model (PR 6) makes brokers mortal — but until now a dropped
:class:`~repro.pubsub.messages.DeliverMessage` was merely *accounted* as
lost. This module recovers it: with ``reliable=True`` every final delivery
is sequence-numbered per (broker, client) link, the client returns
cumulative ACKs (with NACK gap lists for fast retransmit), and the broker
retransmits on a deterministic exponential-backoff timer until the event
is acknowledged, the retry budget is exhausted, or the link's circuit
breaker trips.

Design constraints, in order:

* **Default-off is byte-identical.** The manager is only constructed when
  ``reliable=True``; no default code path allocates, branches or draws
  randomness differently.
* **Sans-IO and replayable.** All timing goes through the system's
  :class:`~repro.drivers.base.Clock` facade and all jitter comes from a
  dedicated :class:`~repro.sim.rng.RandomStreams` stream
  (``reliability/backoff``), so the same seed produces the same retry
  schedule under the discrete-event simulator and the live VirtualClock
  driver (property-tested in ``tests/test_reliability.py``).
* **Composes with protocol reclaim.** On detach, the link layer's
  ``reclaim_downlink`` (which every mobility protocol already calls)
  returns the link's *entire* unacked window — transmitted-and-dropped
  messages included — in send order, so MHH/sub-unsub/two-phase requeue
  them through their existing PQ machinery and redeliver after the
  handoff. Protocol paths that skip the reclaim are covered by a detach
  safety net that requeues leftovers onto the raw channel.
* **Composes with crash recovery.** Retransmission timers check the
  :class:`~repro.pubsub.recovery.RecoveryCoordinator`'s down set before
  firing (retries never fight a repair round), and a crashed broker's
  unacked window is surfaced to the crash-risk marking through the same
  reclaim call the coordinator already performs.

Accounting: the delivery checker runs in *reconciling* mode under
reliability (see :meth:`~repro.metrics.delivery.DeliveryChecker.
enable_reliability`) — drops of tracked reliable messages are marked
recoverable instead of lost, and at end of run
``missing = expected − delivered_unique − lost − crash_lost − shed``
must still be exactly zero, which the conformance fuzzer's reliability
lane asserts over seeded loss scenarios.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, TYPE_CHECKING

from repro.pubsub import messages as m
from repro.pubsub.events import Notification

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.client import Client
    from repro.pubsub.system import PubSubSystem

__all__ = ["ReliabilityManager", "CircuitBreaker"]

#: retransmission timer base / cap (model ms). One wireless round trip is
#: 40 ms; the base leaves room for ack coalescing and uplink queueing.
RTO_BASE_MS = 160.0
RTO_MAX_MS = 5000.0
#: the client coalesces acks: at most one per link per this window
ACK_DELAY_MS = 5.0
#: consecutive retry exhaustions before a link's breaker trips
BREAKER_THRESHOLD = 3
#: how long a tripped breaker stays open before allowing half-open probes
BREAKER_COOLOFF_MS = 5000.0


class CircuitBreaker:
    """Per-(broker, client) link breaker: closed -> open -> half-open.

    Trips after ``threshold`` *consecutive* retry exhaustions; while open
    every new send is shed immediately (bounded damage instead of futile
    retransmit storms). After ``cooloff_ms`` the next send is let through
    as a half-open probe: an acked probe closes the breaker, an exhausted
    one reopens it. All transitions happen lazily inside event-ordered
    calls, so the state machine is deterministic and replayable.
    """

    __slots__ = ("threshold", "cooloff_ms", "state", "failures",
                 "open_until", "probe_inflight", "trips")

    def __init__(
        self,
        threshold: int = BREAKER_THRESHOLD,
        cooloff_ms: float = BREAKER_COOLOFF_MS,
    ) -> None:
        self.threshold = threshold
        self.cooloff_ms = cooloff_ms
        self.state = "closed"
        self.failures = 0
        self.open_until = 0.0
        self.probe_inflight = False
        self.trips = 0

    def allows(self, now: float) -> bool:
        """May a new reliable send start on this link right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if now < self.open_until:
                return False
            self.state = "half_open"
            self.probe_inflight = False
            return True
        return not self.probe_inflight  # half_open: one probe at a time

    def on_probe_sent(self) -> None:
        if self.state == "half_open":
            self.probe_inflight = True

    def on_progress(self) -> None:
        """Any cumulative-ack progress on the link."""
        self.failures = 0
        if self.state != "closed":
            self.state = "closed"
            self.probe_inflight = False

    def on_exhaust(self, now: float) -> bool:
        """A retry budget ran dry on this link; returns True if it tripped."""
        self.failures += 1
        if self.state == "half_open" or (
            self.state == "closed" and self.failures >= self.threshold
        ):
            self.state = "open"
            self.open_until = now + self.cooloff_ms
            self.probe_inflight = False
            self.trips += 1
            return True
        return False

    def on_link_retired(self) -> None:
        """The link's transmit state was reclaimed (detach); a half-open
        probe that will never be acked must not wedge the breaker."""
        self.probe_inflight = False


class _LinkTx:
    """Broker-side transmit state for one (broker, client) link session."""

    __slots__ = ("broker", "client", "session", "next_seq", "unacked",
                 "attempts", "timer_epoch", "nack_retx", "probe")

    def __init__(self, broker: int, client: int, session: int) -> None:
        self.broker = broker
        self.client = client
        self.session = session
        self.next_seq = 0
        #: rel_seq -> ReliableDeliver, in send (== seq) order
        self.unacked: "OrderedDict[int, m.ReliableDeliver]" = OrderedDict()
        #: consecutive timeouts for the current oldest unacked message
        self.attempts = 0
        #: bumped to invalidate armed timers (cheap driver-agnostic cancel)
        self.timer_epoch = 0
        #: seqs already fast-retransmitted once off a NACK this session
        self.nack_retx: set[int] = set()
        #: True while this link carries a breaker half-open probe
        self.probe = False


class _RxState:
    """Client-side receive state for one (client, origin-broker) pair."""

    __slots__ = ("session", "expected", "buffer", "ack_pending")

    def __init__(self, session: int) -> None:
        self.session = session
        #: next in-order rel_seq to hand to the application
        self.expected = 0
        #: out-of-order events held back until the gap below them fills
        self.buffer: dict[int, Notification] = {}
        self.ack_pending = False


class ReliabilityManager:
    """The reliability layer: one instance per system, built only when
    ``reliable=True`` (default-off runs never construct it)."""

    def __init__(
        self,
        system: "PubSubSystem",
        retry_budget: int = 8,
        rto_base_ms: float = RTO_BASE_MS,
        rto_max_ms: float = RTO_MAX_MS,
        ack_delay_ms: float = ACK_DELAY_MS,
        breaker_threshold: int = BREAKER_THRESHOLD,
        breaker_cooloff_ms: float = BREAKER_COOLOFF_MS,
    ) -> None:
        self.system = system
        self.retry_budget = retry_budget
        self.rto_base_ms = rto_base_ms
        self.rto_max_ms = rto_max_ms
        self.ack_delay_ms = ack_delay_ms
        #: seeded jitter stream: same seed => same retry schedule, under
        #: every driver (draws happen in event-execution order)
        self._rng = system.streams.stream("reliability/backoff")
        self._links: dict[tuple[int, int], _LinkTx] = {}
        self._links_by_client: dict[int, dict[int, _LinkTx]] = {}
        self._rx: dict[tuple[int, int], _RxState] = {}
        self._breakers: dict[tuple[int, int], CircuitBreaker] = {}
        self._breaker_threshold = breaker_threshold
        self._breaker_cooloff_ms = breaker_cooloff_ms
        #: monotone session allocator (per-link monotonicity follows)
        self._next_session = 0
        #: (time_ms, broker, client, rel_seq, attempt, kind) per retransmit
        #: — the backoff-determinism property tests compare this log across
        #: drivers; "kind" is "timeout" or "nack"
        self.retry_log: list[tuple[float, int, int, int, int, str]] = []
        #: retransmit timers that fired while their owning broker was down
        #: (a stale-generation fire). The crash path cancels every such
        #: timer via :meth:`on_broker_crash` / :meth:`on_overlay_repair`,
        #: so this counter must stay 0 — pinned by a regression test and
        #: by the fuzzer's crash x reliability invariant rows.
        self.stale_timer_fires = 0

    # ------------------------------------------------------------------
    # broker-side transmit path
    # ------------------------------------------------------------------
    def send(self, broker_id: int, client_id: int, event: Notification) -> None:
        """Send one event reliably on the (broker, client) link."""
        key = (broker_id, client_id)
        breaker = self._breakers.get(key)
        now = self.system.clock.now
        if breaker is not None and not breaker.allows(now):
            # open breaker: shed immediately — an explicit, reconciled
            # write-off instead of an unbounded futile retransmit queue
            self.system.metrics.traffic.account_shed("breaker", client_id)
            self.system.metrics.delivery.mark_shed(client_id, event)
            return
        link = self._links.get(key)
        if link is None:
            link = _LinkTx(broker_id, client_id, self._next_session)
            self._next_session += 1
            self._links[key] = link
            self._links_by_client.setdefault(client_id, {})[broker_id] = link
        msg = m.ReliableDeliver(
            client_id, event, broker_id, link.session, link.next_seq
        )
        link.next_seq += 1
        was_empty = not link.unacked
        link.unacked[msg.rel_seq] = msg
        if breaker is not None and breaker.state == "half_open":
            breaker.on_probe_sent()
            link.probe = True
        self.system.net.send_client(client_id, msg)
        if was_empty:
            link.attempts = 0
            self._arm_timer(link)

    def is_tracked(self, msg: object) -> bool:
        """Is ``msg`` a reliable delivery the layer will still retry?

        The fault injector's drop hook uses this to decide between a
        recoverable-drop mark (retry pending) and an explicit loss.
        """
        if type(msg) is not m.ReliableDeliver:
            return False
        link = self._links.get((msg.origin, msg.client))
        return (
            link is not None
            and link.session == msg.session
            and msg.rel_seq in link.unacked
        )

    # -- retransmission timer -------------------------------------------
    def _arm_timer(self, link: _LinkTx) -> None:
        link.timer_epoch += 1
        backoff = min(
            # exponent clamp: durable links retry past the nominal budget,
            # and 2.0**n overflows long before the min() would discard it
            self.rto_max_ms, self.rto_base_ms * (2.0 ** min(link.attempts, 32))
        )
        # seeded jitter (+/-20%) de-synchronises links that timed out in
        # the same instant, deterministically
        backoff *= 0.8 + 0.4 * float(self._rng.random())
        # allow for the serial channel's queueing delay: a 60-message
        # backlog drain takes 1.2 s of air time before the ack can even be
        # generated — without this allowance every drain would look like a
        # timeout and retransmit-storm itself
        net = self.system.net
        allowance = (
            (net.downlink_backlog(link.client) + 2) * net.wireless_latency
            + self.ack_delay_ms
        )
        self.system.clock.call_later(
            backoff + allowance, self._on_timeout, link, link.timer_epoch
        )

    def _on_timeout(self, link: _LinkTx, epoch: int) -> None:
        if epoch != link.timer_epoch or not link.unacked:
            return  # cancelled (ack progress / reclaim) or fully acked
        rec = self.system.recovery
        if rec is not None and rec.is_down(link.broker):
            # the owning broker died; the crash path reclaims and marks
            # this window — retries must never fight the coordinator.
            # on_broker_crash cancels these timers at crash time, so this
            # branch is a belt-and-braces guard that must never fire.
            self.stale_timer_fires += 1
            return
        if link.attempts >= self.retry_budget:
            if self.system.durability is None:
                self._exhaust(link)
                return
            # durable runs never write a window off against a live broker:
            # the frames are WAL-covered, so keep retrying at the capped
            # backoff until the client acks or the repair round re-homes
            # the session (dead brokers are swept by on_broker_crash)
        link.attempts += 1
        seq, msg = next(iter(link.unacked.items()))
        self.retry_log.append(
            (self.system.clock.now, link.broker, link.client, seq,
             link.attempts, "timeout")
        )
        self.system.metrics.traffic.account_retransmit(
            link.client, "timeout"
        )
        self.system.net.send_client(link.client, msg)
        self._arm_timer(link)

    def _exhaust(self, link: _LinkTx) -> None:
        """Retry budget ran dry: write the window off and consult the breaker."""
        now = self.system.clock.now
        metrics = self.system.metrics
        breaker = self._breakers.get((link.broker, link.client))
        if breaker is None:
            breaker = CircuitBreaker(
                self._breaker_threshold, self._breaker_cooloff_ms
            )
            self._breakers[(link.broker, link.client)] = breaker
        for msg in link.unacked.values():
            metrics.traffic.account_shed("retry_exhausted", link.client)
            metrics.delivery.mark_shed(link.client, msg.event)
        if breaker.on_exhaust(now):
            metrics.traffic.account_breaker_trip(link.broker, link.client)
        self._retire(link)

    # -- crash/repair integration ---------------------------------------
    def on_broker_crash(self, broker_id: int) -> None:
        """Sweep transmit state owned by a broker that just died.

        Every link whose sending side was ``broker_id`` is retired — the
        epoch bump cancels any pending retransmission timer, so a timer
        armed mid-backoff can never fire into the post-repair generation
        — and its unacked window is marked crash-exposed so the ledger
        reconciles however recovery resolves each frame. Called by the
        coordinator at crash time and again (idempotently) during the
        repair round for brokers declared permanently dead.
        """
        checker = self.system.metrics.delivery
        for key in sorted(self._links):
            if key[0] != broker_id:
                continue
            link = self._links.get(key)
            if link is None:
                continue
            for pending in link.unacked.values():
                checker.mark_crash_risk(link.client, pending.event)
            self._retire(link)

    def on_overlay_repair(self, down: "set[int]") -> None:
        """Repair-round sweep: no reliability state may outlive a corpse.

        Retires any straggler links targeting down brokers (cancelling
        their timers) and discards circuit-breaker state keyed to them —
        a restarted broker is a fresh process, and a dead one will never
        serve another send, so either way the old breaker verdict is
        stale.
        """
        for bid in sorted(down):
            self.on_broker_crash(bid)
        for key in sorted(k for k in self._breakers if k[0] in down):
            del self._breakers[key]

    # -- acks ------------------------------------------------------------
    def on_ack(self, broker_id: int, msg: m.AckMessage) -> None:
        """Broker dispatch hook for client acks."""
        link = self._links.get((broker_id, msg.client))
        if link is None or link.session != msg.session:
            return  # stale session: the window was reclaimed or rebuilt
        progress = False
        dur = self.system.durability
        while link.unacked:
            seq = next(iter(link.unacked))
            if seq > msg.cum_ack:
                break
            acked = link.unacked.pop(seq)
            link.nack_retx.discard(seq)
            if dur is not None:
                # the cumulative ack is the durable delivery cursor:
                # log the settlement so checkpointing can compact it away
                dur.on_settled(broker_id, msg.client, acked.event)
            progress = True
        if progress:
            link.attempts = 0
            breaker = self._breakers.get((broker_id, msg.client))
            if breaker is not None:
                breaker.on_progress()
            link.probe = False
        for seq in msg.nacks:
            nmsg = link.unacked.get(seq)
            if nmsg is None or seq in link.nack_retx:
                continue  # unknown or already fast-retransmitted once
            link.nack_retx.add(seq)
            self.retry_log.append(
                (self.system.clock.now, link.broker, link.client, seq,
                 link.attempts, "nack")
            )
            self.system.metrics.traffic.account_retransmit(
                link.client, "nack"
            )
            self.system.net.send_client(link.client, nmsg)
        if link.unacked:
            if progress:
                self._arm_timer(link)  # restart the clock for the new head
        else:
            link.timer_epoch += 1  # cancel: nothing left to guard

    # ------------------------------------------------------------------
    # client-side receive path
    # ------------------------------------------------------------------
    def on_deliver(self, client: "Client", msg: m.ReliableDeliver) -> None:
        key = (msg.client, msg.origin)
        st = self._rx.get(key)
        if st is None or msg.session > st.session:
            # a new session supersedes the old one; buffered stragglers of
            # the old session are discarded — they were unacked at reclaim
            # time, so the protocol redelivers them under the new session
            st = _RxState(msg.session)
            self._rx[key] = st
        elif msg.session < st.session:
            # unreachable over one serial FIFO channel (sessions arrive
            # monotonically); discard defensively — an unacked straggler
            # is redelivered by the protocol, an acked one was already
            # handed to the application
            return
        if msg.rel_seq < st.expected:
            # retransmit of an already-handed-off event (lost ack): count
            # the duplicate and re-ack so the broker stops
            client._deliver_event(msg.event)
            self._schedule_ack(client, msg.origin, st)
            return
        if msg.rel_seq == st.expected:
            client._deliver_event(msg.event)
            st.expected += 1
            while st.expected in st.buffer:
                client._deliver_event(st.buffer.pop(st.expected))
                st.expected += 1
        else:
            st.buffer[msg.rel_seq] = msg.event
        self._schedule_ack(client, msg.origin, st)

    def _schedule_ack(
        self, client: "Client", origin: int, st: _RxState
    ) -> None:
        # only an attached client can transmit (station association); a
        # detached client's window is reclaimed broker-side anyway
        if not (client.connected and client.current_broker == origin):
            return
        if st.ack_pending:
            return
        st.ack_pending = True
        self.system.clock.call_later_fifo(
            self.ack_delay_ms, self._fire_ack, client, origin, st
        )

    def _fire_ack(self, client: "Client", origin: int, st: _RxState) -> None:
        st.ack_pending = False
        if self._rx.get((client.id, origin)) is not st:
            return  # session superseded while the ack was coalescing
        if not (client.connected and client.current_broker == origin):
            return
        nacks: tuple[int, ...] = ()
        if st.buffer:
            top = max(st.buffer)
            nacks = tuple(
                s for s in range(st.expected, top) if s not in st.buffer
            )
        self.system.net.send_uplink(
            client.id, origin,
            m.AckMessage(client.id, origin, st.session, st.expected - 1, nacks),
        )

    # ------------------------------------------------------------------
    # detach / reclaim composition
    # ------------------------------------------------------------------
    def reclaim_link(
        self, client_id: int, queued: list, in_service: object
    ) -> list:
        """Fold the client's unacked windows into a downlink reclaim.

        Called by :meth:`LinkLayer.cancel_downlink_pending`: ``queued`` is
        the raw channel queue (whose reliable entries are the same objects
        as the unacked window's). Returns the full undelivered backlog in
        send order — transmitted-and-dropped messages included, which is
        exactly what makes protocol requeue-and-redeliver recover losses.
        The in-service message is returned too: it will complete on the
        air, but a gap below it would make the client hold it back, so the
        protocol must own a copy (the client dedups the overlap).
        """
        links = self._links_by_client.pop(client_id, None)
        if not links:
            return queued
        out: list = []
        seen: set[int] = set()
        for bid in sorted(links):
            link = links[bid]
            for msg in link.unacked.values():
                if id(msg) not in seen:
                    seen.add(id(msg))
                    out.append(msg)
            self._retire(link, drop_index=False)
        for msg in queued:
            if id(msg) not in seen:  # untracked payloads pass through
                seen.add(id(msg))
                out.append(msg)
        return out

    def on_client_detach(self, client_id: int) -> None:
        """Safety net for protocol paths that skip the downlink reclaim.

        Any link state left after the protocol's disconnect handling is
        requeued directly onto the raw channel (no fate draw — these
        frames were already sent once), preserving send order, so the
        backlog drains to the client exactly as unreclaimed plain
        deliveries always have. Clears all timers either way.
        """
        links = self._links_by_client.get(client_id)
        if not links:
            return
        leftovers = self.system.net.requeue_downlink_unacked(client_id)
        for msg in leftovers:
            self.system.metrics.traffic.account_retransmit(
                client_id, "requeue"
            )

    def _retire(self, link: _LinkTx, drop_index: bool = True) -> None:
        link.timer_epoch += 1
        link.unacked.clear()
        breaker = self._breakers.get((link.broker, link.client))
        if breaker is not None and link.probe:
            breaker.on_link_retired()
        link.probe = False
        if drop_index:
            self._links.pop((link.broker, link.client), None)
            per_client = self._links_by_client.get(link.client)
            if per_client is not None:
                per_client.pop(link.broker, None)
                if not per_client:
                    del self._links_by_client[link.client]
        else:
            self._links.pop((link.broker, link.client), None)

    # exposed for the link layer's requeue helper
    def retire_link(self, link: _LinkTx) -> None:
        """Retire one link whose per-client index entry was already popped
        (the link layer's detach safety net)."""
        self._retire(link, drop_index=False)

    def pop_links_for_client(self, client_id: int) -> list[_LinkTx]:
        links = self._links_by_client.pop(client_id, None)
        if not links:
            return []
        out = []
        for bid in sorted(links):
            out.append(links[bid])
        return out

    def breaker_for(self, broker_id: int, client_id: int) -> CircuitBreaker:
        """The (created-on-demand) breaker of one link — test/diagnostic."""
        key = (broker_id, client_id)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self._breaker_threshold, self._breaker_cooloff_ms
            )
            self._breakers[key] = breaker
        return breaker
