"""Event broker: reverse-path-forwarding router + subscription propagation.

A broker owns a :class:`~repro.pubsub.filter_table.FilterTable`, a registry
of persistent/temporary queues (managed by the mobility protocol), and a
per-client protocol scratchpad (``pstate``). All mobility behaviour is
delegated to the system's :class:`~repro.mobility.base.MobilityProtocol`;
the broker implements only what every content-based pub/sub broker does:

* **event routing** — match an incoming event against the filter table,
  forward to interested neighbours (never back where it came from), hand
  matches for local clients to the protocol;
* **subscription propagation** — flood subscribe/unsubscribe through the
  tree, optionally pruned by the covering relation (SIENA-style), keeping
  the per-neighbour advertisement mirror consistent;
* **direct table surgery** for MHH's subscription migration (which edits
  routing state hop-by-hop *without* triggering propagation).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, TYPE_CHECKING

from repro.errors import ProtocolError
from repro.pubsub.events import Notification
from repro.pubsub.filter_table import ClientEntry, FilterTable
from repro.pubsub.filters import Filter
from repro.pubsub import messages as m
from repro.util.ids import QueueRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobility.queues import PersistentQueue
    from repro.pubsub.system import PubSubSystem

__all__ = ["Broker"]


class Broker:
    """One event broker (base station) in the overlay."""

    def __init__(self, system: "PubSubSystem", broker_id: int) -> None:
        self.system = system
        self.id = broker_id
        #: sans-IO transport facade (send_broker / send_client / unicast);
        #: the broker never touches a scheduler or a link model directly
        self.net = system.net
        self.tree = system.tree
        self.table = FilterTable(
            broker_id,
            system.tree.neighbors(broker_id),
            engine=system.matching_engine,
            covering_index=system.covering_index,
        )
        # queues hosted here, keyed by broker-local queue id
        self.queues: dict[int, "PersistentQueue"] = {}
        # per-client protocol scratchpad (owned by the mobility protocol)
        self.pstate: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def receive(self, msg: m.Message, frm: int) -> None:
        """Entry point for all messages addressed to this broker.

        ``frm`` is the sending broker id for wired messages, or
        ``-1 - client_id`` for client uplink messages.

        Dispatch is a precomputed per-message-type handler table (built
        once at class-definition time) rather than an ``isinstance``
        ladder: one dict probe on the hot path, and new core message
        types extend the table instead of growing a chain of branches.
        Unlisted types fall through to the mobility protocol's control
        dispatch, exactly as before.
        """
        handler = self._CORE_DISPATCH.get(type(msg))
        if handler is not None:
            handler(self, msg, frm)
        else:
            self.system.protocol.on_control(self, msg, frm)

    def receive_batch(self, items: list[tuple[m.Message, int]]) -> None:
        """Batched entry point for same-instant wired arrivals.

        Called by the link layer's event-batching path with ``(msg, frm)``
        pairs in firing order. Consecutive runs of
        :class:`~repro.pubsub.messages.EventMessage` resolve through
        :meth:`route_event_batch` (one matching pass for the run); anything
        else falls back to :meth:`receive` per message, preserving the
        exact per-message dispatch order.
        """
        i = 0
        n = len(items)
        while i < n:
            msg, frm = items[i]
            if type(msg) is m.EventMessage:
                j = i + 1
                while j < n and type(items[j][0]) is m.EventMessage:
                    j += 1
                self.route_event_batch(
                    [(pair[0].event, pair[1]) for pair in items[i:j]]
                )
                i = j
            else:
                self.receive(msg, frm)
                i += 1

    def _rx_event(self, msg: m.EventMessage, frm: int) -> None:
        self.route_event(msg.event, from_broker=frm)

    def _rx_publish(self, msg: m.PublishMessage, frm: int) -> None:
        self.system.tracer.emit(
            "publish", broker=self.id, event=msg.event.event_id
        )
        dur = self.system.durability
        if dur is not None:
            # append-before-route: once the ingress broker accepts the
            # publish, the event is recoverable from its WAL no matter
            # which broker in the dissemination tree dies next
            dur.on_publish(self.id, msg.event)
        self.route_event(msg.event, from_broker=None)

    def _rx_connect(self, msg: m.ConnectMessage, frm: int) -> None:
        self.system.protocol.on_connect(
            self, msg.client, msg.last_broker, msg.epoch
        )

    def _rx_ack(self, msg: m.AckMessage, frm: int) -> None:
        # a client only generates acks for reliable deliveries, so the
        # manager is always present when one arrives
        self.system.reliability.on_ack(self.id, msg)

    def _rx_session_transfer(self, msg: "m.SessionTransfer", frm: int) -> None:
        # synthesized by the repair round in durable runs only
        self.system.durability.on_session_transfer(self, msg)

    # ------------------------------------------------------------------
    # event routing (hot path)
    # ------------------------------------------------------------------
    def route_event(
        self, event: Notification, from_broker: Optional[int]
    ) -> None:
        """Reverse path forwarding step for one event at this broker.

        One :meth:`FilterTable.match` call resolves the forwarding set and
        the local recipients together (a single counting pass over every
        registered filter when the counting engine is active). The fan-out
        shares one immutable :class:`~repro.pubsub.messages.EventMessage`
        across all neighbours and rides the link layer's non-cancellable
        lane fast path, so forwarding an event costs zero heap operations
        and a single allocation regardless of fan-out degree.
        """
        nbrs, entries = self.table.match(event, from_broker)
        if nbrs:
            fwd = m.EventMessage(event)
            net = self.net
            bid = self.id
            for nbr in nbrs:
                net.send_broker(bid, nbr, fwd)
        protocol = self.system.protocol
        for entry in entries:
            protocol.on_event_for_client(self, entry, event, from_broker)

    def route_event_batch(
        self, items: list[tuple[Notification, Optional[int]]]
    ) -> None:
        """Reverse path forwarding for a batch of same-instant events.

        Matching resolves the whole batch in one
        :meth:`FilterTable.match_batch` pass; the fan-out then runs in
        event order, drawing scheduler seqs exactly as the per-event loop
        would. Matching has no protocol-visible side effects and no
        ``on_event_for_client`` implementation mutates routing state, so
        hoisting the matches above the fan-out preserves trace identity
        with :meth:`route_event` (held to byte identity by the fuzzer's
        batching lane).
        """
        if len(items) == 1:
            self.route_event(items[0][0], items[0][1])
            return
        results = self.table.match_batch(items)
        net = self.net
        bid = self.id
        on_event = self.system.protocol.on_event_for_client
        for (event, from_broker), (nbrs, entries) in zip(items, results):
            if nbrs:
                fwd = m.EventMessage(event)
                for nbr in nbrs:
                    net.send_broker(bid, nbr, fwd)
            for entry in entries:
                on_event(self, entry, event, from_broker)

    def deliver_to_client(self, client: int, event: Notification) -> None:
        """Queue one event on the client's wireless downlink.

        This is the single funnel every protocol's final delivery goes
        through; with the reliability layer enabled it sequences the
        message and arms the retransmission machinery instead.
        """
        dur = self.system.durability
        if dur is not None:
            # append-before-send: the frame is durable before it is queued
            dur.on_deliver(self.id, client, event)
        rel = self.system.reliability
        if rel is not None:
            rel.send(self.id, client, event)
            return
        self.net.send_client(client, m.DeliverMessage(client, event))

    # ------------------------------------------------------------------
    # subscription propagation
    # ------------------------------------------------------------------
    def local_subscribe(
        self,
        client: int,
        key: Hashable,
        f: Filter,
        category: str,
        live: bool,
        sink: Optional[int] = None,
    ) -> ClientEntry:
        """Install a local client subscription and propagate it."""
        entry = ClientEntry(client, key, f, live=live, sink=sink)
        self.table.set_client_entry(entry)
        for nbr in self.table.neighbors:
            self._advertise(nbr, key, f, category)
        return entry

    def local_unsubscribe(self, client: int, category: str) -> None:
        """Remove a local client subscription and propagate the withdrawal."""
        entry = self.table.require_client_entry(client)
        self.local_unsubscribe_key(entry.key, category)

    def local_unsubscribe_key(self, key: Hashable, category: str) -> None:
        """Key-addressed variant (needed when a client roots several
        subscription epochs at the same broker — sub-unsub baseline)."""
        self.table.remove_entry_by_key(key)
        for nbr in self.table.neighbors:
            self._withdraw(nbr, key, category)

    def _handle_subscribe(self, msg: m.SubscribeMessage, frm: int) -> None:
        self.table.add_broker_filter(frm, msg.key, msg.filter)
        for nbr in self.table.neighbors:
            if nbr != frm:
                self._advertise(nbr, msg.key, msg.filter, msg.category)

    def _handle_unsubscribe(self, msg: m.UnsubscribeMessage, frm: int) -> None:
        if not self.table.remove_broker_filter(frm, msg.key):
            # The covering-pruned flood can legitimately deliver an unsub for
            # a key this broker never saw advertised; ignore it.
            return
        for nbr in self.table.neighbors:
            if nbr != frm:
                self._withdraw(nbr, msg.key, msg.category)

    #: message type -> handler(self, msg, frm); precomputed so `receive`
    #: costs one dict probe per message instead of an isinstance ladder
    _CORE_DISPATCH = {
        m.EventMessage: _rx_event,
        m.PublishMessage: _rx_publish,
        m.SubscribeMessage: _handle_subscribe,
        m.UnsubscribeMessage: _handle_unsubscribe,
        m.ConnectMessage: _rx_connect,
        m.AckMessage: _rx_ack,
        m.SessionTransfer: _rx_session_transfer,
    }

    def _advertise(self, nbr: int, key: Hashable, f: Filter, category: str) -> None:
        """Send ``sub(key, f)`` to ``nbr`` unless covering prunes it."""
        if self.system.covering_enabled and self.table.advertised_covers(nbr, f):
            return
        if self.table.advertised_has(nbr, key):
            return
        self.table.advertised_add(nbr, key, f)
        self.net.send_broker(
            self.id, nbr, m.SubscribeMessage(key, f, category)
        )

    def _withdraw(self, nbr: int, key: Hashable, category: str) -> None:
        """Withdraw ``key`` from ``nbr`` and re-advertise uncovered filters.

        Re-advertisements are sent *before* the unsubscribe so the
        neighbour's table never has a window with neither filter installed.

        With the covering index (the default) the candidate search asks the
        table for exactly the entries the withdrawn filter covers
        (:meth:`FilterTable.covered_candidates`) — anything else provably
        kept whatever cover it already had — instead of walking every client
        entry and every other neighbour's filters per withdrawal. Both paths
        visit candidates in the same order, so they emit identical
        re-advertisements.
        """
        table = self.table
        if not table.advertised_count(nbr):
            return  # nothing ever advertised to this neighbour
        if not table.advertised_has(nbr, key):
            return
        resubs: list[tuple[Hashable, Filter]] = []
        if self.system.covering_enabled:
            withdrawn = (
                table.advertised_get(nbr, key) if table.covering_index else None
            )
            table.advertised_remove(nbr, key)
            if withdrawn is not None:
                candidates = table.covered_candidates(nbr, withdrawn)
            else:
                candidates = self._table_filters_excluding(nbr)
            # candidate filters that may have been suppressed by `key`
            for cand_key, cand_f in candidates:
                if cand_key == key:
                    continue
                if table.advertised_has(nbr, cand_key):
                    continue
                if not table.advertised_covers(nbr, cand_f):
                    table.advertised_add(nbr, cand_key, cand_f)
                    resubs.append((cand_key, cand_f))
        else:
            table.advertised_remove(nbr, key)
        for cand_key, cand_f in resubs:
            self.net.send_broker(
                self.id, nbr, m.SubscribeMessage(cand_key, cand_f, category)
            )
        self.net.send_broker(
            self.id, nbr, m.UnsubscribeMessage(key, category)
        )

    def _table_filters_excluding(self, nbr: int):
        """All (key, filter) pairs visible from peers other than ``nbr``.

        Fallback candidate scan when the covering index is disabled — fully
        lazy: no key-list materialization, no per-key lookups, entries are
        yielded straight off the table's internal order.
        """
        for entry in self.table.clients.values():
            yield (entry.key, entry.filter)
        for other in self.table.neighbors:
            if other == nbr:
                continue
            yield from self.table.iter_broker_filters(other)

    # ------------------------------------------------------------------
    # direct table surgery (MHH subscription migration)
    # ------------------------------------------------------------------
    def migration_install_toward(self, nbr: int, key: Hashable, f: Filter) -> None:
        """Step 1 of §4.1: mark neighbour ``nbr`` as interested in ``key``."""
        self.table.add_broker_filter(nbr, key, f)

    def migration_remove_from(self, nbr: int, key: Hashable) -> None:
        """Step 2 of §4.1: the client is no longer behind ``nbr``."""
        if not self.table.remove_broker_filter(nbr, key):
            raise ProtocolError(
                f"broker {self.id}: migration expected filter {key!r} from "
                f"neighbour {nbr} (covering must be disabled for MHH runs)"
            )

    def migration_mirror_sent(self, nbr: int, key: Hashable) -> None:
        """The neighbour will delete our advertisement when it processes the
        sub_migration; drop the mirror entry now (send time)."""
        self.table.advertised_remove(nbr, key)

    def migration_mirror_received(self, nbr: int, key: Hashable, f: Filter) -> None:
        """We installed ``(nbr <- key)`` on their behalf; record that we are
        now (logically) advertising ``key`` to ``nbr``'s predecessor side."""
        self.table.advertised_add(nbr, key, f)

    # ------------------------------------------------------------------
    # queue helpers
    # ------------------------------------------------------------------
    def new_queue(self, client: int) -> "PersistentQueue":
        from repro.mobility.queues import PersistentQueue

        qid = self.system.ids.next(f"queue/{self.id}")
        q = PersistentQueue(QueueRef(self.id, qid), client)
        self.queues[qid] = q
        return q

    def get_queue(self, ref: QueueRef) -> "PersistentQueue":
        if ref.broker != self.id:
            raise ProtocolError(
                f"broker {self.id} asked for remote queue {ref}"
            )
        q = self.queues.get(ref.qid)
        if q is None:
            raise ProtocolError(f"broker {self.id}: unknown queue {ref}")
        return q

    def drop_queue(self, ref: QueueRef) -> None:
        if self.queues.pop(ref.qid, None) is None:
            raise ProtocolError(f"broker {self.id}: dropping unknown queue {ref}")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Broker {self.id} clients={len(self.table.clients)}>"
