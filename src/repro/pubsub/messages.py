"""Wire message types and traffic accounting categories.

Every message carries a ``category`` consumed by the traffic meter; the
paper's "message overhead per handoff" metric sums the wired hops of the
categories in :data:`OVERHEAD_CATEGORIES` (see DESIGN.md §5 for the
accounting rationale).

Message classes are deliberately small ``__slots__`` records; protocol
handlers dispatch on type.
"""

from __future__ import annotations

from typing import Optional

from repro.pubsub.events import Notification
from repro.pubsub.filters import Filter
from repro.util.ids import QueueRef

__all__ = [
    "CAT_EVENT",
    "CAT_SUB_INITIAL",
    "CAT_SUB_HANDOFF",
    "CAT_MOBILITY_CTRL",
    "CAT_MIGRATION",
    "CAT_HB_FORWARD",
    "CAT_RELIABILITY",
    "OVERHEAD_CATEGORIES",
    "Message",
    "EventMessage",
    "SubscribeMessage",
    "UnsubscribeMessage",
    "PublishMessage",
    "ConnectMessage",
    "DeliverMessage",
    "ReliableDeliver",
    "AckMessage",
    "SessionTransfer",
    "HandoffRequest",
    "SubMigration",
    "SubMigrationAck",
    "DeliverTQ",
    "MigrateBatch",
    "FetchQueue",
    "QueueStreamed",
    "StreamDone",
    "StopEventMigration",
    "TransferRequest",
    "TransferBatch",
    "TransferDone",
    "Register",
    "Deregister",
    "ForwardedEvent",
    "ForwardedBatch",
]

# ---------------------------------------------------------------------------
# traffic categories
# ---------------------------------------------------------------------------
CAT_EVENT = "event"                  # normal dissemination + final delivery
CAT_SUB_INITIAL = "sub_initial"      # subscription propagation at system setup
CAT_SUB_HANDOFF = "sub_handoff"      # sub/unsub floods triggered by handoffs
CAT_MOBILITY_CTRL = "mobility_ctrl"  # handoff control messages
CAT_MIGRATION = "event_migration"    # queue transfers between brokers
CAT_HB_FORWARD = "hb_forward"        # home->foreign live event forwarding
CAT_RELIABILITY = "reliability"      # end-to-end ACK/NACK traffic (uplink)

#: Categories whose wired hops count toward "message overhead per handoff".
#: CAT_RELIABILITY is included for principle, but acks only ever travel the
#: wireless uplink, so they contribute no wired hops in practice.
OVERHEAD_CATEGORIES = frozenset(
    {CAT_SUB_HANDOFF, CAT_MOBILITY_CTRL, CAT_MIGRATION, CAT_HB_FORWARD,
     CAT_RELIABILITY}
)


def _norm(value):
    """Comparison key for a message field.

    :class:`Notification` compares by identity (the kernel tracks in-flight
    events by object), so message equality flattens notifications — and any
    container holding them — to value tuples.
    """
    if isinstance(value, Notification):
        attrs = tuple(sorted(value.attrs.items())) if value.attrs else None
        return (
            "note", value.event_id, value.publisher, value.seq,
            value.publish_time, value.topic, attrs,
        )
    if isinstance(value, (tuple, list)):
        return (type(value).__name__, tuple(_norm(v) for v in value))
    if isinstance(value, frozenset):
        return ("frozenset", frozenset(_norm(v) for v in value))
    if isinstance(value, dict):
        return ("dict", tuple(sorted((k, _norm(v)) for k, v in value.items())))
    if isinstance(value, Message):
        return (type(value).__name__, tuple(_norm(v) for _, v in value.wire_fields()))
    return value


class Message:
    """Base wire message. Subclasses set ``category``.

    Messages compare **structurally** (same type, same field values — the
    wire codec's round-trip contract is ``decode(encode(msg)) == msg``) but
    keep **identity hashing**: several field types are unhashable (event
    lists), and the link layer tracks in-flight frames by ``id()``, so a
    value hash would buy nothing and cost a field walk per probe. No kernel
    data structure keys messages by value (they are tracked by identity or
    not at all), so the eq/hash split is safe here.
    """

    __slots__ = ()
    category: str = CAT_MOBILITY_CTRL

    def wire_fields(self) -> tuple:
        """``(name, value)`` pairs over every slot, base classes first."""
        out = []
        for klass in reversed(type(self).__mro__):
            for name in getattr(klass, "__slots__", ()):
                out.append((name, getattr(self, name)))
        return tuple(out)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        ours = self.wire_fields()
        theirs = other.wire_fields()
        return [_norm(v) for _, v in ours] == [_norm(v) for _, v in theirs]

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.wire_fields())
        return f"{type(self).__name__}({fields})"


# ---------------------------------------------------------------------------
# pub/sub core messages
# ---------------------------------------------------------------------------
class EventMessage(Message):
    """One event travelling one overlay-tree hop (reverse path forwarding)."""

    __slots__ = ("event",)
    category = CAT_EVENT

    def __init__(self, event: Notification) -> None:
        self.event = event


class SubscribeMessage(Message):
    """Subscription propagation: neighbour advertises interest ``key: filter``."""

    __slots__ = ("key", "filter", "category")

    def __init__(self, key, filter: Filter, category: str = CAT_SUB_INITIAL) -> None:
        self.key = key
        self.filter = filter
        self.category = category


class UnsubscribeMessage(Message):
    """Withdraw a previously advertised subscription key."""

    __slots__ = ("key", "category")

    def __init__(self, key, category: str = CAT_SUB_HANDOFF) -> None:
        self.key = key
        self.category = category


class PublishMessage(Message):
    """Client uplink: publish one event at the current broker."""

    __slots__ = ("event",)
    category = CAT_EVENT

    def __init__(self, event: Notification) -> None:
        self.event = event


class ConnectMessage(Message):
    """Client uplink: (re)connect at a broker.

    ``last_broker`` is None on the very first attach; on silent-move
    reconnects it names the broker the client last visited (the client is
    required to remember it — paper §4.2). ``epoch`` is the client's
    monotone connect counter; handoff requests it triggers inherit the
    stamp so stale ones can be recognised.
    """

    __slots__ = ("client", "filter", "last_broker", "epoch")
    category = CAT_MOBILITY_CTRL

    def __init__(
        self,
        client: int,
        filter: Optional[Filter],
        last_broker,
        epoch: int = 0,
    ) -> None:
        self.client = client
        self.filter = filter
        self.last_broker = last_broker
        self.epoch = epoch


class DeliverMessage(Message):
    """Broker downlink: hand one event to the client."""

    __slots__ = ("client", "event")
    category = CAT_EVENT

    def __init__(self, client: int, event: Notification) -> None:
        self.client = client
        self.event = event


class ReliableDeliver(DeliverMessage):
    """Sequence-numbered downlink delivery (reliability layer).

    A :class:`DeliverMessage` subclass so every protocol reclaim path that
    filters on ``isinstance(p, DeliverMessage)`` picks reliable deliveries
    up unchanged. ``origin`` names the sending broker (the client addresses
    its cumulative ack there); ``session`` scopes ``rel_seq`` to one
    broker-side transmit epoch — sessions are monotone per (broker, client)
    link, so a receiver can tell a live stream from pre-detach stragglers.
    """

    __slots__ = ("origin", "session", "rel_seq")

    def __init__(
        self, client: int, event: Notification,
        origin: int, session: int, rel_seq: int,
    ) -> None:
        super().__init__(client, event)
        self.origin = origin
        self.session = session
        self.rel_seq = rel_seq


class AckMessage(Message):
    """Client uplink: cumulative ack + NACK gap list for one session.

    ``cum_ack`` is the highest rel_seq delivered *in order* (-1 if none);
    ``nacks`` names the gaps below the highest buffered out-of-order
    sequence, so the broker can fast-retransmit without waiting for the
    retransmission timer.
    """

    __slots__ = ("client", "origin", "session", "cum_ack", "nacks")
    category = CAT_RELIABILITY

    def __init__(
        self, client: int, origin: int, session: int,
        cum_ack: int, nacks: tuple[int, ...] = (),
    ) -> None:
        self.client = client
        self.origin = origin
        self.session = session
        self.cum_ack = cum_ack
        self.nacks = nacks


# ---------------------------------------------------------------------------
# MHH protocol messages (paper §4)
# ---------------------------------------------------------------------------
class HandoffRequest(Message):
    """New broker -> old broker: begin the handoff (silent move, §4.2).

    ``epoch`` is the connect epoch of the reconnect that issued the
    request. A broker that has witnessed a higher epoch for the client
    (a newer reconnect or a newer request) drops the request as
    superseded — the client has moved on and a newer request aims at its
    latest location.
    """

    __slots__ = ("client", "new_broker", "epoch")
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int, new_broker: int, epoch: int = 0) -> None:
        self.client = client
        self.new_broker = new_broker
        self.epoch = epoch


class SubMigration(Message):
    """Hop-by-hop subscription migration (§4.1).

    Carries the client id, its filter (under its routing ``key``), the
    destination broker, and the client's PQlist metadata (ordered queue
    references — the distributed linked list of §4.3; the vector-of-refs
    representation is an equivalent simplification, see DESIGN.md).
    ``epoch`` propagates the connect epoch of the handoff request being
    served, so the new anchor inherits the staleness horizon.
    """

    __slots__ = ("client", "key", "filter", "dest", "pqlist", "epoch")
    category = CAT_MOBILITY_CTRL

    def __init__(
        self,
        client: int,
        key,
        filter: Filter,
        dest: int,
        pqlist: tuple[QueueRef, ...],
        epoch: int = 0,
    ) -> None:
        self.client = client
        self.key = key
        self.filter = filter
        self.dest = dest
        self.pqlist = pqlist
        self.epoch = epoch


class SubMigrationAck(Message):
    """Backward ack; pushes in-transit events ahead of it on the FIFO link."""

    __slots__ = ("client",)
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int) -> None:
        self.client = client


class DeliverTQ(Message):
    """Token walking the migration path asking each broker to drain its TQ.

    ``target`` is where TQ events should be streamed (the new broker during
    a normal migration; the old anchor after a stop — §4.3). ``append_to``
    optionally names the queue at the target that should absorb them. After
    a stop, ``remaining`` carries the refs of the queues that were never
    streamed so the destination can relink the PQlist.
    """

    __slots__ = ("client", "dest", "target", "append_to", "remaining")
    category = CAT_MOBILITY_CTRL

    def __init__(
        self,
        client: int,
        dest: int,
        target: int,
        append_to: Optional[QueueRef] = None,
        remaining: tuple[QueueRef, ...] = (),
    ) -> None:
        self.client = client
        self.dest = dest
        self.target = target
        self.append_to = append_to
        self.remaining = remaining


class MigrateBatch(Message):
    """A batch of events of a migrating queue, unicast to the target.

    Queue migration ships events in batches (``migration_batch_size`` per
    message) — the paper transfers stored queues in bulk, and per-event
    messaging would misstate the "hops travelled" overhead metric by the
    batch factor.
    """

    __slots__ = ("client", "events", "append_to")
    category = CAT_MIGRATION

    def __init__(
        self,
        client: int,
        events: list[Notification],
        append_to: Optional[QueueRef],
    ) -> None:
        self.client = client
        self.events = events
        self.append_to = append_to


class FetchQueue(Message):
    """Migration coordinator -> queue holder: stream queue ``ref`` to ``dest``."""

    __slots__ = ("client", "ref", "dest", "append_to")
    category = CAT_MOBILITY_CTRL

    def __init__(
        self, client: int, ref: QueueRef, dest: int, append_to: Optional[QueueRef]
    ) -> None:
        self.client = client
        self.ref = ref
        self.dest = dest
        self.append_to = append_to


class QueueStreamed(Message):
    """Queue holder -> coordinator: queue ``ref`` fully streamed (and deleted)."""

    __slots__ = ("client", "ref")
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int, ref: QueueRef) -> None:
        self.client = client
        self.ref = ref


class StreamDone(Message):
    """Coordinator -> destination: the whole PQlist has been streamed."""

    __slots__ = ("client",)
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int) -> None:
        self.client = client


class StopEventMigration(Message):
    """New broker -> old anchor: client left mid-migration; stop streaming
    and drain TQs back to the old anchor (§4.3)."""

    __slots__ = ("client",)
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int) -> None:
        self.client = client


# ---------------------------------------------------------------------------
# sub-unsub baseline messages
# ---------------------------------------------------------------------------
class TransferRequest(Message):
    """New broker -> old broker after the safety interval: unsubscribe there
    and transfer the stored queue."""

    __slots__ = ("client", "epoch", "new_broker")
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int, epoch: int, new_broker: int) -> None:
        self.client = client
        self.epoch = epoch
        self.new_broker = new_broker


class TransferBatch(Message):
    """A batch of stored events moving from the old to the new broker.

    ``epoch`` names the receiving subscription epoch, so rapid back-and-forth
    movement (several epochs of one client rooted at one broker) cannot
    misroute a transfer stream.
    """

    __slots__ = ("client", "epoch", "events")
    category = CAT_MIGRATION

    def __init__(
        self, client: int, epoch: int, events: list[Notification]
    ) -> None:
        self.client = client
        self.epoch = epoch
        self.events = events


class TransferDone(Message):
    """Old broker -> new broker: stored-queue transfer complete.

    Piggybacks the old root's ``delivered_ids`` (events already handed to
    the client from there), so merges further down a rapid-movement chain
    never re-deliver an event whose copy travelled both routes.
    """

    __slots__ = ("client", "epoch", "delivered_ids")
    category = CAT_MOBILITY_CTRL

    def __init__(
        self, client: int, epoch: int, delivered_ids: frozenset[int] = frozenset()
    ) -> None:
        self.client = client
        self.epoch = epoch
        self.delivered_ids = delivered_ids


# ---------------------------------------------------------------------------
# home-broker baseline messages
# ---------------------------------------------------------------------------
class Register(Message):
    """Foreign broker -> home broker: client now connected here."""

    __slots__ = ("client", "foreign", "epoch")
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int, foreign: int, epoch: int) -> None:
        self.client = client
        self.foreign = foreign
        self.epoch = epoch


class Deregister(Message):
    """Foreign broker -> home broker: client disconnected from here."""

    __slots__ = ("client", "epoch")
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int, epoch: int) -> None:
        self.client = client
        self.epoch = epoch


class ForwardedEvent(Message):
    """Home broker -> foreign broker: one triangle-routed live event."""

    __slots__ = ("client", "event")
    category = CAT_HB_FORWARD

    def __init__(self, client: int, event: Notification) -> None:
        self.client = client
        self.event = event


class ForwardedBatch(Message):
    """Home broker -> foreign broker: stored-backlog batch at registration."""

    __slots__ = ("client", "events")
    category = CAT_MIGRATION

    def __init__(self, client: int, events: list[Notification]) -> None:
        self.client = client
        self.events = events


class SessionTransfer(Message):
    """Repair round -> new home broker: durable-session handover.

    When a client's session anchor is declared permanently dead (or
    partitioned away), the repair round moves the durable session — the
    unacked retransmit window plus the live slice of the delivery cursor —
    to the client's new home broker instead of letting the reliability
    layer exhaust its retry budget against a corpse. Rides the
    generation-stamped synchronous resync (same trust model as the
    routing-table reinstall), so it is dispatched directly, never queued
    on a wire that may itself be dead.
    """

    __slots__ = ("client", "origin", "anchor", "events", "acked")
    category = CAT_RELIABILITY

    def __init__(self, client: int, origin: int, anchor: int,
                 events: tuple, acked: tuple) -> None:
        self.client = client
        self.origin = origin      # the dead broker the session is leaving
        self.anchor = anchor      # the new home broker installing it
        self.events = events      # unacked window, send order
        self.acked = acked        # settled ids still live in the log
