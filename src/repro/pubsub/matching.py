"""Broker-wide counting-based matching engine.

The legacy hot path resolves an event by interrogating every neighbour's
filter set and then every client entry independently
(:meth:`~repro.pubsub.filter_table.FilterTable.match_neighbors` /
``match_clients``); per-neighbour range filters are indexed, but general
filters and client entries are linear scans, so per-event cost grows with
the number of registered filters. This module implements the SIENA-style
**counting algorithm** instead: one broker-wide index over *all* registered
filters resolves an event in a single pass.

Model
-----
Each filter is registered under a **slot** — an opaque hashable token chosen
by the caller (the filter table uses ``("n", neighbour, key)`` for broker
filters and ``("c", key)`` for client entries). The engine decomposes every
filter into its attribute constraints, deduplicates identical constraints
across filters (each unique constraint gets one integer *cid*), and indexes
them by ``(attribute, operator)``:

* numeric closed ranges — a per-attribute
  :class:`~repro.pubsub.interval_index.IntervalIndex`, queried with
  :meth:`~repro.pubsub.interval_index.IntervalIndex.stab_all`
  (all satisfied intervals in O(log n + k));
* ``EQ`` — per-attribute hash buckets;
* ``EXISTS`` — per-attribute presence lists;
* ``PREFIX`` — per-attribute buckets probed with every prefix of the event
  value;
* ``LT``/``LE``/``GT``/``GE`` with numeric bounds — per-operator sorted
  arrays, bisected per event (satisfied constraints form a contiguous run);
* everything else (``NE``, non-numeric bounds, exotic values) — a
  per-attribute fallback table evaluated exactly with
  :meth:`~repro.pubsub.filters.AttributeConstraint.matches_value`.

Resolving an event probes each indexed attribute once, collects the cids of
satisfied constraints, and counts them per filter; a filter matches iff
every one of its constraints was counted. Filters with no constraints match
everything; filter types the compiler does not understand fall back to a
``Filter.matches`` scan, so the engine is exact for *any*
:class:`~repro.pubsub.filters.Filter`.

Groups
------
Reverse path forwarding does not need to know *which* of a neighbour's
filters matched — only whether at least one did. Enumerating every matched
subscription of a heavily-subscribed neighbour (the counting output is
proportional to the number of matches) would waste the work the boolean
answer never needed, so the engine also supports **group members**
(:meth:`CountingMatchingEngine.add_group_member`): range members are held
in per-group interval indexes answered with an O(log n) early-exit stab,
and only non-range members go through the counting pass.
:meth:`CountingMatchingEngine.match_with_groups` therefore resolves, in one
call, the exact slot set (client entries) *and* the matched group set
(neighbours) — the broker hot path's complete forwarding decision.

Mutations are **incremental**: registering or dropping a filter touches only
the buckets its constraints live in (mobility protocols mutate routing
tables on every handoff, so a global rebuild per mutation would dominate
simulation time). The order-sensitive structures are maintained in place —
the per-attribute :class:`~repro.pubsub.interval_index.IntervalIndex` via
its incremental bisect-insert/prefix-repair path, the inequality arrays via
eager bisect insert/delete — so a handoff's table edit never triggers a
table-sized re-sort.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from itertools import count
from typing import Any, Hashable, Optional

from repro.pubsub.events import Notification
from repro.pubsub.filters import (
    AttributeConstraint,
    ConjunctionFilter,
    Filter,
    Op,
    RangeFilter,
)
from repro.pubsub.interval_index import IntervalIndex

__all__ = ["CountingMatchingEngine"]


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class _SortedValues:
    """Dynamic (value, cid) pairs for one inequality operator.

    Maintained eagerly with bisect insert/delete — O(log n) comparisons
    plus one C-level memmove per mutation (mobility churn mutates these on
    every handoff; the former lazy full re-sort per mutated-then-queried
    cycle was O(n log n)). A bisect over ``values`` yields the contiguous
    run of satisfied cids.
    """

    __slots__ = ("_items", "_values", "_cids")

    def __init__(self) -> None:
        self._items: dict[int, float] = {}
        self._values: list[float] = []
        self._cids: list[int] = []

    def add(self, cid: int, value: float) -> None:
        self._items[cid] = value
        i = bisect_right(self._values, value)
        self._values.insert(i, value)
        self._cids.insert(i, cid)

    def discard(self, cid: int) -> None:
        value = self._items.pop(cid, None)
        if value is None:
            return
        cids = self._cids
        i = bisect_left(self._values, value) if value == value else 0
        n = len(cids)
        while i < n and cids[i] != cid:
            i += 1
        if i == n:  # NaN-poisoned ordering: positional fallback
            i = cids.index(cid)
        self._values.pop(i)
        cids.pop(i)

    def pairs(self) -> tuple[list[float], list[int]]:
        return self._values, self._cids

    def __len__(self) -> int:
        return len(self._items)


class _AttrIndex:
    """All indexed constraints on one event attribute."""

    __slots__ = (
        "size", "eq", "exists", "prefix", "max_prefix", "n_loose", "n_strict",
        "ranges_loose", "ranges_strict", "lt", "le", "gt", "ge", "checks",
    )

    def __init__(self) -> None:
        self.size = 0
        self.eq: dict[Any, list[int]] = {}
        self.exists: list[int] = []
        self.prefix: dict[str, list[int]] = {}
        self.max_prefix = 0
        # "loose" intervals compare any int/float (bool included) the way
        # AttributeConstraint.RANGE and topic RangeFilters do; "strict"
        # intervals replicate non-topic RangeFilter semantics, which reject
        # non-number values (incl. bool) before comparing.
        self.ranges_loose = IntervalIndex()
        self.ranges_strict = IntervalIndex()
        self.n_loose = 0
        self.n_strict = 0
        self.lt = _SortedValues()
        self.le = _SortedValues()
        self.gt = _SortedValues()
        self.ge = _SortedValues()
        self.checks: dict[int, AttributeConstraint] = {}

    # ------------------------------------------------------------------
    def install(self, cid: int, kind: str, payload: Any) -> None:
        self.size += 1
        if kind == "eq":
            self.eq.setdefault(payload, []).append(cid)
        elif kind == "exists":
            self.exists.append(cid)
        elif kind == "prefix":
            self.prefix.setdefault(payload, []).append(cid)
            self.max_prefix = max(self.max_prefix, len(payload))
        elif kind == "rng_loose":
            self.ranges_loose.add(cid, payload[0], payload[1])
            self.n_loose += 1
        elif kind == "rng_strict":
            self.ranges_strict.add(cid, payload[0], payload[1])
            self.n_strict += 1
        elif kind in ("lt", "le", "gt", "ge"):
            getattr(self, kind).add(cid, payload)
        else:  # "check"
            self.checks[cid] = payload

    def uninstall(self, cid: int, kind: str, payload: Any) -> None:
        self.size -= 1
        if kind == "eq":
            bucket = self.eq[payload]
            bucket.remove(cid)
            if not bucket:
                del self.eq[payload]
        elif kind == "exists":
            self.exists.remove(cid)
        elif kind == "prefix":
            bucket = self.prefix[payload]
            bucket.remove(cid)
            if not bucket:
                del self.prefix[payload]
                self.max_prefix = max(map(len, self.prefix), default=0)
        elif kind == "rng_loose":
            self.ranges_loose.discard(cid)
            self.n_loose -= 1
        elif kind == "rng_strict":
            self.ranges_strict.discard(cid)
            self.n_strict -= 1
        elif kind in ("lt", "le", "gt", "ge"):
            getattr(self, kind).discard(cid)
        else:  # "check"
            del self.checks[cid]

    # ------------------------------------------------------------------
    def probe(self, x: Any, out: list[int]) -> None:
        """Append the cids of all constraints satisfied by value ``x``."""
        if self.exists:
            out.extend(self.exists)
        nanlike = isinstance(x, float) and x != x
        if self.eq and not nanlike:
            try:
                bucket = self.eq.get(x)
            except TypeError:  # unhashable event value
                bucket = None
            if bucket:
                out.extend(bucket)
        if self.prefix and isinstance(x, str):
            get = self.prefix.get
            for i in range(min(len(x), self.max_prefix) + 1):
                bucket = get(x[:i])
                if bucket:
                    out.extend(bucket)
        if not nanlike and isinstance(x, (int, float)):
            if self.n_loose:
                out.extend(self.ranges_loose.stab_all(x))
            if self.n_strict and not isinstance(x, bool):
                out.extend(self.ranges_strict.stab_all(x))
            if self.lt._items:
                values, cids = self.lt.pairs()
                out.extend(cids[bisect_right(values, x):])
            if self.le._items:
                values, cids = self.le.pairs()
                out.extend(cids[bisect_left(values, x):])
            if self.gt._items:
                values, cids = self.gt.pairs()
                out.extend(cids[:bisect_left(values, x)])
            if self.ge._items:
                values, cids = self.ge.pairs()
                out.extend(cids[:bisect_right(values, x)])
        if self.checks:
            for cid, constraint in self.checks.items():
                if constraint.matches_value(x):
                    out.append(cid)

    def probe_batch(self, xs: list, outs: list) -> None:
        """:meth:`probe` for a vector of values: ``outs[i]`` receives the
        cids satisfied by ``xs[i]``.

        Answer-identical (cid order included) to calling ``probe(x, outs[i])``
        for every non-``None`` ``x``; ``None`` entries are skipped exactly as
        the per-event path skips absent attributes. Each index section binds
        its structures once per batch instead of once per event, range stabs
        hand the raw vector to the interval index (the numeric guard is fused
        into :meth:`IntervalIndex.stab_all_xs`), and the inequality sections
        extract the numeric pairs only when such constraints exist.
        """
        if not (self.exists or self.eq or self.prefix or self.checks):
            # purely numeric attribute (the common case: range/inequality
            # indexes only) — skip the non-None pass; None is not a number
            live = None
        else:
            live = [(i, x) for i, x in enumerate(xs) if x is not None]
            if not live:
                return None
        if self.exists:
            exists = self.exists
            for i, _x in live:
                outs[i].extend(exists)
        if self.eq:
            get = self.eq.get
            for i, x in live:
                if isinstance(x, float) and x != x:
                    continue
                try:
                    bucket = get(x)
                except TypeError:  # unhashable event value
                    bucket = None
                if bucket:
                    outs[i].extend(bucket)
        if self.prefix:
            get = self.prefix.get
            max_prefix = self.max_prefix
            for i, x in live:
                if isinstance(x, str):
                    out = outs[i]
                    for j in range(min(len(x), max_prefix) + 1):
                        bucket = get(x[:j])
                        if bucket:
                            out.extend(bucket)
        if self.n_loose:
            for i, hits in enumerate(self.ranges_loose.stab_all_xs(xs, False)):
                if hits:
                    outs[i].extend(hits)
        if self.n_strict:
            for i, hits in enumerate(self.ranges_strict.stab_all_xs(xs, True)):
                if hits:
                    outs[i].extend(hits)
        if self.lt._items or self.le._items or self.gt._items or self.ge._items:
            nums = [
                (i, x)
                for i, x in (enumerate(xs) if live is None else live)
                if isinstance(x, (int, float)) and x == x
            ]
            if nums:
                if self.lt._items:
                    values, cids = self.lt.pairs()
                    for i, x in nums:
                        outs[i].extend(cids[bisect_right(values, x):])
                if self.le._items:
                    values, cids = self.le.pairs()
                    for i, x in nums:
                        outs[i].extend(cids[bisect_left(values, x):])
                if self.gt._items:
                    values, cids = self.gt.pairs()
                    for i, x in nums:
                        outs[i].extend(cids[:bisect_left(values, x)])
                if self.ge._items:
                    values, cids = self.ge.pairs()
                    for i, x in nums:
                        outs[i].extend(cids[:bisect_right(values, x)])
        if self.checks:
            checks = self.checks
            for i, x in live:
                out = outs[i]
                for cid, constraint in checks.items():
                    if constraint.matches_value(x):
                        out.append(cid)


# One compiled constraint: (kind, attr, payload). The triple doubles as the
# cross-filter deduplication key (payload is hashable except for "check"
# plans, which fall back to AttributeConstraint.key()).
_Plan = tuple


def _compile(f: Filter) -> Optional[list[_Plan]]:
    """Decompose ``f`` into indexable constraint plans.

    Returns None for filter types the compiler does not understand (they
    are matched by scanning), and [] for filters that match everything.
    """
    if isinstance(f, RangeFilter):
        kind = "rng_loose" if f.attr == "topic" else "rng_strict"
        return [(kind, f.attr, (f.lo, f.hi))]
    if isinstance(f, ConjunctionFilter):
        plans: list[_Plan] = []
        for c in f.constraints:
            op, v = c.op, c.value
            if op is Op.EXISTS:
                plans.append(("exists", c.attr, None))
            elif op is Op.EQ and _hashable(v) and not _nanlike(v):
                plans.append(("eq", c.attr, v))
            elif op is Op.PREFIX:
                plans.append(("prefix", c.attr, v))
            elif op is Op.RANGE and _is_number(v[0]) and _is_number(v[1]):
                plans.append(("rng_loose", c.attr, (float(v[0]), float(v[1]))))
            elif op in (Op.LT, Op.LE, Op.GT, Op.GE) and _is_number(v):
                plans.append((op.name.lower(), c.attr, float(v)))
            else:
                # NE, non-numeric bounds, NaN/unhashable values: exact
                # per-event check
                plans.append(("check", c.attr, c))
        return plans
    return None


def _hashable(v: Any) -> bool:
    try:
        hash(v)
    except TypeError:
        return False
    return True


def _nanlike(v: Any) -> bool:
    return isinstance(v, float) and v != v


#: sentinel marking engine-internal slots that represent group members
_GROUP = object()


class _Group:
    """One group's members: boolean range indexes + counted general members.

    ``member_kind`` remembers where each member key lives so removal is
    O(1): ``("loose", attr)`` / ``("strict", attr)`` for range members,
    ``("slot", internal_slot)`` for members delegated to the counting pass.
    """

    __slots__ = ("ranges_loose", "ranges_strict", "member_kind")

    def __init__(self) -> None:
        self.ranges_loose: dict[str, IntervalIndex] = {}
        self.ranges_strict: dict[str, IntervalIndex] = {}
        self.member_kind: dict[Hashable, tuple] = {}

    def stab(self, event: Notification) -> bool:
        """True if any range member matches ``event`` (early exit)."""
        for attr, idx in self.ranges_loose.items():
            x = event.get(attr)
            if (
                isinstance(x, (int, float))
                and x == x
                and idx.stab(x)
            ):
                return True
        for attr, idx in self.ranges_strict.items():
            x = event.get(attr)
            if _is_number(x) and x == x and idx.stab(x):
                return True
        return False


class CountingMatchingEngine:
    """Single-pass counting matcher over all of one broker's filters.

    Usage::

        engine = CountingMatchingEngine()
        engine.add(("n", 3, "key-a"), RangeFilter(0.2, 0.4))
        engine.add(("c", "key-b"), ConjunctionFilter([...]))
        matched_slots = engine.match(event)

    Slots are opaque; the caller maps them back to neighbours / client
    entries. ``add`` with an existing slot replaces its filter. All
    mutations are incremental — cost proportional to the constraints of the
    one filter touched, never to the table size.
    """

    __slots__ = (
        "_next_cid",
        "_slot_cids", "_always", "_scan", "_needed",
        "_cid_single", "_cid_multi", "_cid_plan", "_cid_key", "_key_cid",
        "_attrs", "_groups", "_group_slots",
        "_group_loose", "_group_strict",
        "_sid_needed", "_sid_counts", "_sid_stamps", "_sid_free", "_epoch",
    )

    def __init__(self) -> None:
        self._next_cid = count()
        # slot bookkeeping: exactly one of the three holds any given slot
        self._slot_cids: dict[Hashable, list[int]] = {}
        self._always: dict[Hashable, bool] = {}
        self._scan: dict[Hashable, Filter] = {}
        self._needed: dict[Hashable, int] = {}
        # constraint bookkeeping. Slots with exactly one constraint (the
        # common case: every RangeFilter) match as soon as their cid is
        # satisfied and skip counting entirely; only multi-constraint slots
        # pay for the per-event count dictionary. _cid_multi maps each cid
        # to {slot: sid} where sid is the slot's dense counter index in the
        # flat arrays below.
        self._cid_single: dict[int, dict[Hashable, bool]] = {}
        self._cid_multi: dict[int, dict[Hashable, int]] = {}
        self._cid_plan: dict[int, _Plan] = {}
        self._cid_key: dict[int, Hashable] = {}
        self._key_cid: dict[Hashable, int] = {}
        self._attrs: dict[str, _AttrIndex] = {}
        self._groups: dict[Hashable, _Group] = {}
        # group members delegated to the counting pass (non-range filters):
        # when zero, match_batch skips the _GROUP slot-separation scan
        self._group_slots = 0
        # combined per-attribute indexes over every group's range members,
        # keyed by (group, member_key): the batched path stabs all groups
        # with one traversal per attribute instead of one pass per group
        self._group_loose: dict[str, IntervalIndex] = {}
        self._group_strict: dict[str, IntervalIndex] = {}
        # flat per-sid satisfied counters for the batched path: reset is an
        # epoch bump + stamp comparison, never a reallocation (match_batch)
        self._sid_needed = array("l")
        self._sid_counts = array("l")
        self._sid_stamps = array("q")
        self._sid_free: list[int] = []
        self._epoch = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, slot: Hashable, f: Filter) -> None:
        """Register (or replace) the filter for ``slot``."""
        self.discard(slot)
        plans = _compile(f)
        if plans is None:
            self._scan[slot] = f
            return
        # deduplicate within the filter: a conjunction of identical
        # constraints is one constraint, and double-counting a shared cid
        # would make the filter's count target unreachable
        uniq: dict[Hashable, _Plan] = {}
        unkeyed: list[_Plan] = []
        for plan in plans:
            kind, attr, payload = plan
            if kind == "check":
                try:
                    key = ("check", attr, payload.key())
                    hash(key)
                except TypeError:
                    if not any(payload == other[2] for other in unkeyed):
                        unkeyed.append(plan)
                    continue
            else:
                key = plan
            uniq[key] = plan
        if not uniq and not unkeyed:
            self._always[slot] = True
            return
        cids: list[int] = []
        for key, plan in uniq.items():
            cid = self._key_cid.get(key)
            if cid is None:
                cid = self._install(plan)
                self._key_cid[key] = cid
                self._cid_key[cid] = key
            cids.append(cid)
        for plan in unkeyed:
            cids.append(self._install(plan))
        if len(cids) == 1:
            self._cid_single[cids[0]][slot] = True
        else:
            sid = self._alloc_sid(len(cids))
            multi = self._cid_multi
            for cid in cids:
                multi[cid][slot] = sid
        self._slot_cids[slot] = cids
        self._needed[slot] = len(cids)

    def discard(self, slot: Hashable) -> None:
        """Unregister ``slot`` if present."""
        if self._scan.pop(slot, None) is not None:
            return
        if self._always.pop(slot, None) is not None:
            return
        cids = self._slot_cids.pop(slot, None)
        if cids is None:
            return
        del self._needed[slot]
        if len(cids) == 1:
            holder_map = self._cid_single
        else:
            holder_map = self._cid_multi
            self._sid_free.append(holder_map[cids[0]][slot])
        for cid in cids:
            del holder_map[cid][slot]
            if not self._cid_single[cid] and not self._cid_multi[cid]:
                del self._cid_single[cid]
                del self._cid_multi[cid]
                kind, attr, payload = self._cid_plan.pop(cid)
                key = self._cid_key.pop(cid, None)
                if key is not None:
                    del self._key_cid[key]
                ai = self._attrs[attr]
                ai.uninstall(cid, kind, payload)
                if ai.size == 0:
                    del self._attrs[attr]

    def _alloc_sid(self, needed: int) -> int:
        """Dense counter index for one multi-constraint slot.

        The flat ``array`` counters used by :meth:`match_batch` are indexed
        by sid; freed sids are recycled so the arrays stay proportional to
        the live multi-constraint population. Stale stamps left behind by a
        previous tenant are harmless: stamps never exceed the current epoch,
        so the next batch sees the counter as "not yet touched".
        """
        free = self._sid_free
        if free:
            sid = free.pop()
            self._sid_needed[sid] = needed
            return sid
        self._sid_needed.append(needed)
        self._sid_counts.append(0)
        self._sid_stamps.append(0)
        return len(self._sid_needed) - 1

    def _install(self, plan: _Plan) -> int:
        kind, attr, payload = plan
        cid = next(self._next_cid)
        ai = self._attrs.get(attr)
        if ai is None:
            ai = self._attrs[attr] = _AttrIndex()
        ai.install(cid, kind, payload)
        self._cid_plan[cid] = plan
        self._cid_single[cid] = {}
        self._cid_multi[cid] = {}
        return cid

    # ------------------------------------------------------------------
    # group members (boolean "any member matches" semantics)
    # ------------------------------------------------------------------
    def add_group_member(self, group: Hashable, key: Hashable, f: Filter) -> None:
        """Register (or replace) member ``key`` of ``group``.

        A group matches an event iff at least one of its members does;
        :meth:`match_with_groups` reports matched groups without enumerating
        members. Range members get a per-group boolean interval index; any
        other filter is delegated to the counting pass.
        """
        g = self._groups.get(group)
        if g is None:
            g = self._groups[group] = _Group()
        if key in g.member_kind:
            self.discard_group_member(group, key)
            g = self._groups.get(group)
            if g is None:
                g = self._groups[group] = _Group()
        if isinstance(f, RangeFilter):
            if f.attr == "topic":
                kind, table = "loose", g.ranges_loose
                combined = self._group_loose
            else:
                kind, table = "strict", g.ranges_strict
                combined = self._group_strict
            idx = table.get(f.attr)
            if idx is None:
                idx = table[f.attr] = IntervalIndex()
            idx.add(key, f.lo, f.hi)
            cidx = combined.get(f.attr)
            if cidx is None:
                cidx = combined[f.attr] = IntervalIndex()
            cidx.add((group, key), f.lo, f.hi)
            g.member_kind[key] = (kind, f.attr)
        else:
            slot = (_GROUP, group, key)
            self.add(slot, f)
            g.member_kind[key] = ("slot", slot)
            self._group_slots += 1

    def discard_group_member(self, group: Hashable, key: Hashable) -> None:
        """Unregister member ``key`` of ``group`` if present."""
        g = self._groups.get(group)
        if g is None:
            return
        kind = g.member_kind.pop(key, None)
        if kind is None:
            return
        if kind[0] == "slot":
            self.discard(kind[1])
            self._group_slots -= 1
        else:
            if kind[0] == "loose":
                table, combined = g.ranges_loose, self._group_loose
            else:
                table, combined = g.ranges_strict, self._group_strict
            idx = table[kind[1]]
            idx.discard(key)
            if not len(idx):
                del table[kind[1]]
            cidx = combined[kind[1]]
            cidx.discard((group, key))
            if not len(cidx):
                del combined[kind[1]]
        if not g.member_kind:
            del self._groups[group]

    def group_size(self, group: Hashable) -> int:
        g = self._groups.get(group)
        return len(g.member_kind) if g is not None else 0

    def __len__(self) -> int:
        return len(self._slot_cids) + len(self._always) + len(self._scan)

    def __contains__(self, slot: Hashable) -> bool:
        return slot in self._slot_cids or slot in self._always or slot in self._scan

    # ------------------------------------------------------------------
    # matching (the hot path)
    # ------------------------------------------------------------------
    def match(self, event: Notification) -> list[Hashable]:
        """Slots of all slot-registered filters matching ``event``.

        Group members never appear here; use :meth:`match_with_groups` when
        groups are registered.
        """
        return self.match_with_groups(event)[0]

    def match_with_groups(
        self, event: Notification
    ) -> tuple[list[Hashable], set]:
        """One-pass resolution: (matched slots, matched groups).

        A group is matched iff at least one of its members matches; which
        member matched is not reported (boolean early-exit for range
        members — the reverse-path-forwarding decision does not need the
        enumeration the counting pass would produce).
        """
        satisfied: list[int] = []
        for attr, ai in self._attrs.items():
            x = event.get(attr)
            if x is None:
                # no operator (EXISTS included) matches an absent attribute
                continue
            ai.probe(x, satisfied)
        raw: list[Hashable] = []
        counts: dict[Hashable, int] = {}
        counts_get = counts.get
        single, multi = self._cid_single, self._cid_multi
        for cid in satisfied:
            s = single[cid]
            if s:
                raw.extend(s)
            m = multi[cid]
            if m:
                for slot in m:
                    counts[slot] = counts_get(slot, 0) + 1
        if counts:
            needed = self._needed
            raw.extend(slot for slot, n in counts.items() if n == needed[slot])
        raw.extend(self._always)
        for slot, f in self._scan.items():
            if f.matches(event):
                raw.append(slot)
        groups: set = set()
        if not self._groups:
            return raw, groups
        out: list[Hashable] = []
        for slot in raw:
            # group-member slots are tagged with the _GROUP sentinel
            if type(slot) is tuple and slot and slot[0] is _GROUP:
                groups.add(slot[1])
            else:
                out.append(slot)
        for group, g in self._groups.items():
            if group not in groups and g.stab(event):
                groups.add(group)
        return out, groups

    def match_batch(
        self, events: list[Notification]
    ) -> list[tuple[list[Hashable], set]]:
        """Vectorized :meth:`match_with_groups` over a batch of events.

        Returns exactly ``[self.match_with_groups(e) for e in events]`` —
        same slots in the same order, same group sets — but resolves the
        batch with one pass per indexed attribute instead of one pass per
        event. Multi-constraint filters are counted in the flat per-sid
        ``array`` counters: an epoch bump invalidates every counter at once
        (a stamp older than the current epoch reads as zero), so no
        per-event dict is allocated and nothing is ever reset by writing.
        """
        n = len(events)
        if n == 0:
            return []
        sats: list[list[int]] = [[] for _ in range(n)]
        xs_cache: dict[str, list] = {}
        for attr, ai in self._attrs.items():
            if attr == "topic":
                xs = [e.topic for e in events]
            elif attr == "publisher":
                xs = [e.publisher for e in events]
            else:
                xs = [e.get(attr) for e in events]
            xs_cache[attr] = xs
            ai.probe_batch(xs, sats)
        # stab every group's range members with one traversal per attribute
        # over the combined indexes; ghits[i] lazily becomes the set of
        # groups whose range members match event i
        ghits: Optional[list[Optional[set]]] = None
        if self._groups:
            ghits = [None] * n
            for combined, strict in (
                (self._group_loose, False),
                (self._group_strict, True),
            ):
                for attr, cidx in combined.items():
                    xs = xs_cache.get(attr)
                    if xs is None:
                        if attr == "topic":
                            xs = [e.topic for e in events]
                        else:
                            xs = [e.get(attr) for e in events]
                        xs_cache[attr] = xs
                    for i, keys in enumerate(cidx.stab_all_xs(xs, strict)):
                        if keys:
                            s = ghits[i]
                            if s is None:
                                s = ghits[i] = set()
                            for gk in keys:
                                s.add(gk[0])
        single, multi = self._cid_single, self._cid_multi
        always = self._always
        scan = self._scan
        counts = self._sid_counts
        stamps = self._sid_stamps
        needed = self._sid_needed
        epoch = self._epoch
        # live multi-constraint slots exist iff some sid is not on the free
        # list; without them the counting inner loop reduces to extends
        have_multi = len(needed) > len(self._sid_free)
        separate = self._group_slots > 0
        results: list[tuple[list[Hashable], set]] = []
        results_append = results.append
        for i in range(n):
            raw: list[Hashable] = []
            epoch += 1
            if have_multi:
                touched: Optional[list] = None
                for cid in sats[i]:
                    s = single[cid]
                    if s:
                        raw.extend(s)
                    mm = multi[cid]
                    if mm:
                        if touched is None:
                            touched = []
                        for slot, sid in mm.items():
                            if stamps[sid] == epoch:
                                counts[sid] += 1
                            else:
                                stamps[sid] = epoch
                                counts[sid] = 1
                                touched.append((slot, sid))
                if touched:
                    # first-touch order == the per-event path's dict
                    # insertion order, so the emitted slot order is identical
                    raw.extend(
                        slot
                        for slot, sid in touched
                        if counts[sid] == needed[sid]
                    )
            else:
                for cid in sats[i]:
                    s = single[cid]
                    if s:
                        raw.extend(s)
            if always:
                raw.extend(always)
            if scan:
                event = events[i]
                for slot, f in scan.items():
                    if f.matches(event):
                        raw.append(slot)
            if ghits is None:
                results_append((raw, set()))
                continue
            groups = ghits[i]
            if groups is None:
                groups = set()
            if separate:
                out: list[Hashable] = []
                for slot in raw:
                    if type(slot) is tuple and slot and slot[0] is _GROUP:
                        groups.add(slot[1])
                    else:
                        out.append(slot)
            else:
                out = raw
            results_append((out, groups))
        self._epoch = epoch
        return results
