"""Per-broker filter table.

Section 3: "Each event broker maintains a filter table to record the
subscriptions of its neighbors. The neighbors of a broker include both the
neighboring brokers and the clients that directly connect to the broker."

The table therefore has two parts:

* **broker filters** — per neighbouring broker, the set of subscriptions that
  neighbour advertised to us (keyed by subscription key). An event is
  forwarded to a neighbour iff any of its advertised filters matches
  (reverse path forwarding).
* **client entries** — local (possibly offline) clients. MHH extends these
  with a *label*: a labelled entry accepts events for the client only when
  they arrive from the labelled neighbour (§4.1 step 2) — the mechanism that
  captures in-transit events into temporary queues during a handoff.

Matching is delegated to a broker-wide
:class:`~repro.pubsub.matching.CountingMatchingEngine` (the default): every
broker filter and client entry is registered with the engine as it is
installed, and :meth:`FilterTable.match` resolves an event against *all* of
them in a single counting pass, returning matched neighbours and matched
client entries together. The pre-engine behaviour — per-neighbour
:class:`~repro.pubsub.interval_index.IntervalIndex` stabbing plus linear
scans over general filters and client entries — is kept behind
``engine="scan"`` for differential testing; both paths must agree
event-for-event (``tests/test_matching_engine.py`` asserts this, including
the order of matched client entries).

The table also tracks what this broker has **advertised** to each neighbour
(the mirror of the neighbour's broker-filter set for us). Advertisement
bookkeeping drives covering-based propagation pruning and must be kept
consistent by MHH's direct table edits; the system-wide mirror invariant is
asserted in tests.

Control-plane cost is governed by three indexes (all toggleable back to
their scan-based forms for differential testing):

* every per-neighbour range set and the engine's per-attribute indexes sit
  on the *incremental* :class:`~repro.pubsub.interval_index.IntervalIndex`,
  so a handoff's table edit costs O(log n) instead of a full re-sort;
* with ``covering_index=True`` (default) each advertised set carries a
  :class:`~repro.pubsub.covering.CoveringIndex` making ``advertised_covers``
  O(log n), and the table maintains one broker-wide *candidates*
  CoveringIndex over every client entry and neighbour filter, so
  :meth:`FilterTable.covered_candidates` enumerates exactly the entries a
  withdrawn filter could have been suppressing — in the same order the
  legacy full-table scan would visit them, so both paths emit identical
  re-advertisements;
* a client→entries map makes :meth:`entries_for_client` (every
  connect/handoff, all four protocols) O(entries-of-that-client) instead of
  a scan over every entry on the broker.
"""

from __future__ import annotations

from itertools import count
from operator import attrgetter, itemgetter
from typing import Hashable, Iterable, Optional

from repro.errors import ProtocolError
from repro.pubsub.covering import CoveringIndex
from repro.pubsub.events import Notification
from repro.pubsub.filters import Filter
from repro.pubsub.interval_index import IntervalIndex
from repro.pubsub.matching import CountingMatchingEngine
from repro.util.ids import QueueId

__all__ = ["ClientEntry", "FilterTable"]

#: valid values for FilterTable(engine=...); "counting-compiled" is the
#: mypyc-built CountingMatchingEngine (see repro.accel), behaviourally
#: identical to "counting"
ENGINE_MODES = ("counting", "scan", "counting-compiled")


class ClientEntry:
    """Interest of one local (possibly offline) client.

    Attributes
    ----------
    client: client id.
    key: the routing key under which the filter propagates.
    filter: the client's subscription filter.
    label: None, or a neighbouring broker id — accept events for this client
        only from that neighbour (MHH §4.1).
    live: True while events should go straight to the client's wireless
        downlink; False while they should be appended to ``sink``.
    sink: queue id (broker-local) absorbing events while not live.
    """

    __slots__ = ("client", "key", "filter", "label", "live", "sink", "seq")

    def __init__(
        self,
        client: int,
        key: Hashable,
        filter: Filter,
        label: Optional[int] = None,
        live: bool = False,
        sink: Optional[QueueId] = None,
    ) -> None:
        self.client = client
        self.key = key
        self.filter = filter
        self.label = label
        self.live = live
        self.sink = sink
        # installation order stamped by FilterTable.set_client_entry (the
        # table's _client_seq for this key, cached on the entry so hot-path
        # sorts use a C-level attrgetter instead of a dict-lookup lambda)
        self.seq = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self.live else f"sink={self.sink}"
        lab = f" label={self.label}" if self.label is not None else ""
        return f"<ClientEntry c{self.client} {state}{lab}>"


#: hot-path sort key: installation order cached on the entry
_ENTRY_SEQ = attrgetter("seq")


class _PeerFilters:
    """Filters advertised by one neighbour: range index + general list.

    ``filters`` keeps every installed filter object so lookups return the
    original (no per-:meth:`get` reconstruction), and ``_seq`` stamps each
    key with ``(subtable, insertion-seq)`` — the position it occupies in
    :meth:`keys` order — so indexed candidate enumeration can reproduce the
    legacy scan order exactly. With ``covering_index=True`` the set also
    carries a :class:`CoveringIndex` answering :meth:`covers` in O(log n)
    (used for advertised sets, where covering-pruned propagation queries it
    on every subscribe/withdraw).
    """

    __slots__ = (
        "ranges", "general", "filters", "_seq", "_next_seq", "cov",
        "_want_cov",
    )

    def __init__(self, covering_index: bool = False) -> None:
        self.ranges = IntervalIndex()
        self.general: dict[Hashable, Filter] = {}
        self.filters: dict[Hashable, Filter] = {}
        self._seq: dict[Hashable, tuple[int, int]] = {}
        self._next_seq = count()
        # the CoveringIndex is built lazily on the first covers() call and
        # maintained incrementally from then on — non-covering runs (MHH
        # and the default reproduction configs) never query covering, so
        # they never pay for index maintenance
        self._want_cov = covering_index
        self.cov: Optional[CoveringIndex] = None

    def add(self, key: Hashable, f: Filter) -> None:
        rng = f.as_range()
        if rng is not None and rng[0] == "topic":
            sub = 0
            self.general.pop(key, None)  # replace across subtables
            self.ranges.add(key, rng[1], rng[2])
        else:
            sub = 1
            self.ranges.discard(key)
            self.general[key] = f
        self.filters[key] = f
        old = self._seq.get(key)
        if old is None or old[0] != sub:
            self._seq[key] = (sub, next(self._next_seq))
        if self.cov is not None:
            self.cov.add(key, f)

    def remove(self, key: Hashable) -> bool:
        if key in self.ranges:
            self.ranges.remove(key)
        elif self.general.pop(key, None) is None:
            return False
        del self.filters[key]
        del self._seq[key]
        if self.cov is not None:
            self.cov.discard(key)
        return True

    def __contains__(self, key: Hashable) -> bool:
        return key in self.filters

    def __len__(self) -> int:
        return len(self.filters)

    def matches(self, event: Notification) -> bool:
        if self.ranges.stab(event.topic):
            return True
        return any(f.matches(event) for f in self.general.values())

    def covers(self, f: Filter) -> bool:
        """Is ``f`` covered by some filter in this set? (conservative)"""
        cov = self.cov
        if cov is None and self._want_cov:
            cov = self.cov = CoveringIndex()
            for key, installed in self.filters.items():
                cov.add(key, installed)
        if cov is not None:
            return cov.covers(f)
        rng = f.as_range()
        if rng is not None and rng[0] == "topic":
            if self.ranges.contains_interval(rng[1], rng[2]):
                return True
        return any(g.covers(f) for g in self.general.values())

    def keys(self) -> list[Hashable]:
        return [k for k, _ in self.ranges.items()] + list(self.general)

    def iter_filters(self):
        """(key, filter) pairs in :meth:`keys` order, lazily."""
        filters = self.filters
        for key, _iv in self.ranges.items():
            yield key, filters[key]
        yield from self.general.items()

    def order_key(self, key: Hashable) -> tuple[int, int]:
        """(subtable, seq) position of ``key`` in :meth:`keys` order."""
        return self._seq[key]

    def get(self, key: Hashable) -> Optional[Filter]:
        return self.filters.get(key)


class FilterTable:
    """The routing state of one broker.

    ``engine`` selects the matching implementation: ``"counting"`` (default)
    resolves events through one broker-wide
    :class:`~repro.pubsub.matching.CountingMatchingEngine`; ``"scan"`` keeps
    the legacy per-neighbour stab + linear-scan path for differential
    testing. Bookkeeping (keys, advertisement mirror, covering) is identical
    in both modes.
    """

    def __init__(
        self,
        broker_id: int,
        neighbors: Iterable[int],
        engine: str = "counting",
        covering_index: bool = True,
    ) -> None:
        if engine not in ENGINE_MODES:
            raise ProtocolError(
                f"unknown matching engine {engine!r}; expected one of "
                f"{ENGINE_MODES}"
            )
        self.broker_id = broker_id
        self.engine_mode = engine
        self.covering_index = covering_index
        self.neighbors = sorted(neighbors)
        # subs received FROM each neighbour ("that side is interested")
        self._from_nbr: dict[int, _PeerFilters] = {
            n: _PeerFilters() for n in self.neighbors
        }
        # subs we advertised TO each neighbour (mirror of their _from_nbr[us]);
        # only these sets answer covering queries, so only they carry the
        # per-neighbour CoveringIndex
        self._advertised: dict[int, _PeerFilters] = {
            n: _PeerFilters(covering_index=covering_index)
            for n in self.neighbors
        }
        # client entries keyed by subscription key; a client normally has at
        # most one entry per broker, but the sub-unsub baseline can briefly
        # root two subscription epochs of one client at the same broker
        self.clients: dict[Hashable, ClientEntry] = {}
        # per-client view of `clients` (same entry objects) for O(entries)
        # connect/handoff lookups
        self._by_client: dict[int, dict[Hashable, ClientEntry]] = {}
        # broker-wide counting engine, kept in sync by every mutator below
        # (None in scan mode). Client-entry insertion order is tracked so
        # engine results replay the scan path's dict-order exactly.
        if engine == "counting":
            self._engine: Optional[CountingMatchingEngine] = (
                CountingMatchingEngine()
            )
        elif engine == "counting-compiled":
            from repro.accel import compiled_matching_engine

            self._engine = compiled_matching_engine()
        else:
            self._engine = None
        self._client_seq: dict[Hashable, int] = {}
        self._next_seq = count()
        # broker-wide covering index over every withdrawal *candidate*
        # (client entries + every neighbour's filters): drives
        # covered_candidates(). Built lazily on the first covering
        # withdrawal and maintained incrementally from then on, so
        # non-covering runs never pay for it. Always None when the
        # covering_index toggle is off.
        self._candidates: Optional[CoveringIndex] = None

    # ------------------------------------------------------------------
    # broker-filter side
    # ------------------------------------------------------------------
    def add_broker_filter(self, nbr: int, key: Hashable, f: Filter) -> None:
        self._from_nbr[nbr].add(key, f)
        if self._engine is not None:
            self._engine.add_group_member(nbr, key, f)
        if self._candidates is not None:
            self._candidates.add(("n", nbr, key), f)

    def remove_broker_filter(self, nbr: int, key: Hashable) -> bool:
        """Remove; returns False if the key was absent."""
        removed = self._from_nbr[nbr].remove(key)
        if removed:
            if self._engine is not None:
                self._engine.discard_group_member(nbr, key)
            if self._candidates is not None:
                self._candidates.discard(("n", nbr, key))
        return removed

    def has_broker_filter(self, nbr: int, key: Hashable) -> bool:
        return key in self._from_nbr[nbr]

    def broker_filter_keys(self, nbr: int) -> list[Hashable]:
        return self._from_nbr[nbr].keys()

    def broker_filter_get(self, nbr: int, key: Hashable) -> Optional[Filter]:
        return self._from_nbr[nbr].get(key)

    def broker_filter_count(self, nbr: int) -> int:
        return len(self._from_nbr[nbr])

    def iter_broker_filters(self, nbr: int):
        """Lazy (key, filter) pairs from ``nbr``, in ``keys()`` order."""
        return self._from_nbr[nbr].iter_filters()

    # ------------------------------------------------------------------
    # advertisement mirror
    # ------------------------------------------------------------------
    def advertised_add(self, nbr: int, key: Hashable, f: Filter) -> None:
        self._advertised[nbr].add(key, f)

    def advertised_remove(self, nbr: int, key: Hashable) -> bool:
        return self._advertised[nbr].remove(key)

    def advertised_has(self, nbr: int, key: Hashable) -> bool:
        return key in self._advertised[nbr]

    def advertised_covers(self, nbr: int, f: Filter) -> bool:
        return self._advertised[nbr].covers(f)

    def advertised_keys(self, nbr: int) -> list[Hashable]:
        return self._advertised[nbr].keys()

    def advertised_get(self, nbr: int, key: Hashable) -> Optional[Filter]:
        return self._advertised[nbr].get(key)

    def advertised_count(self, nbr: int) -> int:
        return len(self._advertised[nbr])

    # ------------------------------------------------------------------
    # covering-based withdrawal support
    # ------------------------------------------------------------------
    def covered_candidates(
        self, nbr: int, f: Filter
    ) -> list[tuple[Hashable, Filter]]:
        """Table entries a withdrawal of ``f`` toward ``nbr`` could expose.

        When a covering-pruned advertisement is withdrawn, the only entries
        that can newly need re-advertising are those the withdrawn filter
        covers (anything else keeps whatever cover it already had). This
        enumerates exactly that set — every client entry and every filter
        from neighbours other than ``nbr`` with ``f.covers(entry)`` — in the
        order the legacy full-table scan (:meth:`iter_broker_filters` after
        the client entries) would visit them, so the indexed and scanning
        withdrawal paths re-advertise identical filters in identical order.
        """
        candidates = self._candidates
        if candidates is None:
            candidates = self._candidates = CoveringIndex()
            for key, entry in self.clients.items():
                candidates.add(("c", key), entry.filter)
            for nbr_id, peer in self._from_nbr.items():
                for key, installed in peer.filters.items():
                    candidates.add(("n", nbr_id, key), installed)
        ranked = []
        client_seq = self._client_seq
        for ckey in candidates.covered_by(f):
            if ckey[0] == "c":
                key = ckey[1]
                ranked.append(
                    ((-1, 0, client_seq[key]), key, self.clients[key].filter)
                )
            else:
                _tag, other, key = ckey
                if other == nbr:
                    continue
                peer = self._from_nbr[other]
                sub, seq = peer.order_key(key)
                ranked.append(((other, sub, seq), key, peer.filters[key]))
        ranked.sort(key=itemgetter(0))
        return [(key, cand) for _rank, key, cand in ranked]

    # ------------------------------------------------------------------
    # client entries
    # ------------------------------------------------------------------
    def set_client_entry(self, entry: ClientEntry) -> None:
        key_seq = self._client_seq.get(entry.key)
        if key_seq is None:
            key_seq = self._client_seq[entry.key] = next(self._next_seq)
        entry.seq = key_seq
        prev = self.clients.get(entry.key)
        if prev is not None and prev.client != entry.client:
            self._drop_client_ref(prev)
        self.clients[entry.key] = entry
        self._by_client.setdefault(entry.client, {})[entry.key] = entry
        if self._engine is not None:
            self._engine.add(entry.key, entry.filter)
        if self._candidates is not None:
            self._candidates.add(("c", entry.key), entry.filter)

    def _drop_client_ref(self, entry: ClientEntry) -> None:
        bucket = self._by_client.get(entry.client)
        if bucket is not None:
            bucket.pop(entry.key, None)
            if not bucket:
                del self._by_client[entry.client]

    def entries_for_client(self, client: int) -> list[ClientEntry]:
        bucket = self._by_client.get(client)
        if not bucket:
            return []
        if len(bucket) == 1:
            return list(bucket.values())
        # several entries (sub-unsub epoch overlap): report them in global
        # installation order, exactly as the old whole-table scan did
        return sorted(bucket.values(), key=_ENTRY_SEQ)

    def get_client_entry(self, client: int) -> Optional[ClientEntry]:
        """The unique entry for ``client`` (None if absent).

        Raises if the client has several entries here — callers relying on
        uniqueness (MHH) would be operating on ambiguous state.
        """
        entries = self.entries_for_client(client)
        if len(entries) > 1:
            raise ProtocolError(
                f"broker {self.broker_id}: client {client} has "
                f"{len(entries)} entries; use key-based access"
            )
        return entries[0] if entries else None

    def require_client_entry(self, client: int) -> ClientEntry:
        entry = self.get_client_entry(client)
        if entry is None:
            raise ProtocolError(
                f"broker {self.broker_id}: no client entry for client {client}"
            )
        return entry

    def get_entry_by_key(self, key: Hashable) -> Optional[ClientEntry]:
        return self.clients.get(key)

    def remove_client_entry(self, client: int) -> None:
        entry = self.require_client_entry(client)
        self.remove_entry_by_key(entry.key)

    def remove_entry_by_key(self, key: Hashable) -> None:
        entry = self.clients.pop(key, None)
        if entry is None:
            raise ProtocolError(
                f"broker {self.broker_id}: removing absent entry {key!r}"
            )
        self._drop_client_ref(entry)
        self._client_seq.pop(key, None)
        if self._engine is not None:
            self._engine.discard(key)
        if self._candidates is not None:
            self._candidates.discard(("c", key))

    # ------------------------------------------------------------------
    # matching (the hot path)
    # ------------------------------------------------------------------
    def match(
        self, event: Notification, from_broker: Optional[int]
    ) -> tuple[list[int], list[ClientEntry]]:
        """Resolve one event in a single pass over the whole table.

        Returns ``(neighbours, client_entries)``: the neighbours (excluding
        ``from_broker``) to forward the event to, and the matching client
        entries honouring MHH labels. With the counting engine this is one
        :meth:`CountingMatchingEngine.match_with_groups` call for
        everything; in scan mode it composes the two legacy loops.
        Neighbour order is ascending id, client-entry order is insertion
        order — identical across modes.
        """
        if self._engine is None:
            return (
                self.match_neighbors(event, exclude=from_broker),
                self.match_clients(event, from_broker),
            )
        keys, groups = self._engine.match_with_groups(event)
        entries: list[ClientEntry] = []
        for key in keys:
            entry = self.clients[key]
            if entry.label is not None and entry.label != from_broker:
                continue
            entries.append(entry)
        entries.sort(key=_ENTRY_SEQ)
        groups.discard(from_broker)
        return sorted(groups), entries

    def match_batch(
        self, items: list[tuple[Notification, Optional[int]]]
    ) -> list[tuple[list[int], list[ClientEntry]]]:
        """:meth:`match` for a batch: ``[self.match(e, f) for e, f in items]``.

        Answer-identical per item (neighbour order, entry order, label
        handling). With the counting engine the whole batch resolves
        through one :meth:`CountingMatchingEngine.match_batch` call; scan
        mode falls back to the per-event path — batching is an engine-path
        optimisation, the scan lanes exist as the correctness oracle.
        """
        if self._engine is None:
            return [self.match(e, f) for e, f in items]
        results = self._engine.match_batch([e for e, _f in items])
        clients = self.clients
        out: list[tuple[list[int], list[ClientEntry]]] = []
        out_append = out.append
        for (event, from_broker), (keys, groups) in zip(items, results):
            entries: list[ClientEntry] = []
            for key in keys:
                entry = clients[key]
                if entry.label is not None and entry.label != from_broker:
                    continue
                entries.append(entry)
            if len(entries) > 1:
                entries.sort(key=_ENTRY_SEQ)
            if groups:
                groups.discard(from_broker)
                out_append((sorted(groups), entries))
            else:
                out_append(([], entries))
        return out

    def match_neighbors(
        self, event: Notification, exclude: Optional[int]
    ) -> list[int]:
        """Neighbours (excluding ``exclude``) with at least one matching filter."""
        if self._engine is not None:
            groups = self._engine.match_with_groups(event)[1]
            groups.discard(exclude)
            return sorted(groups)
        out = []
        for n in self.neighbors:
            if n == exclude:
                continue
            if self._from_nbr[n].matches(event):
                out.append(n)
        return out

    def match_clients(
        self, event: Notification, from_broker: Optional[int]
    ) -> list[ClientEntry]:
        """Client entries matching ``event``, honouring MHH labels.

        A labelled entry accepts the event only when it arrived from the
        labelled neighbouring broker; locally published events
        (``from_broker is None``) never match labelled entries.
        """
        if self._engine is not None:
            return self.match(event, from_broker)[1]
        out = []
        for entry in self.clients.values():
            if entry.label is not None and entry.label != from_broker:
                continue
            if entry.filter.matches(event):
                out.append(entry)
        return out

    # ------------------------------------------------------------------
    # introspection for tests
    # ------------------------------------------------------------------
    def snapshot_broker_filters(self) -> dict[int, set]:
        return {n: set(pf.keys()) for n, pf in self._from_nbr.items()}

    def snapshot_advertised(self) -> dict[int, set]:
        return {n: set(pf.keys()) for n, pf in self._advertised.items()}
