"""Event (notification) model.

A *notification* is one published event. The paper's delivery guarantee is
per-publisher ("publisher order"): for two events from the same publisher
matching a client's filter, the one published first must arrive first
(footnote 1). Each notification therefore carries its publisher id and a
per-publisher sequence number; these also drive the duplicate filtering and
sorting inside the sub-unsub baseline's merge step.

For matching speed the primary routing attribute (``topic``) is a slot
field; arbitrary additional attributes live in an optional dict consulted
only by general (non-range) filters.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

__all__ = ["Notification"]


class Notification:
    """One published event.

    Parameters
    ----------
    event_id:
        Globally unique id (allocated by the system).
    publisher:
        Client id of the publisher.
    seq:
        Per-publisher sequence number (0, 1, 2, ... in publish order).
    publish_time:
        Simulation time at which the publisher handed the event to its
        broker (used by the merge sort of the sub-unsub baseline).
    topic:
        Primary routing attribute, a float in ``[0, 1)`` in the paper
        workload (any float is accepted).
    attrs:
        Optional additional attributes for general content-based filters.
    """

    __slots__ = (
        "event_id", "publisher", "seq", "publish_time", "topic", "attrs",
        "_attr_items",
    )

    def __init__(
        self,
        event_id: int,
        publisher: int,
        seq: int,
        publish_time: float,
        topic: float,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.event_id = event_id
        self.publisher = publisher
        self.seq = seq
        self.publish_time = publish_time
        self.topic = topic
        self.attrs = dict(attrs) if attrs else None
        self._attr_items: Optional[tuple] = None

    def attrs_items(self) -> tuple:
        """Cached ``tuple(attrs.items())`` (empty when there are none).

        One notification object is shared across its whole fan-out, and the
        wire codec re-encodes it once per wired hop — the cached pairs
        tuple makes every encode after the first allocation-free. Valid
        because events are immutable once published (nothing in the
        routing/delivery path writes ``attrs``).
        """
        items = self._attr_items
        if items is None:
            items = self._attr_items = (
                tuple(self.attrs.items()) if self.attrs else ()
            )
        return items

    def get(self, attr: str, default: Any = None) -> Any:
        """Attribute lookup used by general filters (``topic`` included)."""
        if attr == "topic":
            return self.topic
        if attr == "publisher":
            return self.publisher
        if self.attrs is None:
            return default
        return self.attrs.get(attr, default)

    # Sort key giving a total order consistent with per-publisher order.
    def order_key(self) -> tuple[float, int, int]:
        return (self.publish_time, self.publisher, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Notification(id={self.event_id}, pub={self.publisher}, "
            f"seq={self.seq}, topic={self.topic:.4f})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Notification) and other.event_id == self.event_id
        )

    def __hash__(self) -> int:
        return hash(self.event_id)
