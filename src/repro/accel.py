"""Optional mypyc-compiled accelerators for the two hot modules.

``tools/build_compiled.py`` compiles byte-identical copies of
``repro/pubsub/matching.py`` and ``repro/sim/core.py`` (staged under
``repro/_compiled/`` as ``matching`` / ``sim_core``) into C extensions
with mypyc. The pure-Python modules stay the default everywhere; the
compiled builds are opt-in via the existing engine toggles —
``matching_engine="counting-compiled"`` and ``sim_engine="lanes-compiled"``
— and the conformance fuzzer's cross-engine trace-identity lanes are the
correctness gate, exactly as for ``scan`` vs ``counting``.

This module is the only place that touches ``repro._compiled``: it probes
for the extensions and raises a :class:`~repro.errors.ConfigurationError`
naming the build step when a compiled toggle is requested on a host where
the build never ran (mypyc is an optional extra; CI's ``compiled-smoke``
job is allowed to skip where it is unavailable).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ConfigurationError

__all__ = [
    "compiled_matching_module",
    "compiled_sim_module",
    "compiled_matching_engine",
    "compiled_simulator_class",
    "compiled_status",
]


def compiled_matching_module() -> Optional[Any]:
    """The compiled matching module, or None if the extension is absent."""
    try:
        from repro._compiled import matching
    except ImportError:
        return None
    return matching


def compiled_sim_module() -> Optional[Any]:
    """The compiled scheduler module, or None if the extension is absent."""
    try:
        from repro._compiled import sim_core
    except ImportError:
        return None
    return sim_core


def compiled_matching_engine() -> Any:
    """A ``CountingMatchingEngine`` instance from the compiled build.

    Raises :class:`ConfigurationError` when the extension is absent so a
    requested ``counting-compiled`` run fails loudly instead of silently
    measuring the interpreter.
    """
    mod = compiled_matching_module()
    if mod is None:
        raise ConfigurationError(
            "matching_engine='counting-compiled' requires the mypyc "
            "extension; build it with `python tools/build_compiled.py` "
            "(needs mypy/mypyc installed) or use 'counting'"
        )
    return mod.CountingMatchingEngine()


def compiled_simulator_class() -> Any:
    """The compiled ``Simulator`` class (for ``sim_engine='lanes-compiled'``).

    Raises :class:`ConfigurationError` when the extension is absent.
    """
    mod = compiled_sim_module()
    if mod is None:
        raise ConfigurationError(
            "sim_engine='lanes-compiled' requires the mypyc extension; "
            "build it with `python tools/build_compiled.py` (needs "
            "mypy/mypyc installed) or use 'lanes'"
        )
    return mod.Simulator


def compiled_status() -> dict[str, bool]:
    """Which compiled extensions are importable (for smoke jobs / repr)."""
    return {
        "matching": compiled_matching_module() is not None,
        "sim_core": compiled_sim_module() is not None,
    }
