"""The sub-unsub baseline protocol ([9-11], paper §2).

When a client reconnects at a new broker ``Bn`` after leaving ``Bo``:

1. ``Bn`` immediately issues a fresh subscription (a new *epoch* of the
   client's filter) that floods the overlay — with covering-based pruning,
   which is why this protocol runs with covering enabled by default (the
   paper's Figure 6(a) discussion depends on it).
2. The old subscription is kept alive at ``Bo`` for a **safety interval**
   equal to the maximum message delivery time between any two stations
   (here: overlay-tree diameter x wired latency), guaranteeing the new
   subscription is installed network-wide before the old one is withdrawn.
3. After the interval, ``Bn`` asks ``Bo`` to unsubscribe (a second flood)
   and to transfer the stored queue.
4. ``Bn`` buffers events arriving for the new subscription in a second
   queue meanwhile; when the transfer completes (and at least two safety
   intervals have elapsed, so in-flight stragglers of the dual-subscription
   window have landed) it **merges**: duplicates are removed by event id,
   events are sorted into publisher order, and only then is anything handed
   to the client — hence the protocol's long handoff delay.

Frequent moving: if the client bounces onward before a handoff settles, the
next transfer request is *deferred* until the previous merge completes, so
the accumulated backlog is re-shipped hop after hop — the message-overhead
blow-up the paper shows at short connection periods.

Reliability notes: a per-root ``delivered_ids`` set filters the rare
post-merge straggler duplicates (an event can reach the new root twice, via
the direct route and via the old root's re-forwarding); stragglers arriving
at an already-unsubscribed root are dropped safely because their twin copy
is guaranteed to have reached the surviving subscription (analysis in
DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ProtocolError
from repro.pubsub.events import Notification
from repro.pubsub.filter_table import ClientEntry
from repro.pubsub import messages as m
from repro.mobility.base import MobilityProtocol
from repro.util.ids import QueueRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.broker import Broker

__all__ = ["SubUnsubProtocol"]


class _Root:
    """State of one subscription epoch rooted at one broker."""

    __slots__ = (
        "epoch",
        "key",
        "queue",            # stored/buffer queue ref (None while live)
        "handoff",          # _Handoff while this (new) root is handing off
        "delivered_ids",    # events already handed to the client from here
        "deferred_transfer",  # TransferRequest waiting for our merge
    )

    def __init__(self, epoch: int, key) -> None:
        self.epoch = epoch
        self.key = key
        self.queue: Optional[QueueRef] = None
        self.handoff: Optional["_Handoff"] = None
        self.delivered_ids: set[int] = set()
        self.deferred_transfer: Optional[m.TransferRequest] = None


class _Handoff:
    """Handoff bookkeeping at the *new* root broker."""

    __slots__ = ("old_broker", "t0", "transferred", "transfer_done",
                 "merge_scheduled")

    def __init__(self, old_broker: int, t0: float) -> None:
        self.old_broker = old_broker
        self.t0 = t0
        self.transferred: list[Notification] = []
        self.transfer_done = False
        self.merge_scheduled = False


class SubUnsubProtocol(MobilityProtocol):
    """Re-subscribe / unsubscribe handoff baseline."""

    name = "sub-unsub"
    # Covering-based pruning is implemented and fully supported
    # (``PubSubSystem(covering_enabled=True)``; see
    # benchmarks/bench_ablation_covering.py). It defaults OFF for the
    # reproduction runs: with this library's 1-D range workload, covering
    # saturates once ~10^3 subscriptions are installed (any new range is
    # almost surely contained in an existing one), which would make the
    # per-handoff floods nearly free — an artifact of the workload
    # substitution rather than of the protocol, and one that would invert
    # the paper's Figure 6(a) ordering. Without covering, floods cost
    # O(brokers) per handoff, matching the magnitude and growth the paper
    # reports (discussion in DESIGN.md and EXPERIMENTS.md).
    default_covering = False

    def __init__(self, system) -> None:
        super().__init__(system)
        self._epochs: dict[int, int] = {}
        # Safety interval: worst-case subscription propagation time on the
        # overlay ("the maximum time for message delivery between any two
        # stations" — paper §5.1).
        self.safety_interval_ms = (
            system.tree.diameter() * system.net.wired_latency
        )

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _roots(self, broker: "Broker", client: int) -> dict[int, _Root]:
        roots = broker.pstate.get(client)
        if roots is None:
            roots = {}
            broker.pstate[client] = roots
        return roots

    def _gc(self, broker: "Broker", client: int) -> None:
        roots = broker.pstate.get(client)
        if roots is not None and not roots:
            del broker.pstate[client]

    def _present(self, broker: "Broker", client: int) -> bool:
        c = self.system.clients[client]
        return c.connected and c.current_broker == broker.id

    def _next_epoch(self, client: int) -> int:
        e = self._epochs.get(client, -1) + 1
        self._epochs[client] = e
        return e

    def _deliver(self, broker: "Broker", root: _Root, client: int,
                 event: Notification) -> None:
        """Deliver with per-root duplicate suppression."""
        if event.event_id in root.delivered_ids:
            return
        root.delivered_ids.add(event.event_id)
        broker.deliver_to_client(client, event)

    # ------------------------------------------------------------------
    # life-cycle
    # ------------------------------------------------------------------
    def on_connect(
        self,
        broker: "Broker",
        client: int,
        last_broker: Optional[int],
        epoch: int = 0,
    ) -> None:
        roots = self._roots(broker, client)
        if last_broker is None:
            epoch = self._next_epoch(client)
            key = (client, epoch)
            root = _Root(epoch, key)
            roots[epoch] = root
            if self._present(broker, client):
                broker.local_subscribe(
                    client, key, self.system.clients[client].filter,
                    m.CAT_SUB_INITIAL, live=True,
                )
            else:
                q = broker.new_queue(client)
                root.queue = q.ref
                broker.local_subscribe(
                    client, key, self.system.clients[client].filter,
                    m.CAT_SUB_INITIAL, live=False, sink=q.ref.qid,
                )
            return
        if last_broker == broker.id:
            if not roots:  # pragma: no cover - defensive: last-visited broker
                raise ProtocolError(  # always holds the client's root
                    f"broker {broker.id}: same-broker reconnect without root "
                    f"(client {client})"
                )
            self._reconnect_at_root(broker, client, roots)
            return
        # silent-move handoff: re-subscribe here with a fresh epoch
        epoch = self._next_epoch(client)
        key = (client, epoch)
        root = _Root(epoch, key)
        roots[epoch] = root
        q = broker.new_queue(client)
        root.queue = q.ref
        broker.local_subscribe(
            client, key, self.system.clients[client].filter,
            m.CAT_SUB_HANDOFF, live=False, sink=q.ref.qid,
        )
        root.handoff = _Handoff(last_broker, self.clock.now)
        self.system.tracer.emit(
            "su_handoff_start", client=client, frm=last_broker, to=broker.id
        )
        self.later(
            broker, self.safety_interval_ms,
            self._send_transfer_request, broker, client, epoch,
        )

    def _reconnect_at_root(
        self, broker: "Broker", client: int, roots: dict[int, _Root]
    ) -> None:
        """Same-broker reconnect: flush the stored queue, go live.

        This (and :meth:`on_disconnect` below) flips ``entry.live`` /
        ``entry.sink`` in place on the filter-table entry. Deliberately so:
        the matching engine indexes only the entry's *filter*, and live/sink
        routing is applied after matching, so in-place flips need no engine
        resync — unlike filter changes, which must go through the
        ``FilterTable`` mutators.
        """
        root = roots[max(roots)]
        if root.handoff is not None:
            # client came back to the new root mid-handoff: the merge will
            # notice the client is present and deliver
            return
        if not self._present(broker, client):
            return
        entry = broker.table.get_entry_by_key(root.key)
        if entry is None:  # pragma: no cover - root implies entry
            raise ProtocolError("root without filter-table entry")
        if entry.live:
            return
        q = broker.get_queue(root.queue)
        for event in q.drain():
            self._deliver(broker, root, client, event)
        broker.drop_queue(root.queue)
        root.queue = None
        entry.live = True
        entry.sink = None

    def on_disconnect(self, broker: "Broker", client: int) -> None:
        roots = broker.pstate.get(client)
        if not roots:
            return
        root = roots[max(roots)]
        if root.handoff is not None:
            # mid-handoff: merge continues; it will store instead of deliver
            self._reclaim_into_root(broker, client, root)
            return
        entry = broker.table.get_entry_by_key(root.key)
        if entry is None or not entry.live:
            return  # connect still in flight, or already stored
        q = broker.new_queue(client)
        root.queue = q.ref
        entry.live = False
        entry.sink = q.ref.qid
        self._reclaim_into_root(broker, client, root)

    def _reclaim_into_root(
        self, broker: "Broker", client: int, root: _Root
    ) -> None:
        pending = self.net.reclaim_downlink(client)
        events = [p.event for p in pending if isinstance(p, m.DeliverMessage)]
        if not events:
            return
        if root.queue is None:
            q = broker.new_queue(client)
            root.queue = q.ref
            entry = broker.table.get_entry_by_key(root.key)
            if entry is not None:
                entry.live = False
                entry.sink = q.ref.qid
        # reclaimed events were never received: allow redelivery
        for ev in events:
            root.delivered_ids.discard(ev.event_id)
        broker.get_queue(root.queue).extend_front(events)

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def on_event_for_client(
        self,
        broker: "Broker",
        entry: ClientEntry,
        event: Notification,
        from_broker: Optional[int],
    ) -> None:
        roots = broker.pstate.get(entry.client)
        root = None
        if roots:
            _cid, epoch = entry.key
            root = roots.get(epoch)
        if root is None:
            # a straggler for an epoch already unsubscribed; its twin copy
            # reached the surviving subscription (DESIGN.md) — drop
            return
        if entry.live:
            self._deliver(broker, root, entry.client, event)
        else:
            broker.queues[entry.sink].append(event)

    # ------------------------------------------------------------------
    # control messages
    # ------------------------------------------------------------------
    def on_control(self, broker: "Broker", msg: m.Message, frm: int) -> None:
        t = type(msg)
        if t is m.TransferRequest:
            self._on_transfer_request(broker, msg)
        elif t is m.TransferBatch:
            self._on_transfer_batch(broker, msg)
        elif t is m.TransferDone:
            self._on_transfer_done(broker, msg)
        else:
            raise ProtocolError(
                f"sub-unsub: unexpected control message {t.__name__}"
            )

    def _send_transfer_request(
        self, broker: "Broker", client: int, epoch: int
    ) -> None:
        roots = broker.pstate.get(client)
        root = roots.get(epoch) if roots else None
        if root is None or root.handoff is None:  # pragma: no cover
            return
        self.net.unicast(
            broker.id,
            root.handoff.old_broker,
            m.TransferRequest(client, epoch, broker.id),
        )

    def _on_transfer_request(self, broker: "Broker", msg: m.TransferRequest) -> None:
        """At the old root: unsubscribe, ship the stored queue."""
        roots = broker.pstate.get(msg.client)
        candidates = [ep for ep in (roots or {}) if ep < msg.epoch]
        if not candidates:
            raise ProtocolError(
                f"broker {broker.id}: transfer request for unknown root "
                f"(client {msg.client}, epoch {msg.epoch})"
            )
        # the root being replaced is the newest epoch older than the
        # requesting one (the client may have rooted a newer epoch here by
        # bouncing back in the meantime)
        old_root = roots[max(candidates)]
        if old_root.handoff is not None:
            # this root is itself still merging an earlier handoff: the
            # paper's frequent-moving chain — defer until our merge is done
            if old_root.deferred_transfer is not None:  # pragma: no cover
                raise ProtocolError("second deferred transfer at one root")
            old_root.deferred_transfer = msg
            return
        self._execute_transfer(broker, msg, old_root)

    def _execute_transfer(
        self, broker: "Broker", msg: m.TransferRequest, old_root: _Root
    ) -> None:
        client = msg.client
        broker.local_unsubscribe_key(old_root.key, m.CAT_SUB_HANDOFF)
        self.system.tracer.emit(
            "su_unsubscribe", client=client, broker=broker.id,
            epoch=old_root.epoch,
        )
        # paced dispatch: one batch per link slot; TransferDone trails the
        # last batch on the same path (FIFO), so the merge sees everything.
        # Batches pop off the live (frozen) queue at dispatch time — same
        # timers and contents as an upfront drain, but unshipped events stay
        # visible to a crash-repair round instead of hiding in closures.
        qref = old_root.queue
        q = None
        n_batches = 0
        batch_size = self.system.migration_batch_size
        if qref is not None:
            q = broker.get_queue(qref)
            q.freeze()
            n_batches = -(-len(q) // batch_size)
        pacing = self.system.stream_pacing_ms

        def send_batch():
            batch = [q.popleft() for _ in range(min(len(q), batch_size))]
            if batch:
                self.net.unicast(
                    broker.id, msg.new_broker,
                    m.TransferBatch(client, msg.epoch, batch),
                )

        for i in range(n_batches):
            if i == 0:
                send_batch()
            else:
                self.later(broker, i * pacing, send_batch)
        done = m.TransferDone(
            client, msg.epoch, frozenset(old_root.delivered_ids)
        )

        def send_done():
            if qref is not None:
                broker.drop_queue(qref)
            self.net.unicast(broker.id, msg.new_broker, done)

        delay = (n_batches - 1) * pacing if n_batches > 1 else 0.0
        self.later(broker, delay, send_done)
        roots = broker.pstate[client]
        del roots[old_root.epoch]
        self._gc(broker, client)

    def _on_transfer_batch(self, broker: "Broker", msg: m.TransferBatch) -> None:
        root = self._root_for_epoch(broker, msg.client, msg.epoch)
        if root.handoff is None:
            raise ProtocolError(
                f"broker {broker.id}: transfer batch outside handoff "
                f"(client {msg.client})"
            )
        root.handoff.transferred.extend(msg.events)

    def _on_transfer_done(self, broker: "Broker", msg: m.TransferDone) -> None:
        root = self._root_for_epoch(broker, msg.client, msg.epoch)
        handoff = root.handoff
        if handoff is None or handoff.transfer_done:
            raise ProtocolError(
                f"broker {broker.id}: unexpected transfer_done "
                f"(client {msg.client})"
            )
        handoff.transfer_done = True
        root.delivered_ids |= msg.delivered_ids
        # Merge no earlier than t0 + 2 * safety interval so dual-window
        # stragglers have landed in one of the two queues (DESIGN.md).
        merge_at = handoff.t0 + 2.0 * self.safety_interval_ms
        delay = max(0.0, merge_at - self.clock.now)
        handoff.merge_scheduled = True
        self.later(broker, delay, self._merge, broker, msg.client, root)

    def _root_for_epoch(self, broker: "Broker", client: int, epoch: int) -> _Root:
        roots = broker.pstate.get(client)
        root = roots.get(epoch) if roots else None
        if root is None:
            raise ProtocolError(
                f"broker {broker.id}: no root epoch {epoch} for client {client}"
            )
        return root

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def _merge(self, broker: "Broker", client: int, root: _Root) -> None:
        handoff = root.handoff
        if handoff is None:  # pragma: no cover
            raise ProtocolError("merge without handoff state")
        root.handoff = None
        entry = broker.table.get_entry_by_key(root.key)
        if entry is None:  # pragma: no cover
            raise ProtocolError("merge at a root whose entry vanished")
        buffered = broker.get_queue(root.queue).drain()
        combined: dict[int, Notification] = {}
        for event in handoff.transferred + buffered:
            combined.setdefault(event.event_id, event)
        ordered = sorted(combined.values(), key=lambda e: e.order_key())
        self.system.tracer.emit(
            "su_merge", client=client, broker=broker.id,
            merged=len(ordered),
            dupes=len(handoff.transferred) + len(buffered) - len(ordered),
        )
        if self._present(broker, client):
            for event in ordered:
                self._deliver(broker, root, client, event)
            broker.drop_queue(root.queue)
            root.queue = None
            entry.live = True
            entry.sink = None
        else:
            # client moved on (or is offline): the merged backlog becomes the
            # stored queue of what is now the client's last-visited root
            q = broker.get_queue(root.queue)
            for event in ordered:
                if event.event_id not in root.delivered_ids:
                    q.append(event)
        if root.deferred_transfer is not None:
            msg, root.deferred_transfer = root.deferred_transfer, None
            self._execute_transfer(broker, msg, root)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def install_recovered(self, broker, client, backlog):
        """Repair-round install: a fresh stored root seeded with the
        gathered backlog; a synthesized ``on_connect`` (same-broker
        reconnect) flushes it for clients that were connected."""
        roots = self._roots(broker, client.id)
        epoch = self._next_epoch(client.id)
        key = (client.id, epoch)
        root = _Root(epoch, key)
        roots[epoch] = root
        q = broker.new_queue(client.id)
        for event in backlog:
            q.append(event)
        root.queue = q.ref
        entry = ClientEntry(
            client.id, key, client.filter, live=False, sink=q.ref.qid
        )
        broker.table.set_client_entry(entry)
        return entry

    def on_repair_reset(self) -> None:
        # the repaired overlay has a new diameter; handoffs started after
        # the repair must wait out its worst-case propagation time
        self.safety_interval_ms = (
            self.system.tree.diameter() * self.system.net.wired_latency
        )

    def gather_stray(self, broker: "Broker"):
        for client, roots in broker.pstate.items():
            if not isinstance(roots, dict):
                continue
            for root in roots.values():
                if root.handoff is not None:
                    for event in root.handoff.transferred:
                        yield (client, event)

    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        for broker in self.system.brokers.values():
            for roots in broker.pstate.values():
                if isinstance(roots, dict):
                    for root in roots.values():
                        if root.handoff is not None or root.deferred_transfer:
                            return False
        return True
