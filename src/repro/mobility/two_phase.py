"""Two-phase handoff — a model of the authors' earlier protocol ([12]).

The paper positions MHH against the authors' own prior two-phase handoff
protocol: "there may be conflicts among the concurrent handoff processes
executing the protocol and, consequently, some events may be delayed ...
In contrast, the handoff process of a client in the MHH protocol does not
affect the event delivery of other clients" (§2).

We model the two phases as **prepare/commit around the event migration**:
before streaming the PQlist, the coordinator (old anchor) must acquire an
exclusive *transfer grant* from every broker on the transfer path
(phase one — prepare); it streams and then releases them (phase two —
commit). Grants are requested in ascending broker-id order, which makes
the protocol deadlock-free (no circular wait), but concurrent handoffs
whose paths intersect serialize: their event migrations — and therefore
their clients' first deliveries — wait in line. Grant traffic itself also
costs control hops. The subscription-migration machinery is untouched (its
FIFO-based capture correctness must not be tampered with — see the
analysis in DESIGN.md), so the protocol remains exactly-once; it is just
slower under concurrency, which is precisely the paper's criticism.

This is an extension/ablation implementation, not a reproduction target:
the paper's evaluation does not include [12]. ``bench_ablation_two_phase``
compares it with MHH under concurrent movement.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.errors import ProtocolError
from repro.pubsub import messages as m
from repro.pubsub.messages import Message, CAT_MOBILITY_CTRL
from repro.mobility.mhh import MHHProtocol, _Anchor

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.broker import Broker

__all__ = ["TwoPhaseProtocol", "GrantRequest", "GrantAck", "GrantRelease"]


class GrantRequest(Message):
    """Coordinator -> path broker: reserve the transfer lane (prepare)."""

    __slots__ = ("client", "coordinator")
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int, coordinator: int) -> None:
        self.client = client
        self.coordinator = coordinator


class GrantAck(Message):
    """Path broker -> coordinator: lane reserved for you."""

    __slots__ = ("client", "granter")
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int, granter: int) -> None:
        self.client = client
        self.granter = granter


class GrantRelease(Message):
    """Coordinator -> path broker: transfer finished (commit done)."""

    __slots__ = ("client",)
    category = CAT_MOBILITY_CTRL

    def __init__(self, client: int) -> None:
        self.client = client


class _Prepare:
    """Grant-acquisition state at a coordinator."""

    __slots__ = ("targets", "acquired", "anchor")

    def __init__(self, targets: list[int], anchor: _Anchor) -> None:
        self.targets = targets      # ascending broker ids still to acquire
        self.acquired: list[int] = []
        self.anchor = anchor


class TwoPhaseProtocol(MHHProtocol):
    """MHH with a prepare/commit grant phase around event migration
    (models [12])."""

    name = "two-phase"

    def __init__(self, system) -> None:
        super().__init__(system)
        # per-broker transfer lane: holder client id + waiting requests
        self._lane_holder: dict[int, int] = {}
        self._lane_queue: dict[int, deque[GrantRequest]] = {}
        # per-client prepare state at the coordinating broker
        self._preparing: dict[tuple[int, int], _Prepare] = {}
        # lanes currently held by a (coordinator broker, client) pair
        self._held: dict[tuple[int, int], list[int]] = {}
        #: number of grant requests that had to wait (ablation metric)
        self.conflicts = 0

    # ------------------------------------------------------------------
    # hook: instead of streaming on first ack, run the prepare phase
    # ------------------------------------------------------------------
    def _stream_next(self, broker: "Broker", client: int, anchor: _Anchor) -> None:
        key = (broker.id, client)
        if (
            key not in self._preparing
            and key not in self._held
            and anchor.out_migration is not None
            and anchor.out_migration.remaining
        ):
            om = anchor.out_migration
            path = self.system.paths.path(broker.id, om.dest)
            targets = sorted(set(path))
            rec = self.system.recovery
            if rec is not None:
                # a dead broker holds no lane and can never answer a
                # GrantRequest; asking it would hang the prepare forever
                targets = [t for t in targets if not rec.is_down(t)]
            prep = _Prepare(targets, anchor)
            self._preparing[key] = prep
            self._request_next_grant(broker, client, prep)
            return
        super()._stream_next(broker, client, anchor)

    def _request_next_grant(
        self, broker: "Broker", client: int, prep: _Prepare
    ) -> None:
        if not prep.targets:
            # prepare complete: stream (phase two)
            key = (broker.id, client)
            del self._preparing[key]
            self._held[key] = prep.acquired
            anchor = prep.anchor
            if anchor.out_migration is None:  # pragma: no cover
                raise ProtocolError("prepare finished without migration")
            super()._stream_next(broker, client, anchor)
            return
        target = prep.targets[0]
        self.net.unicast(
            broker.id, target, GrantRequest(client, broker.id)
        )

    # ------------------------------------------------------------------
    # grant handling at path brokers
    # ------------------------------------------------------------------
    def on_control(self, broker: "Broker", msg: m.Message, frm: int) -> None:
        t = type(msg)
        if t is GrantRequest:
            self._on_grant_request(broker, msg)
        elif t is GrantAck:
            self._on_grant_ack(broker, msg)
        elif t is GrantRelease:
            self._on_grant_release(broker, msg)
        else:
            super().on_control(broker, msg, frm)

    def _on_grant_request(self, broker: "Broker", msg: GrantRequest) -> None:
        holder = self._lane_holder.get(broker.id)
        if holder is None:
            self._lane_holder[broker.id] = msg.client
            self.net.unicast(
                broker.id, msg.coordinator, GrantAck(msg.client, broker.id)
            )
        else:
            self.conflicts += 1
            self.system.tracer.emit(
                "tp_conflict", broker=broker.id, client=msg.client,
                holder=holder,
            )
            self._lane_queue.setdefault(broker.id, deque()).append(msg)

    def _on_grant_ack(self, broker: "Broker", msg: GrantAck) -> None:
        prep = self._preparing.get((broker.id, msg.client))
        if prep is None:
            # the prepare was aborted (migration stopped) while this grant
            # was in flight or queued: hand the lane straight back
            self.net.unicast(
                broker.id, msg.granter, GrantRelease(msg.client)
            )
            return
        if not prep.targets or prep.targets[0] != msg.granter:
            raise ProtocolError(
                f"broker {broker.id}: unexpected grant ack from {msg.granter} "
                f"(client {msg.client})"
            )
        prep.targets.pop(0)
        prep.acquired.append(msg.granter)
        self._request_next_grant(broker, msg.client, prep)

    def _on_grant_release(self, broker: "Broker", msg: GrantRelease) -> None:
        if self._lane_holder.get(broker.id) != msg.client:
            raise ProtocolError(
                f"broker {broker.id}: release from non-holder "
                f"(client {msg.client})"
            )
        del self._lane_holder[broker.id]
        queue = self._lane_queue.get(broker.id)
        if queue:
            nxt = queue.popleft()
            if not queue:
                del self._lane_queue[broker.id]
            self._lane_holder[broker.id] = nxt.client
            self.net.unicast(
                broker.id, nxt.coordinator, GrantAck(nxt.client, broker.id)
            )

    # ------------------------------------------------------------------
    # release on completion or stop
    # ------------------------------------------------------------------
    def _release_all(self, broker: "Broker", client: int) -> None:
        key = (broker.id, client)
        # abort a prepare still in progress: lanes already acquired are
        # released now; the in-flight request (if any) is handed back by the
        # stale-ack path in _on_grant_ack
        prep = self._preparing.pop(key, None)
        lanes = list(self._held.pop(key, []))
        if prep is not None:
            lanes.extend(prep.acquired)
        for lane in lanes:
            self.net.unicast(broker.id, lane, GrantRelease(client))

    def _queue_done(self, broker: "Broker", client: int, anchor, ref) -> None:
        super()._queue_done(broker, client, anchor, ref)
        if anchor.out_migration is None:
            # the migration finished (deliver_TQ launched): commit complete
            self._release_all(broker, client)

    def _do_stop(self, broker: "Broker", client: int, anchor) -> None:
        super()._do_stop(broker, client, anchor)
        if anchor.out_migration is None:
            self._release_all(broker, client)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def on_repair_reset(self) -> None:
        # lane grants are scoped to the pre-repair overlay: every handoff
        # they guarded was wiped, so release everything (the repair round
        # reinstalls subscriptions from ground truth; holding stale lanes
        # would serialize — or deadlock — post-repair handoffs against
        # migrations that no longer exist)
        self._lane_holder.clear()
        self._lane_queue.clear()
        self._preparing.clear()
        self._held.clear()

    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        if self._preparing or self._held or any(self._lane_queue.values()):
            return False
        return super().quiescent()
