"""Ablation variants of the protocols (benchmark support).

These are not reproduction targets; they isolate individual design choices
called out in DESIGN.md so the ablation benches can quantify them.
"""

from __future__ import annotations

from repro.mobility.mhh import MHHProtocol

__all__ = ["MHHNoPQListProtocol"]


class MHHNoPQListProtocol(MHHProtocol):
    """MHH without the §4.3 frequent-moving extension.

    ``stop_event_migration`` is never issued: when a client moves on before
    its event migration finishes, the migration simply completes at the
    abandoned destination and the whole (ever-growing) backlog is re-shipped
    by the next handoff. ``bench_ablation_pqlist`` shows the overhead this
    adds at short connection periods — the problem the distributed PQlist
    exists to solve.
    """

    name = "mhh-nopqlist"
    enable_stop = False
