"""Protocol registry: name -> factory."""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobility.base import MobilityProtocol
    from repro.pubsub.system import PubSubSystem


def _mhh(system: "PubSubSystem") -> "MobilityProtocol":
    from repro.mobility.mhh import MHHProtocol

    return MHHProtocol(system)


def _sub_unsub(system: "PubSubSystem") -> "MobilityProtocol":
    from repro.mobility.sub_unsub import SubUnsubProtocol

    return SubUnsubProtocol(system)


def _home_broker(system: "PubSubSystem") -> "MobilityProtocol":
    from repro.mobility.home_broker import HomeBrokerProtocol

    return HomeBrokerProtocol(system)


def _two_phase(system: "PubSubSystem") -> "MobilityProtocol":
    from repro.mobility.two_phase import TwoPhaseProtocol

    return TwoPhaseProtocol(system)


def _mhh_nopqlist(system: "PubSubSystem") -> "MobilityProtocol":
    from repro.mobility.ablations import MHHNoPQListProtocol

    return MHHNoPQListProtocol(system)


#: the protocols selectable by name in :class:`~repro.pubsub.system.PubSubSystem`
PROTOCOLS: dict[str, Callable[["PubSubSystem"], "MobilityProtocol"]] = {
    "mhh": _mhh,
    "sub-unsub": _sub_unsub,
    "home-broker": _home_broker,
    "two-phase": _two_phase,
    "mhh-nopqlist": _mhh_nopqlist,
}


def factory(name: str) -> Callable[["PubSubSystem"], "MobilityProtocol"]:
    """Look up a protocol factory by registry name."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown mobility protocol {name!r}; "
            f"available: {sorted(PROTOCOLS)}"
        ) from None
