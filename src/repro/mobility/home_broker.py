"""The home-broker baseline protocol ([9], paper §2) — Mobile-IP style.

Every client is assigned a **home broker** (its initial attachment point).
The client's subscription lives at the home broker permanently; events for
the client always route through it. When the client is connected at a
*foreign* broker, the home broker forwards each event over the grid
shortest path (triangle routing — the overhead that grows with network
size in Figure 6(a)). Stored backlog is forwarded in bulk at registration.

The protocol is deliberately **unreliable**, exactly as the paper analyses:

* events forwarded to a foreign broker the client has meanwhile left are
  dropped there and counted as lost;
* events that arrive at the home broker between the client's disconnection
  and the deregistration message's arrival are forwarded into the void and
  lost the same way;
* events sitting untransmitted in the foreign broker's wireless downlink
  when the client detaches are lost (there is no queue-reclaim protocol —
  nothing would come back for them).

Registration epochs guard against register/deregister reordering when the
client moves between foreign brokers faster than the control messages
travel.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ProtocolError
from repro.pubsub.events import Notification
from repro.pubsub.filter_table import ClientEntry
from repro.pubsub import messages as m
from repro.mobility.base import MobilityProtocol
from repro.util.ids import QueueRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.broker import Broker

__all__ = ["HomeBrokerProtocol"]

_AT_HOME = -1  # sentinel for "client connected at the home broker"


class _HomeState:
    """Home-broker-side record for one client."""

    __slots__ = ("location", "queue", "last_epoch", "draining")

    def __init__(self) -> None:
        # None = disconnected; _AT_HOME = here; otherwise foreign broker id
        self.location: Optional[int] = None
        self.queue: Optional[QueueRef] = None
        self.last_epoch = -1
        #: a paced stored-backlog drain toward a foreign broker is running;
        #: meanwhile fresh events append to the queue (order preservation)
        self.draining = False


class _ForeignState:
    """Foreign-broker-side record: the client is attached here."""

    __slots__ = ("epoch",)

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch


class HomeBrokerProtocol(MobilityProtocol):
    """Mobile-IP-style home-broker handoff baseline."""

    name = "home-broker"
    default_covering = True

    def __init__(self, system) -> None:
        super().__init__(system)
        self._epochs: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _present(self, broker: "Broker", client: int) -> bool:
        c = self.system.clients[client]
        return c.connected and c.current_broker == broker.id

    def _next_epoch(self, client: int) -> int:
        e = self._epochs.get(client, -1) + 1
        self._epochs[client] = e
        return e

    def _home_state(self, broker: "Broker", client: int) -> _HomeState:
        st = broker.pstate.get(client)
        if not isinstance(st, _HomeState):
            raise ProtocolError(
                f"broker {broker.id}: no home state for client {client}"
            )
        return st

    # ------------------------------------------------------------------
    # life-cycle
    # ------------------------------------------------------------------
    def on_connect(
        self,
        broker: "Broker",
        client: int,
        last_broker: Optional[int],
        epoch: int = 0,
    ) -> None:
        home = self.system.clients[client].home_broker
        if last_broker is None:
            if broker.id != home:
                raise ProtocolError(
                    "home-broker protocol requires the first attachment at "
                    f"the home broker (client {client}: home {home}, "
                    f"got {broker.id})"
                )
            st = _HomeState()
            broker.pstate[client] = st
            filt = self.system.clients[client].filter
            broker.local_subscribe(
                client, ("hb", client), filt, m.CAT_SUB_INITIAL, live=False
            )
            if self._present(broker, client):
                st.location = _AT_HOME
            else:
                st.location = None
                st.queue = broker.new_queue(client).ref
            return
        if broker.id == home:
            # reconnect at home: no registration round needed
            st = self._home_state(broker, client)
            st.last_epoch = self._next_epoch(client)
            if not self._present(broker, client):
                return
            st.location = _AT_HOME
            self._flush_home_queue(broker, client, st)
            return
        # reconnect at a foreign broker: register with home
        epoch = self._next_epoch(client)
        broker.pstate[client] = _ForeignState(epoch)
        self.system.tracer.emit(
            "hb_register", client=client, foreign=broker.id, home=home
        )
        self.net.unicast(
            broker.id, home, m.Register(client, broker.id, epoch)
        )

    def _flush_home_queue(
        self, broker: "Broker", client: int, st: _HomeState
    ) -> None:
        if st.queue is None:
            return
        st.draining = False  # local flush supersedes any remote drain
        q = broker.get_queue(st.queue)
        for event in q.drain():
            broker.deliver_to_client(client, event)
        broker.drop_queue(st.queue)
        st.queue = None

    def on_disconnect(self, broker: "Broker", client: int) -> None:
        home = self.system.clients[client].home_broker
        if broker.id == home:
            st = self._home_state(broker, client)
            if st.location != _AT_HOME:
                return  # connect message still in flight
            st.location = None
            if st.queue is None:
                st.queue = broker.new_queue(client).ref
            # reclaim untransmitted downlink events into the stored queue
            pending = self.net.reclaim_downlink(client)
            events = [
                p.event for p in pending if isinstance(p, m.DeliverMessage)
            ]
            if events:
                broker.get_queue(st.queue).extend_front(events)
            return
        st = broker.pstate.get(client)
        if not isinstance(st, _ForeignState):
            return  # connect message still in flight
        del broker.pstate[client]
        # untransmitted downlink events are lost: the home broker has already
        # forwarded them and the foreign broker has nowhere to send them
        pending = self.net.reclaim_downlink(client)
        for p in pending:
            if isinstance(p, m.DeliverMessage):
                self.system.metrics.on_loss(client, p.event)
        self.net.unicast(
            broker.id, home, m.Deregister(client, st.epoch)
        )

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def on_event_for_client(
        self,
        broker: "Broker",
        entry: ClientEntry,
        event: Notification,
        from_broker: Optional[int],
    ) -> None:
        # the only filter-table entry for a client lives at its home broker
        st = self._home_state(broker, entry.client)
        if st.location == _AT_HOME:
            broker.deliver_to_client(entry.client, event)
        elif st.location is None or st.draining:
            # disconnected, or the stored backlog is still being drained to
            # the foreign broker: append behind it to preserve order
            if st.queue is None:  # pragma: no cover - invariant
                raise ProtocolError("disconnected client without a queue")
            broker.get_queue(st.queue).append(event)
        else:
            self.net.unicast(
                broker.id, st.location, m.ForwardedEvent(entry.client, event)
            )

    # ------------------------------------------------------------------
    # control messages
    # ------------------------------------------------------------------
    def on_control(self, broker: "Broker", msg: m.Message, frm: int) -> None:
        t = type(msg)
        if t is m.Register:
            self._on_register(broker, msg)
        elif t is m.Deregister:
            self._on_deregister(broker, msg)
        elif t is m.ForwardedEvent:
            self._on_forwarded(broker, msg.client, [msg.event])
        elif t is m.ForwardedBatch:
            self._on_forwarded(broker, msg.client, msg.events)
        else:
            raise ProtocolError(
                f"home-broker: unexpected control message {t.__name__}"
            )

    def _on_register(self, broker: "Broker", msg: m.Register) -> None:
        st = self._home_state(broker, msg.client)
        if msg.epoch <= st.last_epoch:
            return  # stale registration overtaken by a newer one
        st.last_epoch = msg.epoch
        st.location = msg.foreign
        if st.queue is not None and len(broker.get_queue(st.queue)):
            if not st.draining:
                st.draining = True
                self._drain_step(broker, msg.client)
        elif st.queue is not None:
            broker.drop_queue(st.queue)
            st.queue = None

    def _drain_step(self, broker: "Broker", client: int) -> None:
        """Ship one stored batch per link slot toward the current foreign
        location; stop when empty or the client's situation changed."""
        st = self._home_state(broker, client)
        if not st.draining:
            return
        if st.location is None or st.location == _AT_HOME or st.queue is None:
            st.draining = False  # superseded by disconnect / home reconnect
            return
        q = broker.get_queue(st.queue)
        batch = [q.popleft() for _ in range(
            min(len(q), self.system.migration_batch_size)
        )]
        if batch:
            self.net.unicast(
                broker.id, st.location, m.ForwardedBatch(client, batch)
            )
        if len(q):
            self.later(
                broker, max(self.system.stream_pacing_ms, 1e-9),
                self._drain_step, broker, client,
            )
        else:
            st.draining = False
            broker.drop_queue(st.queue)
            st.queue = None

    def _on_deregister(self, broker: "Broker", msg: m.Deregister) -> None:
        st = self._home_state(broker, msg.client)
        if msg.epoch != st.last_epoch:
            return  # a newer registration already superseded this one
        st.location = None
        if st.queue is None:
            st.queue = broker.new_queue(msg.client).ref

    def _on_forwarded(
        self, broker: "Broker", client: int, events: list[Notification]
    ) -> None:
        st = broker.pstate.get(client)
        if isinstance(st, _ForeignState) and self._present(broker, client):
            for event in events:
                broker.deliver_to_client(client, event)
        else:
            # the client left this foreign broker while the events were in
            # transit: irrecoverably lost (the paper's reliability gap)
            for event in events:
                self.system.tracer.emit(
                    "hb_loss", client=client, broker=broker.id,
                    event=event.event_id,
                )
                self.system.metrics.on_loss(client, event)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recovery_anchor(self, client, alive, default):
        # the subscription entry must live at the home broker; if the home
        # died, the client is re-homed to the nearest live broker (lowest id
        # on ties) — deterministic, and permanent like any home assignment
        if client.home_broker not in alive:
            paths = self.system.paths
            old_home = client.home_broker
            client.home_broker = min(
                alive, key=lambda b: (paths.hop_count(old_home, b), b)
            )
            self.system.tracer.emit(
                "hb_rehome", client=client.id, frm=old_home,
                to=client.home_broker,
            )
        return client.home_broker

    def install_recovered(self, broker, client, backlog):
        """Repair-round install at the (possibly re-assigned) home broker:
        a disconnected-state record whose stored queue holds the backlog.
        The synthesized ``on_connect`` then follows the normal reconnect
        paths (flush at home, register from a foreign broker)."""
        st = _HomeState()
        st.location = None
        q = broker.new_queue(client.id)
        for event in backlog:
            q.append(event)
        st.queue = q.ref
        broker.pstate[client.id] = st
        entry = ClientEntry(
            client.id, ("hb", client.id), client.filter, live=False
        )
        broker.table.set_client_entry(entry)
        return entry

    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        return True  # no multi-step machinery beyond in-flight messages
