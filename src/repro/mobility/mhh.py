"""MHH: the Multi-Hop Handoff protocol (paper §4).

Roles a broker can play for a given mobile client (kept in
``broker.pstate[client]``, all optional and simultaneously possible):

* **anchor** — the broker where the client's subscription currently roots.
  While the client is connected its entry is *live*; while disconnected the
  anchor hosts the open *tail* queue absorbing newly arriving events. The
  anchor coordinates outgoing migrations (the paper's ``Bo``) and receives
  incoming ones (the paper's ``Bn``).
* **transit** — a broker on the tree path of an active subscription
  migration, holding a temporary queue (TQ) behind a labelled filter-table
  entry that captures in-transit events (§4.1 steps 1-5).

Protocol walk-through (silent move, §4.2)
-----------------------------------------
1. The client reconnects at ``Bn``; ``Bn`` sends ``handoff_request`` to the
   last-visited broker (the current anchor ``Bo``).
2. ``Bo`` labels its client entry with the first hop ``B1``, installs a
   forwarding entry toward ``B1``, and sends ``sub_migration`` along the
   tree path. Each transit broker flips its table entries, creates a TQ
   behind a labelled entry, acks backwards, and forwards the migration.
   FIFO links + ack-triggered entry deletion guarantee every in-transit
   event is captured in exactly one queue (argument in DESIGN.md;
   property-tested in ``tests/test_mhh_properties.py``).
3. On the first ack ``Bo`` — the coordinator — streams the client's
   **PQlist** (the ordered, broker-distributed set of stored-event queues,
   §4.3) to ``Bn`` queue by queue (``fetch_queue`` / ``queue_streamed``),
   then launches the ``deliver_TQ`` token down the path; each transit
   broker drains its TQ to ``Bn`` and forwards the token. Token arrival at
   ``Bn`` completes the migration.
4. ``Bn`` buffers newly arriving events in an *arrivals* queue while
   handing migrated events to the client immediately through the serial
   wireless downlink, then flushes the arrivals queue and goes live. The
   client therefore receives its first event after roughly one control
   round-trip plus one stored-event flight — the paper's short handoff
   delay.

Frequent moving (§4.3): if the client disconnects mid-migration, ``Bn``
sends ``stop_event_migration``; the coordinator finishes the queue in
flight, redirects the TQ drain to itself (into a fresh ``PQ_tq``), and the
relinked PQlist ``[immigrant-rest] + unstreamed + [PQ_tq] + [arrivals]``
waits, distributed across brokers, for the next reconnection — the stored
backlog is never shuttled around by moves that happen faster than it could
be shipped.

Convergence under arbitrary movement: every (re)connect at a new broker
issues exactly one ``handoff_request`` aimed at the previous connect
location, so requests daisy-chain through the sequence of brokers the
client visits; each anchor serves at most one request at a time and defers
the next until it has settled. Requests are stamped with the client's
monotone **connect epoch** (carried by ``connect``, ``handoff_request``
and ``sub_migration``): a broker drops any request older than the newest
epoch it has witnessed for the client, and a pending request is superseded
by a newer one. The freshest request always aims at the client's latest
location, so the subscription chases the client along ever-newer epochs
and settles where the client last connected — even when reconnects outrun
the control messages of earlier moves (a client may return to its settled
anchor before the handoff request of an abandoned reconnect has arrived;
without epochs that stale request would drag the subscription away from a
live client with nothing left to chase it back).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ProtocolError
from repro.pubsub.events import Notification
from repro.pubsub.filter_table import ClientEntry
from repro.pubsub import messages as m
from repro.mobility.base import MobilityProtocol
from repro.util.ids import QueueRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.broker import Broker
    from repro.pubsub.system import PubSubSystem

__all__ = ["MHHProtocol"]


class _OutMigration:
    """Coordinator state at the old anchor (the paper's ``Bo``)."""

    __slots__ = ("dest", "first_hop", "ack_received", "remaining", "current",
                 "stop_requested", "local_job")

    def __init__(self, dest: int, first_hop: int, remaining: list[QueueRef]) -> None:
        self.dest = dest
        self.first_hop = first_hop
        self.ack_received = False
        self.remaining = remaining
        self.current: Optional[QueueRef] = None
        self.stop_requested = False
        #: cancellable paced drain of a local queue (None while fetching a
        #: remote one — remote fetches run to completion, §4.3 models the
        #: stop at the coordinator)
        self.local_job: Optional["_LocalStreamJob"] = None


class _LocalStreamJob:
    """Paced, cancellable drain of one local queue toward a destination.

    One batch leaves per ``stream_pacing_ms``; a ``stop_event_migration``
    cancels the job between batches, leaving the remainder in the queue —
    this is exactly the paper's "Bo stops the event migration" (§4.3).
    """

    __slots__ = ("protocol", "broker", "client", "ref", "dest", "append_to",
                 "on_complete", "cancelled")

    def __init__(self, protocol, broker, client, ref, dest, append_to,
                 on_complete) -> None:
        self.protocol = protocol
        self.broker = broker
        self.client = client
        self.ref = ref
        self.dest = dest
        self.append_to = append_to
        self.on_complete = on_complete
        self.cancelled = False
        broker.get_queue(ref).freeze()
        self._step()

    def _step(self) -> None:
        if self.cancelled:
            return
        protocol = self.protocol
        system = protocol.system
        q = self.broker.get_queue(self.ref)
        batch = [
            q.popleft()
            for _ in range(min(len(q), system.migration_batch_size))
        ]
        if batch:
            protocol.net.unicast(
                self.broker.id, self.dest,
                m.MigrateBatch(self.client, batch, self.append_to),
            )
        if len(q):
            protocol.later(
                self.broker, max(system.stream_pacing_ms, 1e-9), self._step
            )
        else:
            self.broker.drop_queue(self.ref)
            self.on_complete()

    def cancel(self) -> None:
        """Halt between batches; the queue keeps its remainder (frozen)."""
        self.cancelled = True


class _InMigration:
    """Receiver state at the new anchor (the paper's ``Bn``)."""

    __slots__ = ("old_anchor", "immigrant", "arrivals", "deliver_live", "stop_sent")

    def __init__(
        self, old_anchor: int, immigrant: QueueRef, arrivals: QueueRef,
        deliver_live: bool,
    ) -> None:
        self.old_anchor = old_anchor
        self.immigrant = immigrant
        self.arrivals = arrivals
        self.deliver_live = deliver_live
        self.stop_sent = False


class _SelfMigration:
    """Draining a distributed PQlist to a client connected at the anchor."""

    __slots__ = ("remaining", "current", "immigrant", "deliver_live",
                 "stop_requested")

    def __init__(self, remaining: list[QueueRef]) -> None:
        self.remaining = remaining
        self.current: Optional[QueueRef] = None
        self.immigrant: Optional[QueueRef] = None  # created on mid-drain stop
        self.deliver_live = True
        self.stop_requested = False


class _Anchor:
    """Anchor-role state."""

    __slots__ = ("key", "filter", "pqlist", "connected", "out_migration",
                 "in_migration", "self_migration")

    def __init__(self, key, filter) -> None:
        self.key = key
        self.filter = filter
        #: ordered queue refs; while disconnected the last one is the open tail
        self.pqlist: list[QueueRef] = []
        self.connected = False
        self.out_migration: Optional[_OutMigration] = None
        self.in_migration: Optional[_InMigration] = None
        self.self_migration: Optional[_SelfMigration] = None

    @property
    def busy(self) -> bool:
        return (
            self.out_migration is not None
            or self.in_migration is not None
            or self.self_migration is not None
        )


class _Transit:
    """Transit-role state on a migration path."""

    __slots__ = ("tq", "prev_hop", "next_hop", "dest", "frozen", "pending_deliver")

    def __init__(self, tq: QueueRef, prev_hop: int, next_hop: int, dest: int) -> None:
        self.tq = tq
        self.prev_hop = prev_hop
        self.next_hop = next_hop
        self.dest = dest
        self.frozen = False
        self.pending_deliver: Optional[m.DeliverTQ] = None


class _PreAnchor:
    """Immigrant events reaching the destination before the sub_migration.

    Migrated events travel grid shortest paths while the subscription
    migration walks the (generally longer) overlay-tree path, so the first
    stored events routinely beat the ``sub_migration`` message to ``Bn`` —
    this is precisely why the paper has ``Bn`` create the PQ3 buffer "when
    Bn receives these immigrant events" (§4.2): delivery to the client can
    start before the subscription has even finished moving.
    """

    __slots__ = ("immigrant", "deliver_live")

    def __init__(self, immigrant: QueueRef, deliver_live: bool) -> None:
        self.immigrant = immigrant
        self.deliver_live = deliver_live


class _State:
    """All MHH roles of one broker for one client."""

    __slots__ = ("anchor", "transit", "pre_anchor", "pending_handoff", "epoch")

    def __init__(self) -> None:
        self.anchor: Optional[_Anchor] = None
        self.transit: Optional[_Transit] = None
        self.pre_anchor: Optional[_PreAnchor] = None
        self.pending_handoff: Optional[m.HandoffRequest] = None
        #: highest connect epoch witnessed here for this client (via
        #: connects, handoff requests, or sub_migrations); anything older
        #: is a superseded race remnant
        self.epoch = -1

    @property
    def empty(self) -> bool:
        return (
            self.anchor is None
            and self.transit is None
            and self.pre_anchor is None
            and self.pending_handoff is None
        )


class MHHProtocol(MobilityProtocol):
    """The paper's Multi-Hop Handoff protocol."""

    name = "mhh"
    # MHH's migration surgery needs exact per-key table state on every
    # broker; covering pruning would break the §4.1 delete step (the paper
    # notes the extra machinery covering would require and leaves it out).
    default_covering = False
    #: ablation hook: with False, stop_event_migration is never sent, so a
    #: frequent mover's entire backlog is re-shipped to every broker it
    #: touches (the behaviour §4.3's PQlist exists to avoid)
    enable_stop = True

    # ------------------------------------------------------------------
    # state helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _state(broker: "Broker", client: int) -> _State:
        st = broker.pstate.get(client)
        if st is None:
            st = _State()
            broker.pstate[client] = st
        return st

    @staticmethod
    def _gc(broker: "Broker", client: int) -> None:
        st = broker.pstate.get(client)
        if st is not None and st.empty:
            del broker.pstate[client]

    def _key(self, client: int):
        return ("sub", client)

    def _present(self, broker: "Broker", client: int) -> bool:
        """Is the client attached to this broker right now?

        This is broker-local knowledge (a base station knows its attached
        terminals); we read it from the client object for convenience.
        """
        c = self.system.clients[client]
        return c.connected and c.current_broker == broker.id

    # ------------------------------------------------------------------
    # life-cycle
    # ------------------------------------------------------------------
    def on_connect(
        self,
        broker: "Broker",
        client: int,
        last_broker: Optional[int],
        epoch: int = 0,
    ) -> None:
        st = self._state(broker, client)
        if epoch > st.epoch:
            st.epoch = epoch
        if (
            st.pending_handoff is not None
            and st.pending_handoff.epoch < st.epoch
        ):
            # the client has reconnected here since that request was issued;
            # the chase it asked for is obsolete
            st.pending_handoff = None
        anchor = st.anchor
        if anchor is not None and anchor.out_migration is None:
            self._reconnect_at_anchor(broker, client, anchor)
            return
        if last_broker is None:
            self._first_attach(broker, client, st)
            return
        # Reconnect at a broker that is not the (settled) anchor: chase the
        # subscription. If last_broker is this broker, a migration toward
        # here is already in flight (proclaimed move or an earlier connect's
        # request) and nothing needs to be sent.
        if last_broker != broker.id:
            self.system.tracer.emit(
                "handoff_request", client=client, frm=broker.id, to=last_broker
            )
            self.net.unicast(
                broker.id, last_broker, m.HandoffRequest(client, broker.id, epoch)
            )
        if st.pre_anchor is not None and self._present(broker, client):
            # immigrant events already arriving ahead of the sub_migration
            pre = st.pre_anchor
            pre.deliver_live = True
            self._drain_queue_to_wireless(broker, client, pre.immigrant)
        self._gc(broker, client)

    def _first_attach(self, broker: "Broker", client: int, st: _State) -> None:
        filt = self.system.clients[client].filter
        present = self._present(broker, client)
        anchor = _Anchor(self._key(client), filt)
        if present:
            broker.local_subscribe(
                client, anchor.key, filt, m.CAT_SUB_INITIAL, live=True
            )
            anchor.connected = True
        else:
            # the client vanished inside the uplink latency window: attach
            # it offline (subscribe + store)
            tail = broker.new_queue(client)
            broker.local_subscribe(
                client, anchor.key, filt, m.CAT_SUB_INITIAL,
                live=False, sink=tail.ref.qid,
            )
            anchor.pqlist = [tail.ref]
        st.anchor = anchor
        self.system.tracer.emit("first_attach", client=client, broker=broker.id)

    def _reconnect_at_anchor(
        self, broker: "Broker", client: int, anchor: _Anchor
    ) -> None:
        present = self._present(broker, client)
        anchor.connected = present
        if not present:
            # the client left again within the uplink latency window; the
            # usual disconnect handling already ran (or was a no-op)
            return
        if anchor.in_migration is not None:
            # client arrived (or came back) at the destination mid-migration:
            # hand over what has accumulated, pass the rest through live
            im = anchor.in_migration
            im.deliver_live = True
            self._drain_queue_to_wireless(broker, client, im.immigrant)
            return
        if anchor.self_migration is not None:
            sm = anchor.self_migration
            sm.deliver_live = True
            sm.stop_requested = False
            if sm.immigrant is not None:
                self._drain_queue_to_wireless(broker, client, sm.immigrant)
                if not len(broker.get_queue(sm.immigrant)):
                    broker.drop_queue(sm.immigrant)
                    sm.immigrant = None
            return
        # idle anchor with a stored (possibly broker-distributed) PQlist
        self._start_self_migration(broker, client, anchor)

    def on_disconnect(self, broker: "Broker", client: int) -> None:
        st = broker.pstate.get(client)
        anchor = st.anchor if st is not None else None
        if anchor is None or anchor.out_migration is not None:
            # Disconnect at a broker that is not the subscription owner
            # (awaiting an inbound migration, or the old anchor after the
            # subscription left). Only early immigrant deliveries can be in
            # flight here; pull the untransmitted ones back into the buffer.
            if st is not None and st.pre_anchor is not None:
                pre = st.pre_anchor
                pre.deliver_live = False
                self._reclaim_wireless(broker, client, pre.immigrant)
            return
        anchor.connected = False
        if anchor.in_migration is not None:
            im = anchor.in_migration
            im.deliver_live = False
            self._reclaim_wireless(broker, client, im.immigrant)
            if not im.stop_sent and self.enable_stop:
                im.stop_sent = True
                self.system.tracer.emit(
                    "stop_event_migration", client=client, frm=broker.id,
                    to=im.old_anchor,
                )
                self.net.unicast(
                    broker.id, im.old_anchor, m.StopEventMigration(client)
                )
            return
        if anchor.self_migration is not None:
            sm = anchor.self_migration
            sm.deliver_live = False
            if sm.immigrant is None:
                sm.immigrant = broker.new_queue(client).ref
            self._reclaim_wireless(broker, client, sm.immigrant)
            if sm.current is None:
                self._settle_self_migration(broker, client, anchor)
            else:
                sm.stop_requested = True  # settle when the fetch completes
            return
        entry = broker.table.get_client_entry(client)
        if entry is None or not entry.live:
            # connect message still in flight (the broker never went live
            # for this session); nothing to store yet
            return
        self._go_offline(broker, client, anchor, entry)

    def _go_offline(
        self, broker: "Broker", client: int, anchor: _Anchor, entry: ClientEntry
    ) -> None:
        """Open the tail queue for a live client that just detached."""
        tail = broker.new_queue(client)
        entry.live = False
        entry.sink = tail.ref.qid
        anchor.pqlist.append(tail.ref)
        self._reclaim_wireless(broker, client, tail.ref)
        self.system.tracer.emit(
            "offline_store", client=client, broker=broker.id, queue=str(tail.ref)
        )

    def on_proclaimed_disconnect(
        self, broker: "Broker", client: int, dest: int
    ) -> None:
        self.on_disconnect(broker, client)
        if dest == broker.id:
            return
        st = broker.pstate.get(client)
        anchor = st.anchor if st is not None else None
        if anchor is None or anchor.busy:
            # Not the settled anchor (e.g. proclaimed move announced from a
            # broker the subscription never reached): the destination will
            # issue a handoff request when the client reconnects there.
            return
        self.system.tracer.emit(
            "proclaimed_move", client=client, frm=broker.id, to=dest
        )
        self._start_out_migration(broker, client, anchor, dest, st.epoch)

    # ------------------------------------------------------------------
    # control dispatch
    # ------------------------------------------------------------------
    def on_control(self, broker: "Broker", msg: m.Message, frm: int) -> None:
        t = type(msg)
        if t is m.HandoffRequest:
            self._on_handoff_request(broker, msg)
        elif t is m.SubMigration:
            self._on_sub_migration(broker, msg, frm)
        elif t is m.SubMigrationAck:
            self._on_sub_migration_ack(broker, msg, frm)
        elif t is m.FetchQueue:
            self._on_fetch_queue(broker, msg, frm)
        elif t is m.QueueStreamed:
            self._on_queue_streamed(broker, msg)
        elif t is m.MigrateBatch:
            self._on_migrate_batch(broker, msg)
        elif t is m.DeliverTQ:
            self._on_deliver_tq(broker, msg)
        elif t is m.StopEventMigration:
            self._on_stop(broker, msg)
        else:
            raise ProtocolError(f"MHH: unexpected control message {t.__name__}")

    # ------------------------------------------------------------------
    # handoff initiation
    # ------------------------------------------------------------------
    def _on_handoff_request(self, broker: "Broker", msg: m.HandoffRequest) -> None:
        st = self._state(broker, msg.client)
        if msg.epoch < st.epoch:
            # Superseded: this broker has already witnessed a newer connect
            # (the client came back here, or a newer request passed through).
            # The newest request always aims at the client's latest location,
            # so the stale one can be dropped without breaking the chase.
            self.system.tracer.emit(
                "handoff_request_stale",
                client=msg.client, broker=broker.id, epoch=msg.epoch,
            )
            self._gc(broker, msg.client)
            return
        st.epoch = msg.epoch
        anchor = st.anchor
        if anchor is None or anchor.busy:
            # Not the anchor yet, or the previous migration has not settled:
            # hold the request. A previously pending request is necessarily
            # older (lower epoch) and is superseded by this one.
            st.pending_handoff = msg
            return
        self._start_out_migration(
            broker, msg.client, anchor, msg.new_broker, msg.epoch
        )

    def _start_out_migration(
        self,
        broker: "Broker",
        client: int,
        anchor: _Anchor,
        dest: int,
        epoch: int,
    ) -> None:
        if anchor.busy:  # pragma: no cover - callers check
            raise ProtocolError(
                f"broker {broker.id}: out-migration while busy (client {client})"
            )
        entry = broker.table.require_client_entry(client)
        if entry.live:
            # A stale-but-still-binding request: the client has already come
            # back here, but the request chain must be honoured for the later
            # links of the chain to resolve. Detach delivery and migrate; the
            # chain's final link brings the subscription back.
            self._go_offline(broker, client, anchor, entry)
        if not anchor.pqlist:  # pragma: no cover - tail exists when offline
            raise ProtocolError(
                f"broker {broker.id}: out-migration with empty pqlist"
            )
        first_hop = broker.tree.next_hop(broker.id, dest)
        broker.migration_install_toward(first_hop, anchor.key, anchor.filter)
        entry.label = first_hop
        broker.migration_mirror_sent(first_hop, anchor.key)
        self.system.tracer.emit(
            "sub_migration_start", client=client, frm=broker.id, to=dest
        )
        anchor.out_migration = _OutMigration(dest, first_hop, list(anchor.pqlist))
        self.net.send_broker(
            broker.id,
            first_hop,
            m.SubMigration(
                client, anchor.key, anchor.filter, dest, tuple(anchor.pqlist),
                epoch,
            ),
        )
        anchor.pqlist = []  # ownership travels with the sub_migration

    # ------------------------------------------------------------------
    # subscription migration
    # ------------------------------------------------------------------
    def _on_sub_migration(
        self, broker: "Broker", msg: m.SubMigration, frm: int
    ) -> None:
        if broker.id == msg.dest:
            self._become_anchor(broker, msg, frm)
            return
        st = self._state(broker, msg.client)
        if msg.epoch > st.epoch:
            st.epoch = msg.epoch
        if st.transit is not None:
            raise ProtocolError(
                f"broker {broker.id}: already transit for client {msg.client}"
            )
        next_hop = broker.tree.next_hop(broker.id, msg.dest)
        broker.migration_install_toward(next_hop, msg.key, msg.filter)
        broker.migration_remove_from(frm, msg.key)
        broker.migration_mirror_received(frm, msg.key, msg.filter)
        broker.migration_mirror_sent(next_hop, msg.key)
        if broker.table.get_client_entry(msg.client) is not None:
            raise ProtocolError(
                f"broker {broker.id}: client-entry collision in transit "
                f"(client {msg.client})"
            )
        tq = broker.new_queue(msg.client)
        broker.table.set_client_entry(
            ClientEntry(
                msg.client, msg.key, msg.filter,
                label=next_hop, live=False, sink=tq.ref.qid,
            )
        )
        st.transit = _Transit(tq.ref, frm, next_hop, msg.dest)
        self.net.send_broker(
            broker.id, frm, m.SubMigrationAck(msg.client)
        )
        self.net.send_broker(broker.id, next_hop, msg)

    def _become_anchor(self, broker: "Broker", msg: m.SubMigration, frm: int) -> None:
        st = self._state(broker, msg.client)
        if msg.epoch > st.epoch:
            st.epoch = msg.epoch
        if st.anchor is not None:
            raise ProtocolError(
                f"broker {broker.id}: sub_migration arrived at existing "
                f"anchor (client {msg.client})"
            )
        if broker.table.get_client_entry(msg.client) is not None:
            raise ProtocolError(
                f"broker {broker.id}: client-entry collision at destination "
                f"(client {msg.client})"
            )
        broker.migration_remove_from(frm, msg.key)
        broker.migration_mirror_received(frm, msg.key, msg.filter)
        self.net.send_broker(
            broker.id, frm, m.SubMigrationAck(msg.client)
        )
        arrivals = broker.new_queue(msg.client)
        if st.pre_anchor is not None:
            # immigrant events outran the sub_migration; adopt their buffer
            immigrant_ref = st.pre_anchor.immigrant
            st.pre_anchor = None
        else:
            immigrant_ref = broker.new_queue(msg.client).ref
        broker.table.set_client_entry(
            ClientEntry(
                msg.client, msg.key, msg.filter,
                label=None, live=False, sink=arrivals.ref.qid,
            )
        )
        anchor = _Anchor(msg.key, msg.filter)
        anchor.pqlist = [immigrant_ref] + list(msg.pqlist) + [arrivals.ref]
        present = self._present(broker, msg.client)
        anchor.connected = present
        # the old anchor hosts the tail (always the last shipped queue)
        old_anchor = msg.pqlist[-1].broker
        anchor.in_migration = _InMigration(
            old_anchor, immigrant_ref, arrivals.ref, deliver_live=present
        )
        st.anchor = anchor
        if present and len(broker.get_queue(immigrant_ref)):
            self._drain_queue_to_wireless(broker, msg.client, immigrant_ref)
        self.system.tracer.emit(
            "anchor_formed", client=msg.client, broker=broker.id, connected=present
        )
        if not present and self.enable_stop:
            anchor.in_migration.stop_sent = True
            self.net.unicast(
                broker.id, old_anchor, m.StopEventMigration(msg.client)
            )

    def _on_sub_migration_ack(
        self, broker: "Broker", msg: m.SubMigrationAck, frm: int
    ) -> None:
        st = broker.pstate.get(client := msg.client)
        if st is None:
            raise ProtocolError(
                f"broker {broker.id}: stray sub_migration_ack (client {client})"
            )
        anchor = st.anchor
        if (
            anchor is not None
            and anchor.out_migration is not None
            and not anchor.out_migration.ack_received
        ):
            om = anchor.out_migration
            om.ack_received = True
            # stop accepting events for the client: delete the labelled entry
            broker.table.remove_client_entry(client)
            for ref in om.remaining:
                if ref.broker == broker.id:
                    broker.get_queue(ref).freeze()
            self.system.tracer.emit(
                "event_migration_start", client=client, frm=broker.id, to=om.dest
            )
            if om.stop_requested:
                self._do_stop(broker, client, anchor)
            else:
                self._stream_next(broker, client, anchor)
            return
        transit = st.transit
        if transit is None or transit.frozen:
            raise ProtocolError(
                f"broker {broker.id}: stray sub_migration_ack (client {client})"
            )
        transit.frozen = True
        broker.table.remove_client_entry(client)
        broker.get_queue(transit.tq).freeze()
        if transit.pending_deliver is not None:
            pending, transit.pending_deliver = transit.pending_deliver, None
            self._transit_drain(broker, client, st, pending)

    # ------------------------------------------------------------------
    # event migration: PQlist streaming (coordinator at the old anchor)
    # ------------------------------------------------------------------
    def _stream_next(self, broker: "Broker", client: int, anchor: _Anchor) -> None:
        om = anchor.out_migration
        assert om is not None
        if om.remaining:
            ref = om.remaining[0]
            om.current = ref
            if ref.broker == broker.id:
                om.local_job = _LocalStreamJob(
                    self, broker, client, ref, om.dest, None,
                    on_complete=lambda: self._local_queue_done(
                        broker, client, ref
                    ),
                )
            else:
                self.net.unicast(
                    broker.id, ref.broker,
                    m.FetchQueue(client, ref, om.dest, None),
                )
            return
        # every queue streamed: launch the TQ drain toward the destination
        self.system.tracer.emit(
            "deliver_tq_launch", client=client, frm=broker.id, to=om.dest
        )
        self.net.send_broker(
            broker.id,
            om.first_hop,
            m.DeliverTQ(client, om.dest, om.dest, None),
        )
        anchor.out_migration = None
        self._state(broker, client).anchor = None
        self._gc(broker, client)

    def _stream_queue_local(
        self,
        broker: "Broker",
        client: int,
        ref: QueueRef,
        dest: int,
        append_to: Optional[QueueRef],
        on_complete,
    ) -> None:
        """Stream a local queue to ``dest`` in paced batches.

        Batches leave one link-transmission slot apart (``stream_pacing_ms``)
        so shipping a backlog takes simulated time proportional to its size;
        ``on_complete`` fires after the last batch departs (scheduled after
        it, so completion messages always trail the data on FIFO links).
        """
        q = broker.get_queue(ref)
        q.freeze()
        # pop batch-by-batch off the live (frozen, so append-proof) queue at
        # dispatch time rather than draining it upfront: identical timers
        # and batches, but events not yet shipped stay visible in the queue,
        # so a crash-repair round gathers them instead of losing them
        # inside timer closures
        batch_size = self.system.migration_batch_size
        pacing = self.system.stream_pacing_ms
        n_batches = -(-len(q) // batch_size)

        def dispatch() -> None:
            batch = [q.popleft() for _ in range(min(len(q), batch_size))]
            if batch:
                self.net.unicast(
                    broker.id, dest, m.MigrateBatch(client, batch, append_to)
                )

        def complete() -> None:
            broker.drop_queue(ref)
            on_complete()

        for i in range(n_batches):
            if i == 0:
                dispatch()
            else:
                self.later(broker, i * pacing, dispatch)
        delay = (n_batches - 1) * pacing if n_batches > 1 else 0.0
        self.later(broker, delay, complete)

    def _local_queue_done(self, broker: "Broker", client: int, ref: QueueRef) -> None:
        st = broker.pstate.get(client)
        anchor = st.anchor if st is not None else None
        if anchor is None or anchor.out_migration is None:  # pragma: no cover
            raise ProtocolError(
                f"broker {broker.id}: local stream completion with no "
                f"out-migration (client {client})"
            )
        self._queue_done(broker, client, anchor, ref)

    def _on_fetch_queue(self, broker: "Broker", msg: m.FetchQueue, frm: int) -> None:
        self._stream_queue_local(
            broker, msg.client, msg.ref, msg.dest, msg.append_to,
            on_complete=lambda: self.net.unicast(
                broker.id, frm, m.QueueStreamed(msg.client, msg.ref)
            ),
        )

    def _on_queue_streamed(self, broker: "Broker", msg: m.QueueStreamed) -> None:
        st = broker.pstate.get(msg.client)
        anchor = st.anchor if st is not None else None
        if anchor is None:
            raise ProtocolError(
                f"broker {broker.id}: queue_streamed with no anchor "
                f"(client {msg.client})"
            )
        if anchor.self_migration is not None:
            self._self_migration_streamed(broker, msg.client, anchor, msg.ref)
            return
        self._queue_done(broker, msg.client, anchor, msg.ref)

    def _queue_done(
        self, broker: "Broker", client: int, anchor: _Anchor, ref: QueueRef
    ) -> None:
        om = anchor.out_migration
        if om is None or om.current != ref:
            raise ProtocolError(
                f"broker {broker.id}: unexpected queue completion {ref}"
            )
        om.current = None
        om.local_job = None
        om.remaining.pop(0)
        if om.stop_requested:
            self._do_stop(broker, client, anchor)
        else:
            self._stream_next(broker, client, anchor)

    # ------------------------------------------------------------------
    # event migration: arrival side
    # ------------------------------------------------------------------
    def _on_migrate_batch(self, broker: "Broker", msg: m.MigrateBatch) -> None:
        if msg.append_to is not None:
            q = broker.get_queue(msg.append_to)
            for event in msg.events:
                q.append(event)
            return
        st = self._state(broker, msg.client)
        anchor = st.anchor
        if anchor is None:
            # the batch outran the sub_migration (grid path vs tree path):
            # buffer it — or hand it straight to the client (paper §4.2)
            pre = st.pre_anchor
            if pre is None:
                pre = _PreAnchor(
                    broker.new_queue(msg.client).ref,
                    deliver_live=self._present(broker, msg.client),
                )
                st.pre_anchor = pre
            self._absorb(broker, msg, pre.deliver_live, pre.immigrant)
            return
        im = anchor.in_migration
        if im is not None:
            self._absorb(broker, msg, im.deliver_live, im.immigrant)
            return
        sm = anchor.self_migration
        if sm is not None:
            self._absorb(broker, msg, sm.deliver_live, sm.immigrant)
            return
        raise ProtocolError(
            f"broker {broker.id}: migrate_batch outside any migration "
            f"(client {msg.client})"
        )

    def _absorb(
        self,
        broker: "Broker",
        msg: m.MigrateBatch,
        deliver_live: bool,
        immigrant: Optional[QueueRef],
    ) -> None:
        if deliver_live:
            for event in msg.events:
                broker.deliver_to_client(msg.client, event)
        else:
            q = broker.get_queue(immigrant)
            for event in msg.events:
                q.append(event)

    # ------------------------------------------------------------------
    # TQ drain
    # ------------------------------------------------------------------
    def _on_deliver_tq(self, broker: "Broker", msg: m.DeliverTQ) -> None:
        if broker.id == msg.dest:
            self._complete_in_migration(broker, msg)
            return
        st = broker.pstate.get(msg.client)
        transit = st.transit if st is not None else None
        if transit is None:
            raise ProtocolError(
                f"broker {broker.id}: deliver_tq with no transit state "
                f"(client {msg.client})"
            )
        if not transit.frozen:
            transit.pending_deliver = msg
            return
        self._transit_drain(broker, msg.client, st, msg)

    def _transit_drain(
        self, broker: "Broker", client: int, st: _State, msg: m.DeliverTQ
    ) -> None:
        transit = st.transit
        assert transit is not None and transit.frozen
        next_hop = transit.next_hop

        def done() -> None:
            # forward the token only after the last TQ batch has departed,
            # preserving the TQ_i-before-TQ_{i+1} arrival order at the target
            st.transit = None
            self._gc(broker, client)
            self.net.send_broker(broker.id, next_hop, msg)

        self._stream_queue_local(
            broker, client, transit.tq, msg.target, msg.append_to,
            on_complete=done,
        )

    def _complete_in_migration(self, broker: "Broker", msg: m.DeliverTQ) -> None:
        st = broker.pstate.get(msg.client)
        anchor = st.anchor if st is not None else None
        if anchor is None or anchor.in_migration is None:
            raise ProtocolError(
                f"broker {broker.id}: deliver_tq completion with no "
                f"in-migration (client {msg.client})"
            )
        im = anchor.in_migration
        anchor.in_migration = None
        stopped = msg.append_to is not None
        new_list: list[QueueRef] = []
        if len(broker.get_queue(im.immigrant)):
            new_list.append(im.immigrant)
        else:
            broker.drop_queue(im.immigrant)
        new_list.extend(msg.remaining)
        if stopped:
            new_list.append(msg.append_to)
        new_list.append(im.arrivals)
        anchor.pqlist = new_list
        self.system.tracer.emit(
            "migration_complete", client=msg.client, broker=broker.id,
            stopped=stopped, queues=len(new_list),
        )
        self._anchor_settled(broker, msg.client, anchor)

    # ------------------------------------------------------------------
    # stop handling (frequent moving, §4.3)
    # ------------------------------------------------------------------
    def _on_stop(self, broker: "Broker", msg: m.StopEventMigration) -> None:
        st = broker.pstate.get(msg.client)
        anchor = st.anchor if st is not None else None
        if anchor is None or anchor.out_migration is None:
            # the stream already finished (deliver_TQ launched): per §4.3
            # the TQs continue to the destination — nothing to do
            return
        om = anchor.out_migration
        om.stop_requested = True
        if not om.ack_received:
            return  # acted upon when the ack arrives
        if om.local_job is not None:
            # §4.3: "asking Bo to stop the event migration" — halt the paced
            # drain between batches; the remainder stays in the queue and
            # keeps its place in the (relinked) PQlist
            om.local_job.cancel()
            om.local_job = None
            om.current = None
        elif om.current is not None:
            return  # a remote fetch is in flight; stop when it completes
        self._do_stop(broker, msg.client, anchor)

    def _do_stop(self, broker: "Broker", client: int, anchor: _Anchor) -> None:
        om = anchor.out_migration
        assert om is not None and om.ack_received and om.current is None
        if not om.remaining:
            # nothing left to protect: finish normally (TQs go to the dest,
            # "as there are usually very few events in the TQs" — §4.3)
            om.stop_requested = False
            self._stream_next(broker, client, anchor)
            return
        pq_tq = broker.new_queue(client)
        self.system.tracer.emit(
            "stopped_migration", client=client, broker=broker.id,
            kept=len(om.remaining),
        )
        self.net.send_broker(
            broker.id,
            om.first_hop,
            m.DeliverTQ(
                client, om.dest, broker.id, pq_tq.ref, tuple(om.remaining)
            ),
        )
        anchor.out_migration = None
        self._state(broker, client).anchor = None
        self._gc(broker, client)

    # ------------------------------------------------------------------
    # settle + follow-up work at an anchor
    # ------------------------------------------------------------------
    def _anchor_settled(self, broker: "Broker", client: int, anchor: _Anchor) -> None:
        st = self._state(broker, client)
        if st.pending_handoff is not None:
            msg, st.pending_handoff = st.pending_handoff, None
            if msg.epoch >= st.epoch:
                self._start_out_migration(
                    broker, client, anchor, msg.new_broker, msg.epoch
                )
                return
            # else: a newer connect (or the migration that settled here)
            # superseded the pending request while it waited — drop it
        if anchor.connected and self._present(broker, client):
            self._start_self_migration(broker, client, anchor)

    def _start_self_migration(
        self, broker: "Broker", client: int, anchor: _Anchor
    ) -> None:
        """Drain the PQlist to a client connected at the anchor itself."""
        entry = broker.table.require_client_entry(client)
        if entry.live:
            return  # nothing stored
        if not anchor.pqlist:
            raise ProtocolError(
                f"broker {broker.id}: offline entry with empty pqlist "
                f"(client {client})"
            )
        if len(anchor.pqlist) == 1 and anchor.pqlist[0].broker == broker.id:
            # fast path: everything is in the local tail
            tail = anchor.pqlist[0]
            anchor.pqlist = []
            self._flush_tail_and_go_live(broker, client, anchor, tail)
            return
        *stored, tail = anchor.pqlist
        anchor.pqlist = [tail]
        sm = _SelfMigration(remaining=stored)
        anchor.self_migration = sm
        self.system.tracer.emit(
            "self_migration", client=client, broker=broker.id, queues=len(stored)
        )
        self._self_stream_next(broker, client, anchor)

    def _self_stream_next(
        self, broker: "Broker", client: int, anchor: _Anchor
    ) -> None:
        sm = anchor.self_migration
        assert sm is not None
        while sm.remaining and not sm.stop_requested:
            ref = sm.remaining[0]
            if ref.broker == broker.id:
                sm.remaining.pop(0)
                q = broker.get_queue(ref)
                q.freeze()
                for event in q.drain():
                    if sm.deliver_live:
                        broker.deliver_to_client(client, event)
                    else:
                        broker.get_queue(sm.immigrant).append(event)
                broker.drop_queue(ref)
                continue
            sm.current = ref
            self.net.unicast(
                broker.id, ref.broker, m.FetchQueue(client, ref, broker.id, None)
            )
            return
        self._settle_self_migration(broker, client, anchor)

    def _self_migration_streamed(
        self, broker: "Broker", client: int, anchor: _Anchor, ref: QueueRef
    ) -> None:
        sm = anchor.self_migration
        assert sm is not None and sm.current == ref
        sm.current = None
        sm.remaining.pop(0)
        if sm.stop_requested:
            self._settle_self_migration(broker, client, anchor)
        else:
            self._self_stream_next(broker, client, anchor)

    def _settle_self_migration(
        self, broker: "Broker", client: int, anchor: _Anchor
    ) -> None:
        sm = anchor.self_migration
        assert sm is not None and sm.current is None
        anchor.self_migration = None
        new_list: list[QueueRef] = []
        if sm.immigrant is not None:
            if len(broker.get_queue(sm.immigrant)):
                new_list.append(sm.immigrant)
            else:
                broker.drop_queue(sm.immigrant)
        new_list.extend(sm.remaining)
        new_list.extend(anchor.pqlist)  # [tail]
        anchor.pqlist = new_list
        self._anchor_settled(broker, client, anchor)

    def _flush_tail_and_go_live(
        self, broker: "Broker", client: int, anchor: _Anchor, tail: QueueRef
    ) -> None:
        q = broker.get_queue(tail)
        for event in q.drain():
            broker.deliver_to_client(client, event)
        broker.drop_queue(tail)
        entry = broker.table.require_client_entry(client)
        entry.live = True
        entry.sink = None
        self.system.tracer.emit("client_live", client=client, broker=broker.id)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _drain_queue_to_wireless(
        self, broker: "Broker", client: int, ref: QueueRef
    ) -> None:
        q = broker.get_queue(ref)
        while len(q):
            broker.deliver_to_client(client, q.popleft())

    def _reclaim_wireless(self, broker: "Broker", client: int, ref: QueueRef) -> None:
        """Pull queued (untransmitted) downlink events back into queue ``ref``."""
        pending = self.net.reclaim_downlink(client)
        events: list[Notification] = [
            p.event for p in pending if isinstance(p, m.DeliverMessage)
        ]
        if events:
            broker.get_queue(ref).extend_front(events)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def install_recovered(self, broker, client, backlog):
        """Repair-round install: a settled offline anchor whose tail queue
        holds the gathered backlog. The coordinator floods the entry and,
        for connected clients, synthesizes ``on_connect`` — which takes the
        normal reconnect-at-anchor path and flushes the tail."""
        st = self._state(broker, client.id)
        st.epoch = client.connect_epoch
        anchor = _Anchor(self._key(client.id), client.filter)
        tail = broker.new_queue(client.id)
        for event in backlog:
            tail.append(event)
        anchor.pqlist = [tail.ref]
        entry = ClientEntry(
            client.id, anchor.key, client.filter,
            live=False, sink=tail.ref.qid,
        )
        broker.table.set_client_entry(entry)
        st.anchor = anchor
        return entry

    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        for broker in self.system.brokers.values():
            for client, st in broker.pstate.items():
                if not isinstance(st, _State):  # pragma: no cover
                    continue
                if st.transit is not None:
                    return False
                if st.pending_handoff is not None:
                    # a request superseded by a newer reconnect is inert
                    # garbage, not outstanding work (the newest request in
                    # the chain aims at the client's latest location)
                    current = self.system.clients[client].connect_epoch
                    if st.pending_handoff.epoch >= current:
                        return False
                if st.pre_anchor is not None:
                    return False
                if st.anchor is not None and st.anchor.busy:
                    return False
        return True
