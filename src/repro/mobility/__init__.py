"""Mobility management protocols.

* :mod:`repro.mobility.mhh` — the paper's Multi-Hop Handoff protocol
  (proclaimed move §4.1, silent move §4.2, frequent moving with the
  distributed PQlist §4.3).
* :mod:`repro.mobility.sub_unsub` — the widely used re-subscribe /
  unsubscribe baseline ([9-11], paper §2).
* :mod:`repro.mobility.home_broker` — the Mobile-IP-style home-broker
  baseline ([9], paper §2); unreliable by design.
* :mod:`repro.mobility.two_phase` — the authors' earlier two-phase handoff
  ([12]); implemented as an extension for the concurrency ablation.
"""

from repro.mobility.base import MobilityProtocol
from repro.mobility.queues import PersistentQueue
from repro.mobility.mhh import MHHProtocol
from repro.mobility.sub_unsub import SubUnsubProtocol
from repro.mobility.home_broker import HomeBrokerProtocol
from repro.mobility.two_phase import TwoPhaseProtocol
from repro.mobility.registry import factory, PROTOCOLS

__all__ = [
    "MobilityProtocol",
    "PersistentQueue",
    "MHHProtocol",
    "SubUnsubProtocol",
    "HomeBrokerProtocol",
    "TwoPhaseProtocol",
    "factory",
    "PROTOCOLS",
]
