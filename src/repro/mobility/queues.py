"""Event queues for disconnected and migrating clients.

The paper (§4) defines two queue roles:

* **Persistent Queue (PQ)** — "to store potentially large number of events
  for a considerably long period" (a disconnected client's backlog);
* **Temporary Queue (TQ)** — "to temporarily store events during the
  handoff period" (the in-transit events captured on the migration path).

Both are the same data structure here; the role is contextual. Queues are
identified by location-qualified :class:`~repro.util.ids.QueueRef`s so the
frequent-moving extension can maintain its per-client **PQlist**: the ordered
collection of queues, distributed over the brokers the client has visited,
whose concatenation is exactly the client's undelivered backlog in delivery
order (§4.3). The list order itself is carried in MHH control messages as a
vector of refs (an equivalent simplification of the paper's per-queue next
pointers — DESIGN.md §2).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.pubsub.events import Notification
from repro.util.ids import QueueRef

__all__ = ["PersistentQueue"]


class PersistentQueue:
    """FIFO event queue hosted by one broker for one client."""

    __slots__ = ("ref", "client", "events", "frozen")

    def __init__(self, ref: QueueRef, client: int) -> None:
        self.ref = ref
        self.client = client
        self.events: deque[Notification] = deque()
        #: a frozen queue accepts no further appends (protocol bug guard)
        self.frozen = False

    def append(self, event: Notification) -> None:
        if self.frozen:
            raise RuntimeError(f"append to frozen queue {self.ref}")
        self.events.append(event)

    def extend_front(self, events: list[Notification]) -> None:
        """Put reclaimed wireless-pending events back at the head, in order.

        Frozen queues reject this like :meth:`append`: a TQ mid-migration
        has already been snapshotted into transfer batches, so a late
        retransmit re-queue landing here would silently fork the backlog.
        """
        if self.frozen:
            raise RuntimeError(f"extend_front on frozen queue {self.ref}")
        for ev in reversed(events):
            self.events.appendleft(ev)

    def popleft(self) -> Notification:
        return self.events.popleft()

    def drain(self) -> list[Notification]:
        """Remove and return all events in order."""
        out = list(self.events)
        self.events.clear()
        return out

    def freeze(self) -> None:
        self.frozen = True

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Notification]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = " frozen" if self.frozen else ""
        return f"<PQ {self.ref} c{self.client} n={len(self.events)}{state}>"
