"""The mobility protocol interface.

A protocol instance is created once per system and receives every
mobility-relevant callback from the pub/sub core:

* client life-cycle: first attach, reconnect, silent disconnect, proclaimed
  disconnect;
* event-for-client decisions (deliver live / store / forward / drop);
* protocol-specific control messages addressed to brokers.

Per-broker per-client protocol state lives in ``broker.pstate[client_id]``
so that the protocol remains *distributed in spirit*: a broker's handler may
only read and write its own broker's state and communicate with other
brokers through messages. (Tests enforce observable behaviour, not this
styling rule, but all three implementations follow it.)
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.pubsub.events import Notification
from repro.pubsub.filter_table import ClientEntry
from repro.pubsub import messages as m

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.broker import Broker
    from repro.pubsub.system import PubSubSystem

__all__ = ["MobilityProtocol"]


class MobilityProtocol:
    """Base class for mobility management protocols.

    Protocols are **sans-IO**: every effect goes through the system's
    :attr:`clock` (``now`` / ``call_later``) and :attr:`net`
    (``send_broker`` / ``unicast`` / ``reclaim_downlink``) facades, never
    through a scheduler or link model directly — so the same protocol
    instance runs under the discrete-event simulator and the live asyncio
    runtime unchanged (:mod:`repro.drivers`).
    """

    #: registry name; subclasses override
    name: str = "abstract"
    #: whether covering-based propagation pruning should be on by default
    default_covering: bool = False

    def __init__(self, system: "PubSubSystem") -> None:
        self.system = system
        #: sans-IO scheduling facade (repro.drivers.base.Clock)
        self.clock = system.clock
        #: sans-IO message-passing facade (repro.drivers.base.Transport)
        self.net = system.net

    # ------------------------------------------------------------------
    # life-cycle hooks
    # ------------------------------------------------------------------
    def on_connect(
        self,
        broker: "Broker",
        client: int,
        last_broker: Optional[int],
        epoch: int = 0,
    ) -> None:
        """Client (re)connected at ``broker``; dispatch to first attach /
        same-broker reconnect / handoff.

        ``epoch`` is the client's monotone connect counter; protocols that
        race handoff control messages against reconnects (MHH) use it to
        recognise superseded requests. Others may ignore it.
        """
        raise NotImplementedError

    def on_disconnect(self, broker: "Broker", client: int) -> None:
        """Client silently disconnected from ``broker`` (detected instantly)."""
        raise NotImplementedError

    def on_proclaimed_disconnect(
        self, broker: "Broker", client: int, dest: int
    ) -> None:
        """Client disconnected after proclaiming it will reconnect at ``dest``.

        Protocols without proclaimed-move support treat it as silent.
        """
        self.on_disconnect(broker, client)

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def on_event_for_client(
        self,
        broker: "Broker",
        entry: ClientEntry,
        event: Notification,
        from_broker: Optional[int],
    ) -> None:
        """An event matched a local client entry (labels already honoured).

        Default policy: deliver if live, else append to the entry's sink
        queue. Protocols override for richer behaviour (HB forwarding).
        """
        if entry.live:
            broker.deliver_to_client(entry.client, event)
        else:
            broker.queues[entry.sink].append(event)

    # ------------------------------------------------------------------
    # control messages
    # ------------------------------------------------------------------
    def on_control(self, broker: "Broker", msg: m.Message, frm: int) -> None:
        """Dispatch a protocol-specific control message."""
        raise NotImplementedError(
            f"{self.name}: unhandled control message {type(msg).__name__}"
        )

    # ------------------------------------------------------------------
    # crash recovery (inert unless a CrashPlan is active)
    # ------------------------------------------------------------------
    def later(self, broker: "Broker", delay: float, fn, *args) -> None:
        """Schedule a protocol timer owned by ``broker``.

        Without an active recovery coordinator this is a plain
        ``clock.call_later`` — byte-identical to the pre-crash behaviour.
        With one, the timer is generation-stamped: it is silently skipped
        if a repair round has run since it was armed or if its owning
        broker is down, so stale continuations never act on rebuilt state.
        """
        rec = self.system.recovery
        if rec is None:
            self.clock.call_later(delay, fn, *args)
        else:
            self.clock.call_later(delay, rec.guarded, broker.id,
                                  rec.generation, fn, args)

    def install_recovered(
        self, broker: "Broker", client: "object", backlog: list[Notification]
    ) -> ClientEntry:
        """Install canonical *offline* state for ``client`` at ``broker``
        during a repair round, seeding its stored-event queue with
        ``backlog`` (publish-ordered survivors gathered from live brokers).

        Must not advertise — the coordinator floods the returned entry
        synchronously so the rebuilt routing state equals a from-scratch
        construction. A subsequent synthesized ``on_connect`` (for clients
        that were connected when the repair ran) brings the entry live.
        """
        raise NotImplementedError

    def recovery_anchor(
        self, client: "object", alive: set, default: int
    ) -> int:
        """Pick the live broker a repair round should root ``client``'s
        subscription at. ``default`` is the coordinator's choice (current
        broker if connected, else last/home/lowest live); protocols with a
        fixed rooting rule override (home-broker re-homes)."""
        return default

    def on_repair_reset(self) -> None:
        """Drop protocol-global scratch state after the overlay was rebuilt
        (called once per repair round, after the new tree is swapped in)."""

    def gather_stray(self, broker: "Broker"):
        """Yield ``(client, event)`` pairs held by ``broker`` outside its
        persistent queues (e.g. transfer buffers), so a repair round can
        account for — or salvage — them."""
        return ()

    # ------------------------------------------------------------------
    # end-of-run support
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """True when no handoff machinery is in flight (used by the runner's
        drain phase together with an empty event heap)."""
        return True
