"""``python -m repro.conformance`` — the conformance fuzzer CLI."""

import sys

from repro.conformance.fuzzer import main

if __name__ == "__main__":
    sys.exit(main())
