"""Protocol-conformance fuzzing.

This subsystem turns the delivery oracle
(:class:`repro.metrics.delivery.DeliveryChecker`) into a randomized
conformance gate: :class:`~repro.conformance.fuzzer.ScenarioFuzzer`
samples adversarial scenarios — topology size × mobility model × wireless
fault profile × protocol — runs each end-to-end (measurement + drain),
and asserts the per-protocol invariant matrix plus cross-engine trace
identity. Every scenario derives entirely from one integer seed, so any
failure replays byte-identically from the seed the fuzzer prints.

See :mod:`repro.conformance.scenarios` for the scenario space and
:mod:`repro.conformance.fuzzer` for the invariant matrix and the CLI
(``python -m repro.conformance.fuzzer``).
"""

from repro.conformance.scenarios import Scenario

__all__ = [
    "Scenario",
    "ScenarioFuzzer",
    "ScenarioOutcome",
    "FuzzReport",
    "check_invariants",
    "run_scenario",
]

_FUZZER_EXPORTS = frozenset(__all__) - {"Scenario"}


def __getattr__(name: str):
    # fuzzer exports resolve lazily so `python -m repro.conformance.fuzzer`
    # does not import the module twice (runpy would warn)
    if name in _FUZZER_EXPORTS:
        from repro.conformance import fuzzer

        return getattr(fuzzer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
