"""The protocol-conformance fuzzer: invariant matrix + cross-engine identity.

For every sampled :class:`~repro.conformance.scenarios.Scenario` the fuzzer
runs the full experiment pipeline (measurement window, metric snapshot,
drain to quiescence) and then checks:

**Invariant matrix** (per protocol, after the drain):

=============  ==========================================================
protocol       guarantee checked
=============  ==========================================================
mhh            zero unaccounted deliveries; losses exactly the injected
               link drops; duplicates exactly the injected link copies;
               per-publisher order intact
sub-unsub      same as mhh (the paper's reliable baseline)
two-phase      same as mhh (its documented guarantee: exactly-once with
               FIFO capture untouched — only slower under concurrency)
home-broker    losses *allowed* but fully accounted: every expected
               delivery is delivered or explicitly lost, protocol losses
               on top of (never below) the injected link drops; no
               duplicates beyond the injected copies. Per-publisher order
               is not part of its contract and is not asserted.
=============  ==========================================================

In all cases the traffic meter's fault ledgers must agree with the
injector's own counters — a drop that escaped accounting is a conformance
failure even if delivery happens to reconcile.

**Crash lane** (``--crash-lane``): scenarios gain a seeded broker
crash/restart/partition schedule and run on perfect wireless links, so
every loss is attributable to the failure model. On top of the standard
rows the matrix asserts: every protocol accounts every loss
(``missing == 0`` with ``crash_lost`` carrying the write-offs for events
whose only copy died with a broker); reliable protocols additionally keep
zero duplicates, per-publisher order, and zero unaccounted link losses
through the repair; exactly one repair round runs per scheduled failure
event; and the reconverged overlay carries live traffic
(``post_repair_publishes > 0``). Protocols cycle deterministically, so a
30-scenario batch covers each of the four at least seven times.

**Reliability lane** (``--reliability-lane``): scenarios run with a forced
lossy wireless profile *and* the end-to-end ACK/retransmit layer enabled
(a third of the draws also bound the downlink queue). The matrix flips for
this lane: reliable protocols must show ``lost == 0`` — every injected
link drop retransmitted away, reconciled as ``recovered`` — alongside
``missing == 0``, intact per-publisher order, and wire-level duplicates no
lower than the injected copies (retransmits add legitimate extras).
Combined with ``--crash-lane``, seeded broker failures layer on top of the
loss profile and the only permitted write-offs are ``crash_lost`` and
``shed``; ``lost`` stays exactly zero. Protocols cycle through the
reliable trio, so a 30-scenario batch covers each at least ten times.

**Durability lane** (``--durability-lane``): the reliability lane's
crash-composed scenarios run again with the write-ahead log and session
handover enabled. The matrix hardens to the zero-write-off contract:
``crash_lost == 0`` and ``shed == 0`` on top of ``missing == 0`` and
``lost == 0`` — every delivery put at risk by a broker crash, restart or
partition must be recovered from the log (replay on restart, handover to
the new home broker on permanent death), never reconciled away. The
durable retry path never exhausts, so ``breaker_trips`` stays 0 too.

**Cross-engine identity**: the same scenario re-run with the all-legacy
engine bundle (heap scheduler × scan matching × covering scans) and with
the batched data plane (lanes × counting × event batching) must produce a
byte-identical delivery log, identical delivery/loss/duplicate counters,
identical per-category wired traffic and the same processed event count.
The engines are documented as trace-identical; the fuzzer makes that a
standing randomized gate every future optimisation inherits.

Replay: every failure line carries the scenario seed;
``python -m repro.conformance.fuzzer --scenario-seed N`` reruns exactly
that scenario (same workload, same fault draws, byte-identical).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.conformance.scenarios import ENGINE_BUNDLES, PROTOCOLS, Scenario
from repro.experiments.runner import build_system, drain_to_quiescence

__all__ = [
    "ScenarioOutcome",
    "FuzzReport",
    "ScenarioFuzzer",
    "run_scenario",
    "check_invariants",
    "compare_outcomes",
    "main",
]

#: protocols whose contract is exactly-once, ordered, loss-free delivery
RELIABLE_PROTOCOLS = frozenset({"mhh", "sub-unsub", "two-phase"})

#: deterministic cycling order for the reliability lane (the lane's
#: lost == 0 row only makes sense for protocols that promise no losses
#: of their own, so home-broker sits this lane out)
_RELIABLE_CYCLE = tuple(p for p in PROTOCOLS if p in RELIABLE_PROTOCOLS)


@dataclass
class ScenarioOutcome:
    """End-state of one scenario run under one engine bundle."""

    engine_bundle: tuple[str, str, bool, bool]
    published: int
    expected: int
    delivered: int
    duplicates: int
    order_violations: int
    lost: int
    missing: int
    handoffs: int
    injected_drops: int
    injected_dups: int
    meter_drops: int
    meter_dups: int
    sim_events: int
    crash_lost: int = 0
    repairs: int = 0
    post_repair_publishes: int = 0
    recovered: int = 0
    shed: int = 0
    retransmits: int = 0
    breaker_trips: int = 0
    #: retransmit timers that fired against a link already retired by the
    #: crash/repair machinery (must stay 0: satellite regression gate)
    stale_timer_fires: int = 0
    #: durable sessions handed to a new home broker in repair rounds
    wal_handovers: int = 0
    #: WAL checkpoint/compaction passes across all brokers
    wal_checkpoints: int = 0
    wired_by_category: dict[str, int] = field(default_factory=dict)
    #: (client, event_id, time) per delivery, in delivery order
    delivery_log: tuple[tuple[int, int, float], ...] = ()


def run_scenario(
    scenario: Scenario,
    sim_engine: str = "lanes",
    matching_engine: str = "counting",
    covering_index: bool = True,
    event_batching: bool = False,
) -> ScenarioOutcome:
    """Run one scenario end-to-end (measurement + drain) and snapshot it."""
    cfg = scenario.config(
        sim_engine=sim_engine,
        matching_engine=matching_engine,
        covering_index=covering_index,
        event_batching=event_batching,
    )
    system, workload = build_system(cfg)
    system.metrics.delivery.record_log = True
    system.run(until=cfg.workload.duration_ms)
    workload.stop()
    drain_to_quiescence(system, workload)
    stats = system.metrics.delivery.stats
    injector = system.fault_injector
    meter = system.metrics.traffic
    return ScenarioOutcome(
        engine_bundle=(
            sim_engine, matching_engine, covering_index, event_batching
        ),
        published=stats.published,
        expected=stats.expected,
        delivered=stats.delivered,
        duplicates=stats.duplicates,
        order_violations=stats.order_violations,
        lost=stats.lost_explicit,
        missing=stats.missing,
        handoffs=system.metrics.handoffs.handoff_count,
        injected_drops=injector.drops if injector else 0,
        injected_dups=injector.dups_delivered if injector else 0,
        meter_drops=meter.total_dropped(),
        meter_dups=meter.total_duplicated(),
        sim_events=system.sim.events_processed,
        crash_lost=stats.crash_lost,
        repairs=system.recovery.repairs if system.recovery else 0,
        post_repair_publishes=(
            system.recovery.post_repair_publishes if system.recovery else 0
        ),
        recovered=stats.recovered,
        shed=stats.shed,
        retransmits=meter.total_retransmits(),
        breaker_trips=meter.total_breaker_trips(),
        stale_timer_fires=(
            system.reliability.stale_timer_fires if system.reliability else 0
        ),
        wal_handovers=(
            system.durability.handovers if system.durability else 0
        ),
        wal_checkpoints=(
            system.durability.checkpoints if system.durability else 0
        ),
        wired_by_category=dict(meter.by_category()),
        delivery_log=tuple(system.metrics.delivery.log),
    )


# ---------------------------------------------------------------------------
# invariants
# ---------------------------------------------------------------------------
def check_invariants(scenario: Scenario, o: ScenarioOutcome) -> list[str]:
    """Violations of the protocol's invariant matrix (empty = conformant)."""
    v: list[str] = []
    reliable = scenario.protocol in RELIABLE_PROTOCOLS
    if o.missing != 0:
        v.append(
            f"missing={o.missing}: expected deliveries neither performed "
            f"nor explicitly accounted as lost"
        )
    if scenario.reliable:
        # No duplicate bound under reliability: the rx window decouples
        # the delivery-level count from the injector in both directions.
        # Retransmits whose ack (not the frame) was lost add duplicates
        # the injector never made, while injected copies of a buffered or
        # stale-session frame are absorbed by sequence-number reassembly
        # before they reach the delivery meter. The per-client app
        # callback dedups regardless; exactly-once is what the missing/
        # lost rows assert.
        pass
    elif o.duplicates != o.injected_dups:
        v.append(
            f"duplicates={o.duplicates} != injected link copies "
            f"{o.injected_dups}: the protocol introduced or swallowed "
            f"duplicates of its own"
        )
    if reliable:
        if scenario.reliable:
            # The whole point of the reliability lane: injected link loss
            # is retransmitted away, never written off. Under a crash plan
            # the only permitted write-offs are crash_lost (volatile state
            # died with a broker) and shed (budget/bulkhead policy) —
            # both tracked separately, so lost stays exactly zero.
            if o.lost != 0:
                v.append(
                    f"lost={o.lost} != 0: reliable delivery must recover "
                    f"every injected link loss (drops={o.injected_drops})"
                )
        elif o.lost != o.injected_drops:
            v.append(
                f"lost={o.lost} != injected link drops {o.injected_drops}: "
                f"a reliable protocol must lose exactly what the link lost"
            )
        if o.order_violations != 0:
            v.append(
                f"order_violations={o.order_violations}: per-publisher "
                f"order must hold"
            )
    elif not scenario.reliable:
        if o.lost < o.injected_drops:
            v.append(
                f"lost={o.lost} < injected link drops {o.injected_drops}: "
                f"link losses escaped the accounting"
            )
    if o.meter_drops != o.injected_drops:
        v.append(
            f"traffic meter drop ledger {o.meter_drops} != injector "
            f"drops {o.injected_drops}"
        )
    if o.meter_dups != o.injected_dups:
        v.append(
            f"traffic meter dup ledger {o.meter_dups} != injector "
            f"dups {o.injected_dups}"
        )
    if not scenario.faults.active and (o.injected_drops or o.injected_dups):
        v.append("fault profile inactive but the injector fired")
    if scenario.reliable:
        if o.recovered > o.injected_drops:
            v.append(
                f"recovered={o.recovered} > injected link drops "
                f"{o.injected_drops}: recoveries without matching drops"
            )
        if (
            o.shed
            and scenario.queue_cap is None
            and not scenario.crashes.active
        ):
            v.append(
                f"shed={o.shed} with no queue cap and no crash plan: "
                f"nothing should trigger the shed policy"
            )
    elif scenario.queue_cap is None and (
        o.recovered or o.shed or o.retransmits or o.breaker_trips
    ):
        v.append(
            f"reliability off but its machinery fired (recovered="
            f"{o.recovered} shed={o.shed} retransmits={o.retransmits} "
            f"breaker_trips={o.breaker_trips})"
        )
    if scenario.crashes.active:
        # Reliable protocols may write off deliveries whose only copy
        # lived on the crashed broker (volatile state is genuinely gone) —
        # but every such write-off must be *marked*, which the global
        # ``missing == 0`` row already enforces. What distinguishes them
        # from home-broker here is the rest of the matrix: no duplicates,
        # order intact, zero unaccounted link losses.
        if o.repairs != len(scenario.crashes.events):
            v.append(
                f"repairs={o.repairs} != scheduled failure events "
                f"{len(scenario.crashes.events)}: a repair round was "
                f"skipped or double-fired"
            )
        if o.post_repair_publishes == 0:
            v.append(
                "no post-repair publishes: the scenario never exercised "
                "the reconverged overlay"
            )
    elif o.crash_lost or o.repairs:
        v.append("crash plan inactive but the recovery machinery fired")
    if scenario.reliable and o.stale_timer_fires:
        v.append(
            f"stale_timer_fires={o.stale_timer_fires}: a retransmit timer "
            f"fired against a link the crash/repair machinery had already "
            f"retired (epoch bump missed)"
        )
    if scenario.durable:
        # The zero-write-off contract: with the WAL and session handover
        # active, machine failures must never cost a delivery. crash_lost
        # and shed stay exactly 0 (missing == 0 is asserted above, so the
        # recovered deliveries are real, not reconciled away), and the
        # durable retry path never opens a breaker.
        if o.crash_lost != 0:
            v.append(
                f"crash_lost={o.crash_lost} != 0: a durable run wrote off "
                f"deliveries to a broker crash instead of replaying the WAL"
            )
        if o.shed != 0:
            v.append(
                f"shed={o.shed} != 0: a durable run wrote off deliveries "
                f"via the shed policy instead of retrying from the log"
            )
        if o.breaker_trips != 0:
            v.append(
                f"breaker_trips={o.breaker_trips} != 0: durable retry "
                f"never exhausts, so no circuit breaker should exist"
            )
    elif o.wal_handovers or o.wal_checkpoints:
        v.append(
            f"durability off but the WAL machinery fired (handovers="
            f"{o.wal_handovers} checkpoints={o.wal_checkpoints})"
        )
    if o.published == 0:
        v.append("degenerate scenario: nothing was published")
    return v


def compare_outcomes(a: ScenarioOutcome, b: ScenarioOutcome) -> list[str]:
    """Cross-engine identity violations between two runs of one scenario."""
    v: list[str] = []
    for attr in (
        "published",
        "expected",
        "delivered",
        "duplicates",
        "order_violations",
        "lost",
        "missing",
        "handoffs",
        "injected_drops",
        "injected_dups",
        "sim_events",
        "crash_lost",
        "repairs",
        "post_repair_publishes",
        "recovered",
        "shed",
        "retransmits",
        "breaker_trips",
        "stale_timer_fires",
        "wal_handovers",
        "wal_checkpoints",
    ):
        av, bv = getattr(a, attr), getattr(b, attr)
        if av != bv:
            v.append(
                f"cross-engine {attr} diverged: {a.engine_bundle}={av} "
                f"vs {b.engine_bundle}={bv}"
            )
    if a.wired_by_category != b.wired_by_category:
        v.append(
            f"cross-engine wired traffic diverged: "
            f"{a.wired_by_category} vs {b.wired_by_category}"
        )
    if a.delivery_log != b.delivery_log:
        # locate the first divergence for a actionable message
        idx = next(
            (
                i
                for i, (x, y) in enumerate(zip(a.delivery_log, b.delivery_log))
                if x != y
            ),
            min(len(a.delivery_log), len(b.delivery_log)),
        )
        v.append(
            f"cross-engine delivery log diverged at entry {idx}: "
            f"{a.delivery_log[idx:idx + 1]} vs {b.delivery_log[idx:idx + 1]}"
        )
    return v


# ---------------------------------------------------------------------------
# the fuzzer
# ---------------------------------------------------------------------------
@dataclass
class ScenarioResult:
    seed: int
    protocol: str
    label: str
    violations: list[str]
    crash_lane: bool = False
    reliability_lane: bool = False
    durability_lane: bool = False
    forced_protocol: Optional[str] = None

    @property
    def passed(self) -> bool:
        return not self.violations

    def replay_command(self) -> str:
        cmd = f"python -m repro.conformance.fuzzer --scenario-seed {self.seed}"
        if self.crash_lane:
            cmd += " --crash-lane"
        if self.reliability_lane:
            cmd += " --reliability-lane"
        if self.durability_lane:
            cmd += " --durability-lane"
        if (
            self.crash_lane or self.reliability_lane or self.durability_lane
        ) and self.forced_protocol is not None:
            cmd += f" --protocol {self.forced_protocol}"
        return cmd


@dataclass
class FuzzReport:
    master_seed: int
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[ScenarioResult]:
        return [r for r in self.results if not r.passed]

    def protocol_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.results:
            counts[r.protocol] = counts.get(r.protocol, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "master_seed": self.master_seed,
            "passed": self.passed,
            "protocols": self.protocol_counts(),
            "scenarios": [
                {
                    "seed": r.seed,
                    "label": r.label,
                    "violations": r.violations,
                    "replay": r.replay_command(),
                }
                for r in self.results
            ],
        }


class ScenarioFuzzer:
    """Samples and runs ``n_scenarios`` scenarios derived from one master
    seed; each scenario also re-runs under the all-legacy engine bundle
    when ``cross_engine`` is on (the default).

    With ``crash_lane`` on, every scenario is the
    :meth:`~repro.conformance.scenarios.Scenario.crash_from_seed` variant —
    perfect wireless links plus a seeded broker-failure schedule — and the
    protocol cycles deterministically through all four so any seed count
    >= 4 covers the whole matrix. The crash rows of the invariant matrix
    (losses fully accounted including crash write-offs, one repair per
    failure event, live post-repair traffic) are asserted on top of the
    standard rows.
    """

    def __init__(
        self,
        n_scenarios: int = 30,
        master_seed: int = 0,
        cross_engine: bool = True,
        crash_lane: bool = False,
        reliability_lane: bool = False,
        durability_lane: bool = False,
    ) -> None:
        self.n_scenarios = n_scenarios
        self.master_seed = master_seed
        self.cross_engine = cross_engine
        self.crash_lane = crash_lane
        self.reliability_lane = reliability_lane
        self.durability_lane = durability_lane

    def scenario_seeds(self) -> list[int]:
        rnd = random.Random(self.master_seed)
        return [rnd.randrange(2**31) for _ in range(self.n_scenarios)]

    def run_one(
        self, scenario_seed: int, protocol: Optional[str] = None
    ) -> ScenarioResult:
        if self.durability_lane:
            scenario = Scenario.durable_from_seed(scenario_seed, protocol)
        elif self.reliability_lane:
            scenario = Scenario.reliability_from_seed(
                scenario_seed, protocol, crash=self.crash_lane
            )
        elif self.crash_lane:
            scenario = Scenario.crash_from_seed(scenario_seed, protocol)
        else:
            scenario = Scenario.from_seed(scenario_seed)
        primary = run_scenario(scenario, *ENGINE_BUNDLES[0])
        violations = check_invariants(scenario, primary)
        if self.cross_engine:
            for bundle in ENGINE_BUNDLES[1:]:
                alt = run_scenario(scenario, *bundle)
                violations += [
                    f"[{'/'.join(map(str, bundle))}] {v}"
                    for v in check_invariants(scenario, alt)
                ]
                violations += compare_outcomes(primary, alt)
        return ScenarioResult(
            scenario_seed,
            scenario.protocol,
            scenario.label(),
            violations,
            crash_lane=self.crash_lane,
            reliability_lane=self.reliability_lane,
            durability_lane=self.durability_lane,
            forced_protocol=protocol,
        )

    def run(
        self, progress: Optional[Callable[[str], None]] = None
    ) -> FuzzReport:
        report = FuzzReport(master_seed=self.master_seed)
        for i, seed in enumerate(self.scenario_seeds()):
            # lanes cycle protocols so coverage is guaranteed, not merely
            # probable, over the whole batch; the reliability lane cycles
            # only the protocols whose contract is loss-free
            if self.reliability_lane or self.durability_lane:
                protocol = _RELIABLE_CYCLE[i % len(_RELIABLE_CYCLE)]
            elif self.crash_lane:
                protocol = PROTOCOLS[i % len(PROTOCOLS)]
            else:
                protocol = None
            result = self.run_one(seed, protocol)
            report.results.append(result)
            if progress is not None:
                status = "PASS" if result.passed else "FAIL"
                progress(f"{status} {result.label}")
                for violation in result.violations:
                    progress(f"     - {violation}")
        return report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance.fuzzer",
        description=(
            "Randomized protocol-conformance gate: sample adversarial "
            "scenarios, run them end-to-end, assert the per-protocol "
            "invariant matrix and cross-engine trace identity."
        ),
    )
    parser.add_argument("--scenarios", type=int, default=30, metavar="N",
                        help="number of scenarios to sample (default 30)")
    parser.add_argument("--master-seed", type=int, default=0, metavar="S",
                        help="seed deriving the scenario seeds (default 0)")
    parser.add_argument("--scenario-seed", type=int, default=None, metavar="X",
                        help="replay exactly one scenario by its seed "
                             "(ignores --scenarios/--master-seed)")
    parser.add_argument("--no-cross-engine", action="store_true",
                        help="skip the legacy-engine identity re-runs "
                             "(half the runtime, engine coverage lost)")
    parser.add_argument("--crash-lane", action="store_true",
                        help="fuzz the broker-failure lane: perfect links "
                             "plus seeded crash/restart/partition schedules, "
                             "protocols cycled for guaranteed coverage")
    parser.add_argument("--reliability-lane", action="store_true",
                        help="fuzz the end-to-end reliability lane: forced "
                             "lossy links with ACK/retransmit enabled; "
                             "asserts zero losses for reliable protocols. "
                             "Combine with --crash-lane to layer seeded "
                             "broker failures on top")
    parser.add_argument("--durability-lane", action="store_true",
                        help="fuzz the durable zero-write-off lane: lossy "
                             "links + ACK/retransmit + seeded broker "
                             "failures with the write-ahead log on; asserts "
                             "missing == lost == crash_lost == shed == 0")
    parser.add_argument("--protocol", choices=PROTOCOLS, default=None,
                        help="force the protocol (crash-lane replays; "
                             "batch runs cycle protocols automatically)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the full report (incl. every scenario "
                             "seed + replay command) as JSON")
    args = parser.parse_args(argv)

    fuzzer = ScenarioFuzzer(
        n_scenarios=args.scenarios,
        master_seed=args.master_seed,
        cross_engine=not args.no_cross_engine,
        crash_lane=args.crash_lane,
        reliability_lane=args.reliability_lane,
        durability_lane=args.durability_lane,
    )
    if args.scenario_seed is not None:
        result = fuzzer.run_one(args.scenario_seed, args.protocol)
        report = FuzzReport(master_seed=args.master_seed, results=[result])
        print(("PASS " if result.passed else "FAIL ") + result.label)
        for violation in result.violations:
            print(f"     - {violation}")
    else:
        report = fuzzer.run(progress=print)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=1, sort_keys=True)
        print(f"report written to {args.out}")

    n_failed = len(report.failures)
    print(
        f"{len(report.results) - n_failed}/{len(report.results)} scenarios "
        f"conformant; protocols covered: {report.protocol_counts()}"
    )
    if n_failed:
        print("replay failing scenarios byte-identically with:")
        for r in report.failures:
            print(f"  {r.replay_command()}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
