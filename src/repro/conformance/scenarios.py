"""Scenario space for the conformance fuzzer.

A :class:`Scenario` is one adversarial end-to-end configuration: protocol,
grid size, population, mobility model, topic skew and wireless fault
profile. The whole record derives deterministically from a single integer
via :meth:`Scenario.from_seed` — the fuzzer prints nothing but that seed
on failure, and replaying it reconstructs the identical scenario (and,
because every random stream in the simulator is seed-derived, the
identical run, event for event).

The sampling ranges are deliberately small and hostile: tiny grids with a
handful of clients maximize the rate of handoff collisions, rapid-fire
reconnects, queue reclaims and epoch races per simulated second, which is
where mobility protocols historically break (PSVR's loss-prone channels,
M&M's micro-mobility flapping). Fault-free and uniform choices stay in the
mix so the conformance gate keeps covering the paper's original regime
too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.network.faults import FaultProfile
from repro.network.recovery import CrashEvent, CrashPlan
from repro.network.topology import grid_topology
from repro.workload.spec import WorkloadSpec

__all__ = ["Scenario", "PROTOCOLS", "ENGINE_BUNDLES"]

#: every protocol the repo implements as a reproduction target or baseline
PROTOCOLS: tuple[str, ...] = ("mhh", "sub-unsub", "home-broker", "two-phase")

#: the engine configurations cross-checked for trace identity: the default
#: fast path, the all-legacy path, and the batched data plane. Each bundle
#: is (sim_engine, matching_engine, covering_index, event_batching).
ENGINE_BUNDLES: tuple[tuple[str, str, bool, bool], ...] = (
    ("lanes", "counting", True, False),
    ("heap", "scan", False, False),
    ("lanes", "counting", True, True),
)

_MOBILITY_CHOICES = ("uniform", "hotspot", "ping-pong", "trace")
_LOSS_CHOICES = (0.0, 0.0, 0.05, 0.2)
_DUP_CHOICES = (0.0, 0.0, 0.05, 0.15)
_JITTER_CHOICES = (0.0, 0.0, 5.0, 25.0)
_TOPIC_SKEW_CHOICES = (0.0, 0.0, 0.9, 1.3)
_HOTSPOT_EXPONENTS = (0.8, 1.2, 1.6)
_CONN_CHOICES = (5.0, 15.0, 45.0)
_DISC_CHOICES = (5.0, 20.0)
_PUBLISH_CHOICES = (20.0, 45.0)


@dataclass(frozen=True)
class Scenario:
    """One fuzzed configuration; fully determined by ``scenario_seed``."""

    scenario_seed: int
    protocol: str
    grid_k: int
    experiment_seed: int
    clients_per_broker: int
    mobile_fraction: float
    mean_connected_s: float
    mean_disconnected_s: float
    publish_interval_s: float
    duration_s: float
    mobility_model: str
    mobility_params: Mapping[str, Any] = field(default_factory=dict)
    topic_skew: float = 0.0
    faults: FaultProfile = field(default_factory=FaultProfile)
    crashes: CrashPlan = field(default_factory=CrashPlan)
    #: end-to-end ACK/retransmit layer on the downlink (reliability lane)
    reliable: bool = False
    retry_budget: int = 8
    queue_cap: Optional[int] = None
    #: write-ahead log + session handover on (durability lane)
    durable: bool = False

    # ------------------------------------------------------------------
    @classmethod
    def from_seed(cls, scenario_seed: int) -> "Scenario":
        """Deterministically sample the scenario named by ``scenario_seed``.

        Uses :class:`random.Random` (whose sequence is stable across Python
        versions for the draws used here), so a printed seed reconstructs
        the same scenario on any machine.
        """
        rnd = random.Random(scenario_seed)
        protocol = rnd.choice(PROTOCOLS)
        grid_k = rnd.randrange(2, 5)
        clients_per_broker = rnd.randrange(3, 6)
        n_clients = grid_k * grid_k * clients_per_broker
        mobility_model = rnd.choice(_MOBILITY_CHOICES)
        mobility_params: dict[str, Any] = {}
        if mobility_model == "hotspot":
            mobility_params["exponent"] = rnd.choice(_HOTSPOT_EXPONENTS)
        elif mobility_model == "trace":
            # random walks for a random half of the population; the rest
            # take the model's deterministic fallback walk
            traced = rnd.sample(range(n_clients), k=n_clients // 2)
            mobility_params["trace"] = {
                cid: tuple(
                    rnd.randrange(grid_k * grid_k)
                    for _ in range(rnd.randrange(3, 7))
                )
                for cid in sorted(traced)
            }
        faults = FaultProfile(
            deliver_loss=rnd.choice(_LOSS_CHOICES),
            deliver_duplicate=rnd.choice(_DUP_CHOICES),
            wireless_jitter_ms=rnd.choice(_JITTER_CHOICES),
        )
        return cls(
            scenario_seed=scenario_seed,
            protocol=protocol,
            grid_k=grid_k,
            experiment_seed=rnd.randrange(2**31),
            clients_per_broker=clients_per_broker,
            mobile_fraction=rnd.choice((0.3, 0.5)),
            mean_connected_s=rnd.choice(_CONN_CHOICES),
            mean_disconnected_s=rnd.choice(_DISC_CHOICES),
            publish_interval_s=rnd.choice(_PUBLISH_CHOICES),
            duration_s=rnd.choice((180.0, 300.0)),
            mobility_model=mobility_model,
            mobility_params=mobility_params,
            topic_skew=rnd.choice(_TOPIC_SKEW_CHOICES),
            faults=faults,
        )

    # ------------------------------------------------------------------
    @classmethod
    def crash_from_seed(
        cls, scenario_seed: int, protocol: Optional[str] = None
    ) -> "Scenario":
        """The crash-lane variant of the scenario named by ``scenario_seed``.

        Builds the base scenario with :meth:`from_seed` (so both lanes share
        one sampling space), then layers a seeded broker-failure schedule on
        top from an *independent* random stream — the base draw order is
        untouched, keeping plain-lane replays byte-identical. Wireless
        faults are disabled in this lane: with perfect links, every loss in
        the run is attributable to the crash model, which is exactly what
        the crash invariants assert.

        ``protocol`` overrides the sampled protocol so the fuzzer can cycle
        all four protocols over any seed range.
        """
        from repro.pubsub.recovery import validate_plan

        base = cls.from_seed(scenario_seed)
        if protocol is not None:
            base = replace(base, protocol=protocol)
        # Independent, stable stream (str seeding hashes with SHA-512, so
        # the sequence is identical across platforms and Python builds).
        rnd = random.Random(f"crash-lane:{scenario_seed}")
        topo = grid_topology(base.grid_k)
        n = topo.n
        duration_ms = base.duration_s * 1000.0
        edges = [(u, v) for u, v, _w in topo.edges()]
        shapes = (
            "crash",
            "crash",
            "crash+restart",
            "partition",
            "crash+partition",
        )
        for _attempt in range(100):
            shape = rnd.choice(shapes)
            # All failures land in the first ~60% of the measurement
            # window and every repair completes by ~80%, so the surviving
            # overlay carries live post-repair traffic before the drain.
            t1 = rnd.uniform(0.2, 0.55) * duration_ms
            events: list[CrashEvent] = []
            if shape in ("crash", "crash+restart", "crash+partition"):
                events.append(
                    CrashEvent("crash", time_ms=t1, broker=rnd.randrange(n))
                )
                if shape == "crash+restart":
                    t2 = min(
                        t1 + rnd.uniform(10.0, 60.0) * 1000.0,
                        0.8 * duration_ms,
                    )
                    events.append(
                        CrashEvent(
                            "restart", time_ms=t2, broker=events[0].broker
                        )
                    )
            if shape in ("partition", "crash+partition"):
                t_cut = t1 if shape == "partition" else rnd.uniform(
                    0.2, 0.55
                ) * duration_ms
                events.append(
                    CrashEvent(
                        "partition", time_ms=t_cut, edge=rnd.choice(edges)
                    )
                )
            plan = CrashPlan(events=tuple(events))
            try:
                validate_plan(topo, plan)
            except ConfigurationError:
                continue  # e.g. the cut + crash disconnects the survivors
            return replace(base, faults=FaultProfile(), crashes=plan)
        raise ConfigurationError(  # pragma: no cover - 100 draws on a grid
            f"no valid crash plan found for scenario seed {scenario_seed}"
        )

    # ------------------------------------------------------------------
    @classmethod
    def reliability_from_seed(
        cls,
        scenario_seed: int,
        protocol: Optional[str] = None,
        crash: bool = False,
    ) -> "Scenario":
        """The reliability-lane variant of the scenario named by the seed.

        Builds the base scenario (crash variant when ``crash`` is set, so
        the lane composes with seeded broker failures), then switches the
        end-to-end ACK/retransmit layer on and forces a *lossy* wireless
        profile from an independent random stream — the lane exists to
        prove that reliability turns injected link loss into retransmits
        rather than write-offs, so fault-free draws would be wasted
        scenarios. As with the crash lane, the base draw order is
        untouched: plain-lane replays of the same seed stay byte-identical.

        A third of the draws additionally bound the downlink queue, so the
        shed-accounting path (bulkhead overflow reconciled as ``shed``,
        never silently missing) stays under randomized test too.
        """
        if crash:
            base = cls.crash_from_seed(scenario_seed, protocol)
        else:
            base = cls.from_seed(scenario_seed)
            if protocol is not None:
                base = replace(base, protocol=protocol)
        rnd = random.Random(f"rel-lane:{scenario_seed}")
        faults = FaultProfile(
            deliver_loss=rnd.choice((0.05, 0.1, 0.2)),
            deliver_duplicate=rnd.choice((0.0, 0.0, 0.05)),
            wireless_jitter_ms=rnd.choice((0.0, 0.0, 5.0)),
        )
        return replace(
            base,
            faults=faults,
            reliable=True,
            retry_budget=rnd.choice((4, 8)),
            queue_cap=rnd.choice((None, None, 32)),
        )

    # ------------------------------------------------------------------
    @classmethod
    def durable_from_seed(
        cls,
        scenario_seed: int,
        protocol: Optional[str] = None,
    ) -> "Scenario":
        """The durability-lane variant: reliable + crashes + WAL.

        Reuses the reliability lane's crash-composed draw (identical fault
        and budget streams, so a durable failure replays against the same
        adversarial shape as its reliable sibling) and switches the
        write-ahead log on. The queue cap is dropped: the zero-write-off
        contract is about machine failures — bounded-queue shedding is a
        deliberate overload *policy*, and the durable retry path never
        creates breakers or sheds in the first place.
        """
        base = cls.reliability_from_seed(scenario_seed, protocol, crash=True)
        return replace(base, durable=True, queue_cap=None)

    # ------------------------------------------------------------------
    def workload(self) -> WorkloadSpec:
        return WorkloadSpec(
            clients_per_broker=self.clients_per_broker,
            mobile_fraction=self.mobile_fraction,
            mean_connected_s=self.mean_connected_s,
            mean_disconnected_s=self.mean_disconnected_s,
            publish_interval_s=self.publish_interval_s,
            duration_s=self.duration_s,
            mobility_model=self.mobility_model,
            mobility_params=dict(self.mobility_params),
            topic_skew=self.topic_skew,
        )

    def config(
        self,
        sim_engine: str = "lanes",
        matching_engine: str = "counting",
        covering_index: bool = True,
        event_batching: bool = False,
    ) -> ExperimentConfig:
        """The runnable :class:`ExperimentConfig` under one engine bundle."""
        return ExperimentConfig(
            protocol=self.protocol,
            grid_k=self.grid_k,
            seed=self.experiment_seed,
            workload=self.workload(),
            sim_engine=sim_engine,
            matching_engine=matching_engine,
            covering_index=covering_index,
            event_batching=event_batching,
            faults=self.faults if self.faults.active else None,
            crashes=self.crashes if self.crashes.active else None,
            reliable=self.reliable,
            retry_budget=self.retry_budget,
            queue_cap=self.queue_cap,
            durable=self.durable,
        )

    def label(self) -> str:
        crash_tag = (
            f" [{self.crashes.label()}]" if self.crashes.active else ""
        )
        rel_tag = ""
        if self.reliable:
            rel_tag = f" rel(budget={self.retry_budget})"
        if self.queue_cap is not None:
            rel_tag += f" cap={self.queue_cap}"
        if self.durable:
            rel_tag += " dur"
        return (
            f"seed={self.scenario_seed} {self.protocol} k={self.grid_k} "
            f"cpb={self.clients_per_broker} mob={self.mobility_model} "
            f"skew={self.topic_skew:g} conn={self.mean_connected_s:g}s "
            f"disc={self.mean_disconnected_s:g}s [{self.faults.label()}]"
            f"{crash_tag}{rel_tag}"
        )
