"""The discrete-event driver: the reproduction's default backend.

A thin adapter making the pre-existing engine pair — the lane/heap
scheduler (:class:`~repro.sim.core.Simulator`) and the modelled link layer
(:class:`~repro.network.links.LinkLayer`) — satisfy the sans-IO
:class:`~repro.drivers.base.Driver` contract. *Thin* is load-bearing: the
driver adds no scheduling, no wrapping and no indirection of its own
(``Simulator`` aliases ``call_later``/``call_later_fifo`` onto its native
``schedule``/``schedule_fifo``, and ``LinkLayer`` is the transport
directly), so seeded runs are byte-identical to the pre-refactor system —
the conformance fuzzer's cross-engine lanes gate exactly that.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.drivers.base import Driver, Transport
from repro.network.links import LinkLayer
from repro.sim.core import Simulator

__all__ = ["SimulatedDriver"]


class SimulatedDriver(Driver):
    """Run the kernel under the deterministic discrete-event scheduler."""

    __slots__ = ("clock", "sim")

    name = "sim"

    def __init__(self, engine: str = "lanes", start_time: float = 0.0) -> None:
        if engine == "lanes-compiled":
            # the mypyc-built scheduler: same module compiled, same lanes
            # engine underneath (raises ConfigurationError when the
            # extension was never built on this host)
            from repro.accel import compiled_simulator_class

            self.sim = compiled_simulator_class()(
                start_time=start_time, engine="lanes"
            )
        else:
            self.sim = Simulator(start_time=start_time, engine=engine)
        #: the Simulator *is* the clock (no adapter layer on the hot path)
        self.clock = self.sim

    def build_transport(
        self,
        topo: Any,
        paths: Any,
        *,
        wired_latency: float,
        wireless_latency: float,
        account: Optional[Callable[[str, int, bool], None]] = None,
        unicast_hops: Optional[Callable[[int, int], int]] = None,
        faults: Optional[Any] = None,
        queue_cap: Optional[int] = None,
        on_shed: Optional[Callable[[Any, int], bool]] = None,
    ) -> Transport:
        return LinkLayer(
            self.sim,
            topo,
            paths,
            wired_latency=wired_latency,
            wireless_latency=wireless_latency,
            account=account,
            unicast_hops=unicast_hops,
            faults=faults,
            queue_cap=queue_cap,
            on_shed=on_shed,
        )
