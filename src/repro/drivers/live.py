"""The live driver: the sans-IO kernel under real (or virtual) time.

Where the simulated driver hands the kernel the discrete-event scheduler as
its clock, this module provides clocks backed by something *other* than the
simulation engine:

* :class:`VirtualClock` — a deterministic virtual-time scheduler: one flat
  ``(when, seq)`` heap, no FIFO lanes, no engine machinery. It mimics the
  ordering semantics of an asyncio event loop (deadline order, submission
  order on ties) while staying fully deterministic, which makes it the
  reference clock for driver-parity differential tests: the same seeded
  scenario must produce the same :class:`~repro.metrics.delivery.
  DeliveryChecker` outcome under it as under the simulator.
* :class:`AsyncioClock` — the same ``(when, seq)`` queue executed against a
  real asyncio event loop: model milliseconds map to wall-clock delays
  (optionally compressed by ``time_scale``), and due callbacks fire from a
  single loop timer in deadline order. Keeping our own heap instead of one
  ``loop.call_later`` per message preserves the strict submission-order
  tie-break the link layer's FIFO arguments rest on (asyncio's timer heap
  does not guarantee stable ordering for equal deadlines).

:class:`LiveDriver` plugs either clock into the unchanged
:class:`~repro.network.links.LinkLayer` — the per-link in-process queues,
serial wireless channels and the loss/dup/jitter fault injection from
:mod:`repro.network.faults` are reused verbatim; only *time* is real.

:func:`run_soak` is the zero-to-live proof: it builds a real
:class:`~repro.pubsub.system.PubSubSystem` on an asyncio loop, drives the
standard churn workload (the same :class:`~repro.workload.mobility_model.
Workload` processes the simulator uses) for a wall-clock window, drains to
quiescence and audits the delivery ledger — exposed as
``python -m repro.experiments.cli soak``.
"""

from __future__ import annotations

import asyncio
import heapq
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.drivers.base import CancelHandle, Clock, Driver, Transport
from repro.errors import SchedulingError, SimulationError
from repro.network.links import LinkLayer

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import ExperimentConfig
    from repro.metrics.delivery import DeliveryStats
    from repro.pubsub.system import PubSubSystem

__all__ = [
    "VirtualClock",
    "AsyncioClock",
    "LiveDriver",
    "SoakResult",
    "run_soak",
    "run_virtual_scenario",
]


class _Handle(CancelHandle):
    """Cancellation flag for one scheduled callback.

    ``cancelled`` doubles as the fired marker: firing sets it so a late
    ``cancel()`` cannot decrement the clock's pending count twice.
    """

    __slots__ = ("_clock", "cancelled")

    def __init__(self, clock: "_HeapClock") -> None:
        self._clock = clock
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._clock._pending -= 1


class _HeapClock(Clock):
    """Shared ``(when, seq)`` heap mechanics for the live clocks."""

    __slots__ = ("_heap", "_seq", "_pending", "_fired")

    def __init__(self) -> None:
        # entries: (when_ms, seq, handle-or-None, callback, args)
        self._heap: list[tuple[float, int, Optional[_Handle], Callable, tuple]] = []
        self._seq = 0
        self._pending = 0
        self._fired = 0

    # -- scheduling -----------------------------------------------------
    def _push(
        self,
        delay: float,
        handle: Optional[_Handle],
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule into the past: delay={delay!r} at t={self.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (self.now + delay, seq, handle, callback, args))
        self._pending += 1

    def call_later(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> _Handle:
        handle = _Handle(self)
        self._push(delay, handle, callback, args)
        return handle

    def call_later_fifo(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        # no handle: never cancellable. One heap serves both paths — the
        # FIFO guarantee is simply (when, seq) order, which the shared
        # monotone seq provides.
        self._push(delay, None, callback, args)

    # -- firing ---------------------------------------------------------
    def _pop_due(self, when: float):
        """Pop the head if it is due at ``when`` and not cancelled."""
        heap = self._heap
        while heap and heap[0][0] <= when:
            entry = heapq.heappop(heap)
            handle = entry[2]
            if handle is not None:
                if handle.cancelled:
                    continue
                handle.cancelled = True  # fired; late cancel() is a no-op
            self._pending -= 1
            self._fired += 1
            return entry
        return None

    # -- introspection --------------------------------------------------
    @property
    def pending(self) -> int:
        """Scheduled-but-unfired callbacks (cancelled ones excluded)."""
        return self._pending

    @property
    def events_processed(self) -> int:
        return self._fired

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) callback, or None."""
        heap = self._heap
        while heap and heap[0][2] is not None and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None


class VirtualClock(_HeapClock):
    """Deterministic virtual-time clock for driver-parity tests.

    ``run(until=...)`` mirrors :meth:`repro.sim.core.Simulator.run`
    semantics (the clock is advanced to exactly ``until`` on return), so
    measurement windows compose identically across drivers.
    """

    __slots__ = ("now",)

    def __init__(self, start_time: float = 0.0) -> None:
        super().__init__()
        self.now = start_time

    def run(self, until: Optional[float] = None) -> None:
        while True:
            head = self.peek()
            if head is None or (until is not None and head > until):
                break
            entry = self._pop_due(head)
            if entry is None:  # pragma: no cover - peek guarantees due work
                break
            self.now = entry[0]
            entry[3](*entry[4])
        if until is not None and until > self.now:
            self.now = until


class AsyncioClock(_HeapClock):
    """Model-time clock over a real asyncio event loop.

    ``now`` is wall time since construction, in model milliseconds:
    ``(loop.time() - t0) * 1000 * time_scale``. A single loop timer is
    armed for the earliest deadline; when it fires, every due entry runs
    in strict ``(when, seq)`` order.

    ``time_scale`` compresses the model: at ``time_scale=5`` one wall
    second carries five model seconds (a 10 ms wired hop takes 2 ms of
    wall time). Protocol timers and link latencies scale together, so
    relative behaviour is preserved — only the wall budget shrinks.
    """

    __slots__ = ("loop", "time_scale", "_t0", "_timer", "_armed_for")

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        time_scale: float = 1.0,
    ) -> None:
        super().__init__()
        if time_scale <= 0:
            raise SchedulingError(f"time_scale must be > 0, got {time_scale!r}")
        self.loop = loop if loop is not None else asyncio.new_event_loop()
        self.time_scale = time_scale
        self._t0 = self.loop.time()
        self._timer: Optional[asyncio.TimerHandle] = None
        self._armed_for: Optional[float] = None

    @property
    def now(self) -> float:
        return (self.loop.time() - self._t0) * 1000.0 * self.time_scale

    def _wall_at(self, model_ms: float) -> float:
        return self._t0 + model_ms / (1000.0 * self.time_scale)

    def _push(self, delay, handle, callback, args) -> None:
        super()._push(delay, handle, callback, args)
        self._arm()

    def _arm(self) -> None:
        head = self._heap[0][0] if self._heap else None
        if head is None:
            return
        if self._timer is not None:
            if self._armed_for is not None and self._armed_for <= head:
                return  # an earlier-or-equal wake is already pending
            self._timer.cancel()
        self._armed_for = head
        self._timer = self.loop.call_at(self._wall_at(head), self._run_due)

    def _run_due(self) -> None:
        self._timer = None
        self._armed_for = None
        # re-read `now` each iteration so zero-delay chains scheduled by a
        # firing callback run in this burst instead of waiting a loop tick.
        # Re-arm in a finally: a raising callback must not strand the rest
        # of the heap unfired (the loop's handler logs the exception and
        # the loop survives, so the clock has to as well).
        try:
            while True:
                entry = self._pop_due(self.now)
                if entry is None:
                    break
                entry[3](*entry[4])
        finally:
            self._arm()

    async def wait_idle(
        self,
        quiescent: Optional[Callable[[], bool]] = None,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.02,
    ) -> bool:
        """Wait until nothing is scheduled (and ``quiescent()`` agrees)."""
        deadline = None if timeout_s is None else self.loop.time() + timeout_s
        while True:
            if self._pending == 0 and (quiescent is None or quiescent()):
                return True
            if deadline is not None and self.loop.time() >= deadline:
                return False
            await asyncio.sleep(poll_s)


class LiveDriver(Driver):
    """Run the kernel over a live clock (asyncio wall time or virtual).

    The transport is the standard :class:`~repro.network.links.LinkLayer`
    — sans-IO over the clock — so the live runtime keeps the exact link
    model (per-link FIFO, serial wireless channels, fault injection) the
    simulator validates.
    """

    __slots__ = ("clock", "sim")

    name = "live"

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self.sim = None

    def build_transport(
        self,
        topo: Any,
        paths: Any,
        *,
        wired_latency: float,
        wireless_latency: float,
        account: Optional[Callable[[str, int, bool], None]] = None,
        unicast_hops: Optional[Callable[[int, int], int]] = None,
        faults: Optional[Any] = None,
        queue_cap: Optional[int] = None,
        on_shed: Optional[Callable[[Any, int], bool]] = None,
    ) -> Transport:
        return LinkLayer(
            self.clock,
            topo,
            paths,
            wired_latency=wired_latency,
            wireless_latency=wireless_latency,
            account=account,
            unicast_hops=unicast_hops,
            faults=faults,
            queue_cap=queue_cap,
            on_shed=on_shed,
        )

    def build_log_store(self, wal_dir: Optional[str] = None) -> Any:
        """Live runs default to real file-backed stable storage.

        Without an explicit ``wal_dir`` the store owns a scratch directory
        and removes it on close; with one, the directory (and any prior
        log to recover, torn tails included) belongs to the caller.
        """
        from repro.pubsub.wal import FileLogStore

        if wal_dir is not None:
            return FileLogStore(wal_dir)
        return FileLogStore(tempfile.mkdtemp(prefix="mhh-wal-"),
                            owns_dir=True)


# ---------------------------------------------------------------------------
# virtual-time scenario driver (parity tests)
# ---------------------------------------------------------------------------
def run_virtual_scenario(cfg: "ExperimentConfig") -> "PubSubSystem":
    """Run one experiment config through the live driver on virtual time.

    Mirrors :func:`repro.experiments.runner.run_experiment`'s phases
    (measurement window, workload stop, reconnect-everyone drain to
    quiescence) without ever touching ``system.sim`` — the differential
    driver-parity tests compare its :class:`DeliveryChecker` outcome
    against the simulated driver's, per protocol.
    """
    from repro.pubsub.system import PubSubSystem
    from repro.workload.mobility_model import Workload

    clock = VirtualClock()
    system = PubSubSystem(
        grid_k=cfg.grid_k,
        protocol=cfg.protocol,
        seed=cfg.seed,
        covering_enabled=cfg.covering_enabled,
        migration_batch_size=cfg.migration_batch_size,
        matching_engine=cfg.matching_engine,
        covering_index=cfg.covering_index,
        faults=cfg.faults,
        crashes=cfg.crashes,
        reliable=cfg.reliable,
        retry_budget=cfg.retry_budget,
        queue_cap=cfg.queue_cap,
        durable=cfg.durable,
        wal_dir=cfg.wal_dir,
        driver=LiveDriver(clock),
    )
    system.metrics.delivery.record_log = True
    workload = Workload(system, cfg.workload)
    clock.run(until=cfg.workload.duration_ms)
    workload.stop()
    workload.reconnect_all()
    # an unbounded run() drains the heap completely (unlike the runner's
    # deadline-interruptible loop, no rounds are needed here)
    clock.run()
    if not system.protocol.quiescent():
        raise SimulationError(
            "drain deadlock: live clock idle but protocol not quiescent"
        )
    system.metrics.delivery.finalize_crash_accounting()
    if system.durability is not None and cfg.wal_dir is None:
        # scratch-backed stable storage: release it once the run is
        # audited (an explicit wal_dir belongs to the caller and is kept)
        system.durability.close()
    return system


# ---------------------------------------------------------------------------
# the asyncio soak harness
# ---------------------------------------------------------------------------
@dataclass
class SoakResult:
    """Outcome of one live churn soak."""

    protocol: str
    wall_seconds: float
    model_ms: float
    stats: "DeliveryStats"
    handoffs: int
    injected_drops: int
    injected_dups: int
    drained: bool
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.drained and not self.violations


def _soak_violations(
    protocol: str,
    stats: "DeliveryStats",
    drops: int,
    dups: int,
    crash_events: int = 0,
    repairs: int = 0,
    reliable: bool = False,
    durable: bool = False,
) -> list[str]:
    """The conformance fuzzer's invariant matrix, applied to a live run."""
    v: list[str] = []
    if crash_events and repairs != crash_events:
        v.append(
            f"repairs={repairs} != scheduled failure events {crash_events}"
        )
    if stats.missing != 0:
        v.append(f"missing={stats.missing} deliveries unaccounted for")
    if durable:
        # zero-write-off contract: WAL replay + session handover must
        # reconcile every crash- or shed-prone delivery
        if stats.crash_lost != 0:
            v.append(f"durable run wrote off crash_lost={stats.crash_lost}")
        if stats.shed != 0:
            v.append(f"durable run shed {stats.shed} deliveries")
    if reliable:
        # no duplicate bound under reliability: retransmission adds copies
        # the injector never made, while sequence-number reassembly absorbs
        # injected copies of buffered or stale-session frames before they
        # reach the delivery meter — the count is decoupled both ways
        if protocol != "home-broker" and stats.lost_explicit != 0:
            v.append(
                f"reliable run lost {stats.lost_explicit} deliveries "
                f"(every wireless drop must be recovered or written off)"
            )
    else:
        if stats.duplicates != dups:
            v.append(
                f"duplicates={stats.duplicates} != injected link copies {dups}"
            )
        if protocol == "home-broker":
            if stats.lost_explicit < drops:
                v.append(
                    f"lost={stats.lost_explicit} < injected link drops {drops}"
                )
        else:
            if stats.lost_explicit != drops:
                v.append(
                    f"lost={stats.lost_explicit} != injected link drops {drops}"
                )
    if protocol != "home-broker" and stats.order_violations != 0:
        v.append(f"order_violations={stats.order_violations}")
    if stats.published == 0:
        v.append("degenerate soak: nothing was published")
    return v


def run_soak(
    protocol: str = "mhh",
    *,
    grid_k: int = 3,
    seed: int = 1,
    duration_s: float = 3.0,
    time_scale: float = 5.0,
    clients_per_broker: int = 3,
    mobile_fraction: float = 0.5,
    mean_connected_s: float = 2.0,
    mean_disconnected_s: float = 0.5,
    publish_interval_s: float = 1.0,
    faults: Optional[Any] = None,
    crashes: Optional[Any] = None,
    drain_timeout_s: float = 60.0,
    reliable: bool = False,
    retry_budget: int = 8,
    queue_cap: Optional[int] = None,
    durable: bool = False,
    wal_dir: Optional[str] = None,
) -> SoakResult:
    """Run a live churn workload on an asyncio loop and audit delivery.

    ``duration_s`` is *wall* seconds of measurement; the workload's period
    parameters are model seconds (compressed by ``time_scale``). After the
    window the workload stops, every client reconnects, and the run drains
    until the clock is idle and the protocol reports quiescence — then the
    delivery ledger is audited against the fuzzer's invariant matrix.
    """
    from repro.pubsub.system import PubSubSystem
    from repro.workload.mobility_model import Workload
    from repro.workload.spec import WorkloadSpec

    loop = asyncio.new_event_loop()
    try:
        clock = AsyncioClock(loop, time_scale=time_scale)
        system = PubSubSystem(
            grid_k=grid_k,
            protocol=protocol,
            seed=seed,
            faults=faults,
            crashes=crashes,
            reliable=reliable,
            retry_budget=retry_budget,
            queue_cap=queue_cap,
            durable=durable,
            wal_dir=wal_dir,
            driver=LiveDriver(clock),
        )
        spec = WorkloadSpec(
            clients_per_broker=clients_per_broker,
            mobile_fraction=mobile_fraction,
            mean_connected_s=mean_connected_s,
            mean_disconnected_s=mean_disconnected_s,
            publish_interval_s=publish_interval_s,
            duration_s=max(duration_s * time_scale, 1.0),
            warmup_s=0.2,
        )
        wall_start = time.perf_counter()
        workload = Workload(system, spec)

        async def main() -> bool:
            await asyncio.sleep(duration_s)
            workload.stop()
            workload.reconnect_all()
            return await clock.wait_idle(
                quiescent=system.protocol.quiescent, timeout_s=drain_timeout_s
            )

        drained = loop.run_until_complete(main())
        wall = time.perf_counter() - wall_start
        model_ms = clock.now
    finally:
        loop.close()

    injector = system.fault_injector
    drops = injector.drops if injector is not None else 0
    dups = injector.dups_delivered if injector is not None else 0
    system.metrics.delivery.finalize_crash_accounting()
    stats = system.metrics.delivery.stats
    # audit even when the drain timed out — the named invariant violations
    # (not a bare drain failure) are what the CLI surfaces on exit
    violations = _soak_violations(
        protocol,
        stats,
        drops,
        dups,
        crash_events=len(crashes.events) if crashes is not None else 0,
        repairs=system.recovery.repairs if system.recovery else 0,
        reliable=reliable,
        durable=durable,
    )
    if system.durability is not None and wal_dir is None:
        system.durability.close()
    if not drained:
        violations.insert(
            0,
            f"drain did not reach quiescence within {drain_timeout_s}s "
            f"(pending work or a stuck protocol; ledger audit below)",
        )
    return SoakResult(
        protocol=protocol,
        wall_seconds=wall,
        model_ms=model_ms,
        stats=stats,
        handoffs=system.metrics.handoffs.handoff_count,
        injected_drops=drops,
        injected_dups=dups,
        drained=drained,
        violations=violations,
    )
