"""Socket transport: the Transport facade with brokers in other processes.

Architecture (see ARCHITECTURE.md "Wire protocol"): determinism lives with
the coordinator. It keeps the :class:`~repro.drivers.live.VirtualClock`,
the real :class:`~repro.network.links.LinkLayer` (latency, FIFO channels,
fault draws, shed ledgers) and all client objects. Each broker assigned to
a remote node runs inside that node's process as an SPMD replica of the
kernel; the coordinator ships it *dispatches* (a received message, a timer
firing, a client disconnect) and applies the *effects* the node streams
back (sends, timer requests, loss accounting) through the unmodified link
layer — in stream order, because a handler may enqueue a downlink message
and then reclaim the same client's channel within one dispatch.

:class:`SocketTransport` subclasses :class:`LinkLayer`, so every local
semantic (adjacency checks, per-category accounting, wireless fate draws)
is inherited verbatim; only ``register_broker`` is intercepted to route a
remote broker's rx into a dispatch.

Reliability of the coordinator-node stream itself: every dispatch carries
a monotone sequence number and every node keeps an outbox of the frames it
emitted for the current dispatch. When a connection dies mid-stream (see
the kill hooks used by the parity tests), the coordinator reconnects,
offers ``(session token, seq, frames already consumed)``, and the node
retransmits exactly the suffix the coordinator never saw — effects are
applied exactly once, so the scenario outcome is byte-identical to the
uninterrupted run.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.network.links import LinkLayer
from repro.wire.codec import decode_control, encode_control
from repro.wire.framing import FrameDecoder, FrameError, encode_frame

__all__ = ["BrokerPeer", "SocketTransport", "WireStats", "PeerError"]


class PeerError(ConfigurationError):
    """A node connection failed beyond what session resume can repair."""


class WireStats:
    """Coordinator-side counters for the node streams."""

    __slots__ = ("dispatches", "effects", "queries", "resumes",
                 "frames_resent", "frames_replayed", "bytes_tx", "bytes_rx",
                 "pings")

    def __init__(self) -> None:
        self.dispatches = 0
        self.effects = 0
        self.queries = 0
        self.resumes = 0
        self.frames_resent = 0
        #: frames received on a resumed connection for a dispatch that
        #: began on the severed one: the node's retransmitted outbox
        #: suffix plus whatever the kernel emitted while the link was down
        self.frames_replayed = 0
        self.bytes_tx = 0
        self.bytes_rx = 0
        self.pings = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class BrokerPeer:
    """One blocking, session-resumable connection to a broker node process.

    The coordinator is single-threaded and lockstep: at most one dispatch
    is in flight per peer, so a plain blocking socket is the honest
    transport here (the asyncio machinery lives node-side, where the
    server must keep accepting while the kernel executes).
    """

    RESUME_ATTEMPTS = 40
    RESUME_BACKOFF_S = 0.05

    def __init__(self, host: str, port: int, token: str,
                 stats: Optional[WireStats] = None,
                 connect_timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.stats = stats or WireStats()
        self.connect_timeout = connect_timeout
        self.sock: Optional[socket.socket] = None
        self.decoder = FrameDecoder()
        self._inbox: List[Any] = []
        self.seq = 0
        self.consumed = 0           # frames consumed for the current seq
        self._dispatch_frame = b""  # raw frame of the current dispatch
        self._last_answer: Optional[Tuple[int, int, bytes]] = None
        # test hook: kill the connection after consuming N more frames
        self.kill_after_frames: Optional[int] = None
        self.kills = 0

    # ------------------------------------------------------------------
    # raw stream
    # ------------------------------------------------------------------
    def connect(self) -> None:
        self.close()
        self.sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = FrameDecoder()
        self._inbox = []

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            finally:
                self.sock = None

    def kill(self) -> None:
        """Sever the TCP connection (test hook for mid-stream failures)."""
        self.kills += 1
        self.close()

    def _send_raw(self, frame: bytes) -> None:
        if self.sock is None:
            raise OSError("peer socket closed")
        self.sock.sendall(frame)
        self.stats.bytes_tx += len(frame)

    def _recv_value(self) -> Any:
        """Next control value, skipping keepalive pings."""
        while True:
            while not self._inbox:
                if self.sock is None:
                    raise OSError("peer socket closed")
                chunk = self.sock.recv(65536)
                if not chunk:
                    raise OSError("peer connection closed")
                self.stats.bytes_rx += len(chunk)
                self._inbox.extend(self.decoder.feed(chunk))
            value = decode_control(self._inbox.pop(0))
            if value and value[0] == "ping":
                self.stats.pings += 1
                continue
            return value

    # ------------------------------------------------------------------
    # session
    # ------------------------------------------------------------------
    def hello(self, config_blob: str, brokers: Tuple[int, ...]) -> None:
        self.connect()
        self._send_raw(encode_frame(encode_control(
            ("hello", self.token, config_blob, tuple(brokers))
        )))
        reply = self._recv_value()
        if reply[0] != "hello-ok":
            raise PeerError(f"node refused hello: {reply!r}")

    def _resume(self) -> None:
        """Reconnect and replay the frame suffix the drop swallowed."""
        self.stats.resumes += 1
        last_err: Optional[Exception] = None
        for _ in range(self.RESUME_ATTEMPTS):
            try:
                self.connect()
                self._send_raw(encode_frame(encode_control(
                    ("resume", self.token, self.seq, self.consumed)
                )))
                ack = self._recv_value()
                break
            except (OSError, FrameError) as exc:
                last_err = exc
                time.sleep(self.RESUME_BACKOFF_S)
        else:
            raise PeerError(
                f"node {self.host}:{self.port} unreachable after "
                f"{self.RESUME_ATTEMPTS} resume attempts: {last_err}"
            )
        if ack[0] != "resume-ok":
            raise PeerError(f"node refused resume: {ack!r}")
        _, node_seq, pending_query = ack[1], int(ack[1]), ack[2]
        if node_seq < self.seq:
            # the dispatch frame itself was swallowed: re-send it (the node
            # has not executed it, so this is still exactly-once)
            self._send_raw(self._dispatch_frame)
            self.stats.frames_resent += 1
        elif pending_query is not None and self._last_answer is not None:
            ans_seq, ans_index, ans_frame = self._last_answer
            if (ans_seq, ans_index) == (self.seq, pending_query):
                # the node asked, we answered, the answer died on the wire
                self._send_raw(ans_frame)
                self.stats.frames_resent += 1

    def _send_with_resume(self, frame: bytes) -> None:
        try:
            self._send_raw(frame)
        except OSError:
            self._resume()

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------
    def dispatch(
        self,
        kind: str,
        args: tuple,
        deltas: tuple,
        now: float,
        on_effect: Callable[[tuple], None],
        on_query: Callable[[tuple], Any],
    ) -> Any:
        """Run one dispatch on the node; stream effects/queries until done."""
        self.seq += 1
        self.consumed = 0
        self._last_answer = None
        self.stats.dispatches += 1
        self._dispatch_frame = encode_frame(encode_control(
            ("dispatch", self.seq, now, deltas, kind, args)
        ))
        self._send_with_resume(self._dispatch_frame)
        resumed = False
        while True:
            try:
                value = self._recv_value()
            except (OSError, FrameError):
                self._resume()
                resumed = True
                continue
            if resumed:
                self.stats.frames_replayed += 1
            tag = value[0]
            if tag == "effect":
                if int(value[1]) <= self.consumed:
                    continue  # duplicate from an over-eager resume replay
                self.consumed += 1
                self.stats.effects += 1
                on_effect(tuple(value[2]))
            elif tag == "query":
                if int(value[1]) <= self.consumed:
                    continue
                self.consumed += 1
                self.stats.queries += 1
                result = on_query(tuple(value[2]))
                frame = encode_frame(encode_control(("answer", result)))
                self._last_answer = (self.seq, self.consumed, frame)
                self._send_with_resume(frame)
            elif tag == "done":
                if int(value[1]) != self.seq:
                    continue  # stale completion replayed across a resume
                epochs = tuple(value[3]) if len(value) > 3 else ()
                return value[2], epochs
            elif tag == "error":
                raise PeerError(f"node kernel error: {value[1]}")
            else:
                raise PeerError(f"unexpected frame from node: {tag!r}")
            self._maybe_kill()

    def _maybe_kill(self) -> None:
        if self.kill_after_frames is not None:
            self.kill_after_frames -= 1
            if self.kill_after_frames <= 0:
                self.kill_after_frames = None
                self.kill()

    def shutdown(self) -> None:
        try:
            if self.sock is not None:
                self._send_raw(encode_frame(encode_control(("shutdown",))))
        except OSError:
            pass
        self.close()


class SocketTransport(LinkLayer):
    """:class:`LinkLayer` with some brokers living in node processes.

    ``owner`` maps broker id -> index into ``peers``; brokers absent from
    the map stay local (their rx callback is installed unchanged), so one
    system can mix in-process and remote brokers freely.
    """

    def __init__(self, *args: Any, peers: List[BrokerPeer],
                 owner: Dict[int, int], stats: Optional[WireStats] = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.peers = peers
        self.owner = dict(owner)
        self.stats = stats or WireStats()
        for peer in peers:
            peer.stats = self.stats
        self._clients: Dict[int, Any] = {}
        self._on_loss: Optional[Callable[[int, Any], None]] = None
        # per-node snapshot of client dynamic state already shipped
        self._sent_state: List[Dict[int, tuple]] = [dict() for _ in peers]
        # global per-client protocol epochs (sub-unsub's shared counter):
        # nodes report allocations in their done frames; the coordinator
        # merges them here and ships deltas to every *other* node, so the
        # counter stays globally monotone across the process split
        self._epoch_state: Dict[int, int] = {}
        self._sent_epochs: List[Dict[int, int]] = [dict() for _ in peers]
        self._timer_handles: Dict[Tuple[int, int], Any] = {}

    # ------------------------------------------------------------------
    # late binding (the system object exists only after construction)
    # ------------------------------------------------------------------
    def bind_system(self, system: Any) -> None:
        self._clients = system.clients
        self._on_loss = system.metrics.on_loss

    # ------------------------------------------------------------------
    # Transport facade interception
    # ------------------------------------------------------------------
    def register_broker(self, broker_id: int, rx: Callable[[Any, int], None]) -> None:
        if broker_id in self.owner:
            def proxy(msg: Any, frm: int, _bid: int = broker_id) -> None:
                self._dispatch(_bid, "recv", (_bid, msg, frm))
            super().register_broker(broker_id, proxy)
        else:
            super().register_broker(broker_id, rx)

    # ------------------------------------------------------------------
    # protocol-entry forwarding (client disconnect paths + quiescence)
    # ------------------------------------------------------------------
    def remote_on_disconnect(self, broker_id: int, client: int) -> None:
        self._dispatch(broker_id, "disconnect", (broker_id, client))

    def remote_on_proclaimed_disconnect(
        self, broker_id: int, client: int, dest: int
    ) -> None:
        self._dispatch(broker_id, "proclaimed", (broker_id, client, dest))

    def remote_quiescent(self) -> bool:
        for idx in range(len(self.peers)):
            if not self._dispatch_to_node(idx, "quiescent", ()):
                return False
        return True

    def shutdown_peers(self) -> None:
        for peer in self.peers:
            peer.shutdown()

    # ------------------------------------------------------------------
    # dispatch plumbing
    # ------------------------------------------------------------------
    def _dispatch(self, broker_id: int, kind: str, args: tuple) -> Any:
        return self._dispatch_to_node(self.owner[broker_id], kind, args)

    def _dispatch_to_node(self, node_idx: int, kind: str, args: tuple) -> Any:
        peer = self.peers[node_idx]
        result, epochs = peer.dispatch(
            kind, args, self._deltas(node_idx), self.clock.now,
            lambda eff: self._apply_effect(node_idx, eff),
            lambda query: self._answer_query(query),
        )
        sent = self._sent_epochs[node_idx]
        for cid, value in epochs:
            cid, value = int(cid), int(value)
            self._epoch_state[cid] = value
            sent[cid] = value  # the reporting node already holds it
        return result

    def _deltas(self, node_idx: int) -> tuple:
        sent = self._sent_state[node_idx]
        deltas = []
        for cid, client in self._clients.items():
            state = (client.connected, client.current_broker,
                     client.last_broker, client.connect_epoch)
            if sent.get(cid) != state:
                sent[cid] = state
                deltas.append((cid,) + state)
        sent_epochs = self._sent_epochs[node_idx]
        epoch_deltas = []
        for cid, value in self._epoch_state.items():
            if sent_epochs.get(cid) != value:
                sent_epochs[cid] = value
                epoch_deltas.append((cid, value))
        return tuple(deltas), tuple(epoch_deltas)

    def _apply_effect(self, node_idx: int, eff: tuple) -> None:
        kind = eff[0]
        if kind == "send_broker":
            self.broker_to_broker(int(eff[1]), int(eff[2]), eff[3])
        elif kind == "unicast":
            self.unicast(int(eff[1]), int(eff[2]), eff[3])
        elif kind == "send_client":
            self.broker_to_client(int(eff[1]), eff[2])
        elif kind == "timer":
            token, delay, fifo = int(eff[1]), float(eff[2]), bool(eff[3])
            if fifo:
                self.clock.call_later_fifo(
                    delay, self._fire_timer, node_idx, token
                )
            else:
                self._timer_handles[(node_idx, token)] = self.clock.call_later(
                    delay, self._fire_timer, node_idx, token
                )
        elif kind == "cancel":
            handle = self._timer_handles.pop((node_idx, int(eff[1])), None)
            if handle is not None:
                handle.cancel()
        elif kind == "loss":
            if self._on_loss is not None:
                self._on_loss(int(eff[1]), eff[2])
        else:
            raise PeerError(f"unknown effect kind {kind!r}")

    def _fire_timer(self, node_idx: int, token: int) -> None:
        self._timer_handles.pop((node_idx, token), None)
        self._dispatch_to_node(node_idx, "fire", (token,))

    def _answer_query(self, query: tuple) -> Any:
        kind = query[0]
        if kind == "reclaim":
            return tuple(self.cancel_downlink_pending(int(query[1])))
        if kind == "backlog":
            return self.downlink_backlog(int(query[1]))
        raise PeerError(f"unknown query kind {kind!r}")
