"""Pluggable drivers: the sans-IO kernel's clocks and transports.

The protocol core (brokers, clients, mobility protocols) talks to a narrow
``Clock``/``Transport`` facade (:mod:`repro.drivers.base`); a driver binds
that facade to an execution substrate:

* :class:`SimulatedDriver` — deterministic discrete-event time (the
  reproduction default, byte-identical to the pre-driver system);
* :class:`LiveDriver` — the same kernel over an asyncio event loop
  (:class:`AsyncioClock`, wall-clock delays — see ``cli soak``) or a
  deterministic :class:`VirtualClock` for differential parity tests.
"""

from repro.drivers.base import CancelHandle, Clock, Driver, Transport
from repro.drivers.simulated import SimulatedDriver
from repro.drivers.live import (
    AsyncioClock,
    LiveDriver,
    SoakResult,
    VirtualClock,
    run_soak,
    run_virtual_scenario,
)

__all__ = [
    "CancelHandle",
    "Clock",
    "Driver",
    "Transport",
    "SimulatedDriver",
    "AsyncioClock",
    "LiveDriver",
    "SoakResult",
    "VirtualClock",
    "run_soak",
    "run_virtual_scenario",
]
