"""The sans-IO kernel boundary: ``Clock``, ``Transport`` and ``Driver``.

The protocol core — brokers, clients and every
:class:`~repro.mobility.base.MobilityProtocol` — is **sans-IO**: it never
schedules time or moves bytes itself. All of its effects flow through two
narrow facades owned by a :class:`Driver`:

* :class:`Clock` — ``now`` plus ``call_later``/``call_later_fifo``. The
  kernel expresses every timer and every link latency as "call this
  function ``delay`` ms from now"; *what a millisecond is* (a simulated
  instant, a wall-clock sleep on an asyncio loop, a test-controlled
  virtual step) is the driver's business.
* :class:`Transport` — ``send_broker`` / ``unicast`` / ``send_client`` /
  ``send_uplink`` plus the downlink-reclaim hooks MHH's queue machinery
  needs. The kernel addresses endpoints by id and never sees sockets,
  queues or schedulers.

Two drivers exist:

* :class:`~repro.drivers.simulated.SimulatedDriver` — the discrete-event
  engine (:mod:`repro.sim.core`) *is* the clock and the modelled link
  layer (:mod:`repro.network.links`) *is* the transport. This is the
  reproduction path and is byte-identical to the pre-refactor system
  (gated by the conformance fuzzer's cross-engine lanes).
* :class:`~repro.drivers.live.LiveDriver` — the same kernel and the same
  per-link in-process queues run over a real scheduler: an asyncio event
  loop under wall-clock delays (the ``soak`` command), or a deterministic
  :class:`~repro.drivers.live.VirtualClock` for differential tests.

The contracts the kernel relies on (and every driver must honour):

1. ``now`` is monotone non-decreasing.
2. Callbacks fire in non-decreasing time order; callbacks scheduled for
   the same instant fire in submission order. Together with constant
   per-link delays this yields FIFO links, which several protocol
   correctness arguments rest on (see :mod:`repro.network.links`).
3. ``call_later`` returns a handle whose ``cancel()`` prevents the
   callback; ``call_later_fifo`` is the non-cancellable fast path for
   constant-delay link traffic.
4. Callbacks never run re-entrantly inside ``call_later`` itself.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["CancelHandle", "Clock", "Transport", "Driver"]


class CancelHandle:
    """Minimal handle contract returned by :meth:`Clock.call_later`."""

    __slots__ = ()

    def cancel(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Clock:
    """Scheduling facade the kernel sees (duck-typed; see module docs).

    :class:`~repro.sim.core.Simulator` satisfies it natively (``call_later``
    aliases ``schedule``); live clocks implement it over asyncio or a
    virtual-time heap. All delays and times are in milliseconds.
    """

    __slots__ = ()

    #: current time in ms (attribute or property; monotone non-decreasing)
    now: float

    def call_later(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> CancelHandle:
        """Run ``callback(*args)`` ``delay`` ms from now; cancellable."""
        raise NotImplementedError

    def call_later_fifo(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        """Non-cancellable variant for constant-delay FIFO link traffic."""
        raise NotImplementedError

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unfired callbacks (drives quiescence)."""
        raise NotImplementedError


class Transport:
    """Message-passing facade the kernel sees.

    Implementations own the link model: latencies, per-link FIFO queues,
    serial wireless channels and fault injection. The canonical
    implementation is :class:`~repro.network.links.LinkLayer`, which is
    itself sans-IO over a :class:`Clock` — the simulated and live drivers
    differ only in the clock they hand it.
    """

    __slots__ = ()

    wired_latency: float
    wireless_latency: float

    # -- registration ---------------------------------------------------
    def register_broker(
        self, broker_id: int, rx: Callable[[Any, int], None]
    ) -> None:
        raise NotImplementedError

    def register_client(self, client_id: int, rx: Callable[[Any], None]) -> None:
        raise NotImplementedError

    # -- kernel-facing sends --------------------------------------------
    def send_broker(self, frm: int, to: int, msg: Any) -> None:
        """One wired hop between adjacent brokers (overlay edge)."""
        raise NotImplementedError

    def unicast(self, frm: int, to: int, msg: Any) -> None:
        """Multi-hop point-to-point between arbitrary brokers."""
        raise NotImplementedError

    def send_client(self, client_id: int, msg: Any) -> None:
        """Downlink: broker hands a message to its attached client."""
        raise NotImplementedError

    def send_uplink(self, client_id: int, broker_id: int, msg: Any) -> None:
        """Uplink: client sends to the broker it is attaching/attached to."""
        raise NotImplementedError

    # -- downlink surgery (MHH PQ3 reclaim) -----------------------------
    def reclaim_downlink(self, client_id: int) -> list[Any]:
        """Reclaim queued (untransmitted) downlink messages, in order."""
        raise NotImplementedError

    def downlink_backlog(self, client_id: int) -> int:
        raise NotImplementedError


class Driver:
    """Bundles a :class:`Clock` with a :class:`Transport` factory.

    ``PubSubSystem`` asks its driver for the clock and the transport; it
    never imports an engine directly. ``sim`` is the underlying
    :class:`~repro.sim.core.Simulator` when the driver is the simulated
    one, else ``None`` (legacy call sites like ``system.sim.run`` only
    make sense under discrete-event time).
    """

    __slots__ = ()

    name: str = "abstract"
    clock: Clock
    #: the discrete-event engine, when this driver is simulated time
    sim: Optional[Any] = None

    def build_transport(
        self,
        topo: Any,
        paths: Any,
        *,
        wired_latency: float,
        wireless_latency: float,
        account: Optional[Callable[[str, int, bool], None]] = None,
        unicast_hops: Optional[Callable[[int, int], int]] = None,
        faults: Optional[Any] = None,
        queue_cap: Optional[int] = None,
        on_shed: Optional[Callable[[Any, int], bool]] = None,
    ) -> Transport:
        raise NotImplementedError

    def build_log_store(self, wal_dir: Optional[str] = None) -> Any:
        """Stable storage for the durability layer (one LogStore facade).

        Default (simulated time): an in-memory store that models a disk
        surviving the broker process — unless ``wal_dir`` pins the log to
        real files. The live driver overrides this to default to a
        file-backed store, so soaks exercise real torn-tail truncation.
        """
        from repro.pubsub.wal import FileLogStore, MemoryLogStore

        if wal_dir is not None:
            return FileLogStore(wal_dir)
        return MemoryLogStore()
