"""Reproduction of *MHH: A Novel Protocol for Mobility Management in
Publish/Subscribe Systems* (Wang, Cao, Li, Wu — ICPP 2007).

The package provides, from scratch:

* a deterministic discrete-event simulation kernel (:mod:`repro.sim`),
* a sans-IO driver boundary so the same protocol core runs under the
  simulator or a live asyncio runtime (:mod:`repro.drivers`),
* the paper's network substrate — k x k base-station grid, MST overlay,
  FIFO links with the paper's latencies (:mod:`repro.network`),
* a content-based publish/subscribe system with reverse path forwarding
  and covering-based subscription propagation (:mod:`repro.pubsub`),
* the MHH mobility-management protocol plus the sub-unsub and home-broker
  baselines and a two-phase extension (:mod:`repro.mobility`),
* the paper's workload model and metrics (:mod:`repro.workload`,
  :mod:`repro.metrics`),
* sweep drivers regenerating every figure of the evaluation section
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import PubSubSystem, RangeFilter
>>> system = PubSubSystem(grid_k=3, protocol="mhh", seed=7)
>>> sub = system.add_client(RangeFilter(0.0, 0.5), broker=0, mobile=True)
>>> pub = system.add_client(RangeFilter(0.0, 0.0), broker=8)
>>> sub.connect(0); pub.connect(8)
>>> system.run(until=1_000.0)
>>> _ = pub.publish(topic=0.25)
>>> system.run(until=2_000.0)
>>> system.metrics.delivery.stats.delivered
1
"""

from repro.errors import (
    ReproError,
    SimulationError,
    SchedulingError,
    TopologyError,
    RoutingError,
    FilterError,
    ProtocolError,
    ClientStateError,
    ConfigurationError,
)
from repro.sim import Simulator, Process, spawn, RandomStreams, Tracer
from repro.drivers import (
    AsyncioClock,
    LiveDriver,
    SimulatedDriver,
    VirtualClock,
    run_soak,
)
from repro.network import (
    Topology,
    grid_topology,
    SpanningTree,
    minimum_spanning_tree,
    ShortestPaths,
    LinkLayer,
)
from repro.pubsub import (
    Notification,
    Filter,
    RangeFilter,
    AttributeConstraint,
    ConjunctionFilter,
    Op,
    covers,
    reduce_by_covering,
    CountingMatchingEngine,
    Broker,
    Client,
    PubSubSystem,
)
from repro.mobility import (
    MobilityProtocol,
    MHHProtocol,
    SubUnsubProtocol,
    HomeBrokerProtocol,
    TwoPhaseProtocol,
    PROTOCOLS,
)
from repro.metrics import MetricsHub, ResultRow, summarize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SimulationError",
    "SchedulingError",
    "TopologyError",
    "RoutingError",
    "FilterError",
    "ProtocolError",
    "ClientStateError",
    "ConfigurationError",
    # simulation
    "Simulator",
    "Process",
    "spawn",
    "RandomStreams",
    "Tracer",
    # drivers
    "SimulatedDriver",
    "LiveDriver",
    "AsyncioClock",
    "VirtualClock",
    "run_soak",
    # network
    "Topology",
    "grid_topology",
    "SpanningTree",
    "minimum_spanning_tree",
    "ShortestPaths",
    "LinkLayer",
    # pub/sub
    "Notification",
    "Filter",
    "RangeFilter",
    "AttributeConstraint",
    "ConjunctionFilter",
    "Op",
    "covers",
    "reduce_by_covering",
    "CountingMatchingEngine",
    "Broker",
    "Client",
    "PubSubSystem",
    # mobility
    "MobilityProtocol",
    "MHHProtocol",
    "SubUnsubProtocol",
    "HomeBrokerProtocol",
    "TwoPhaseProtocol",
    "PROTOCOLS",
    # metrics
    "MetricsHub",
    "ResultRow",
    "summarize",
]
