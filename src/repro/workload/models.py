"""Pluggable mobility models and topic-popularity sampling.

The paper's workload (§5.1) moves every mobile client to a *uniformly*
random base station and publishes on *uniformly* random topics. Both are
the friendliest possible case for a mobility protocol: no broker is ever a
hotspot, no pair of brokers sees sustained oscillation, and matching load
spreads evenly. The mobility literature (PSVR, the M&M micro-mobility
work) breaks protocols precisely where those assumptions fail, so the
workload layer exposes both choices as pluggable models:

* **where a mobile client reconnects** — a :class:`MobilityModel` from the
  registry below (``uniform`` — the paper's model and the default —
  ``hotspot``, ``ping-pong``, ``trace``);
* **which topics publishers emit** — :class:`TopicSampler`, uniform by
  default, Zipf-skewed when ``topic_skew > 0``.

Adding a model
--------------
Subclass :class:`MobilityModel`, set a unique ``name``, implement
``next_broker``, and decorate with :func:`register_mobility_model`::

    @register_mobility_model
    class CommuterModel(MobilityModel):
        name = "commuter"
        def next_broker(self, rng, client):
            ...

Select it via ``WorkloadSpec(mobility_model="commuter",
mobility_params={...})`` — the params dict is passed to the constructor.
Models draw all randomness from the per-client stream handed to
``next_broker``, so two models differ only in the draws they make: the
default ``uniform`` model makes exactly the seed code path's draws, which
keeps the paper figures bit-identical.

Determinism contract: a model must derive every decision from its
constructor params, :meth:`MobilityModel.bind`-time system state, and the
RNG it is handed — never from wall clock, global state, or dict iteration
over non-deterministic orders. The conformance fuzzer replays scenarios
from seeds and will catch violations as cross-run divergence.
"""

from __future__ import annotations

from typing import Any, ClassVar, Mapping, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.client import Client
    from repro.pubsub.system import PubSubSystem

__all__ = [
    "MobilityModel",
    "MOBILITY_MODELS",
    "register_mobility_model",
    "make_mobility_model",
    "UniformMobility",
    "HotspotMobility",
    "PingPongMobility",
    "TraceReplayMobility",
    "TopicSampler",
    "zipf_weights",
]


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf weights ``(rank+1)^-exponent`` over ``n`` ranks."""
    check_positive("n", n)
    check_non_negative("exponent", exponent)
    w = np.arange(1, n + 1, dtype=np.float64) ** -float(exponent)
    return w / w.sum()


# ---------------------------------------------------------------------------
# mobility models
# ---------------------------------------------------------------------------
class MobilityModel:
    """Chooses *where* a mobile client reconnects.

    The workload keeps the paper's *timing* (exponential connect /
    disconnect periods) for every model; a model only decides the
    destination base station. One model instance serves the whole
    population — per-client state must be keyed by ``client.id``.
    """

    #: registry key; subclasses must override
    name: ClassVar[str] = ""

    def bind(self, system: "PubSubSystem") -> None:
        """Late-bind to the system (topology, broker count). Called once
        by the workload before any ``next_broker``; override to precompute
        (always call ``super().bind``)."""
        self.system = system
        self.n = system.broker_count

    def next_broker(self, rng: np.random.Generator, client: "Client") -> int:
        """The base station ``client`` reconnects at after this
        disconnection period. ``rng`` is the client's own mobility stream —
        draw all randomness from it."""
        raise NotImplementedError


#: name -> model class (see module docstring for how to add one)
MOBILITY_MODELS: dict[str, type[MobilityModel]] = {}


def register_mobility_model(cls: type[MobilityModel]) -> type[MobilityModel]:
    """Class decorator: add ``cls`` to the model registry under its name."""
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} must set a non-empty name")
    if cls.name in MOBILITY_MODELS:
        raise ConfigurationError(
            f"mobility model {cls.name!r} is already registered"
        )
    MOBILITY_MODELS[cls.name] = cls
    return cls


def make_mobility_model(
    name: str, params: Optional[Mapping[str, Any]] = None
) -> MobilityModel:
    """Instantiate a registered model (unbound; the workload binds it)."""
    cls = MOBILITY_MODELS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown mobility model {name!r}; "
            f"registered: {sorted(MOBILITY_MODELS)}"
        )
    return cls(**dict(params or {}))


@register_mobility_model
class UniformMobility(MobilityModel):
    """The paper's model: every base station equally likely (§5.1).

    Draw-for-draw identical to the pre-registry workload code, so default
    runs reproduce the seed figures bit-for-bit.
    """

    name = "uniform"

    def next_broker(self, rng: np.random.Generator, client: "Client") -> int:
        return int(rng.integers(self.n))


@register_mobility_model
class HotspotMobility(MobilityModel):
    """Zipf-skewed base-station preference: a few stations draw most
    reconnects (city-center cells, stadium events). Station rank equals
    station id — broker 0 is the hottest — which concentrates handoff
    traffic and matching load on one grid corner.
    """

    name = "hotspot"

    def __init__(self, exponent: float = 1.1) -> None:
        check_non_negative("exponent", exponent)
        self.exponent = exponent

    def bind(self, system: "PubSubSystem") -> None:
        super().bind(system)
        self.weights = zipf_weights(self.n, self.exponent)

    def next_broker(self, rng: np.random.Generator, client: "Client") -> int:
        return int(rng.choice(self.n, p=self.weights))


@register_mobility_model
class PingPongMobility(MobilityModel):
    """Adjacent-broker oscillation: each client bounces between its home
    station and its home's smallest-id grid neighbour — the cell-boundary
    flapping case that stresses handoff pipelining (rapid moves between
    the same two brokers, each reconnect racing the previous handoff's
    control messages).
    """

    name = "ping-pong"

    def bind(self, system: "PubSubSystem") -> None:
        super().bind(system)
        self._partner = {
            b: min(system.topology.neighbors(b), default=b)
            for b in range(self.n)
        }

    def next_broker(self, rng: np.random.Generator, client: "Client") -> int:
        home = client.home_broker
        partner = self._partner[home]
        # oscillate: if last seen at home, go to the partner, else home
        return partner if client.last_broker == home else home


@register_mobility_model
class TraceReplayMobility(MobilityModel):
    """Replay recorded movement: each client walks its trace (a sequence
    of broker ids), cycling when it runs out. Clients without a trace walk
    the grid deterministically (``home+1, home+2, ...`` modulo n), so a
    partial trace still yields a fully specified scenario.

    ``trace`` maps client id -> sequence of broker ids.
    """

    name = "trace"

    def __init__(self, trace: Optional[Mapping[int, Sequence[int]]] = None) -> None:
        self.trace = {int(c): tuple(int(b) for b in seq)
                      for c, seq in dict(trace or {}).items()}
        self._pos: dict[int, int] = {}

    def bind(self, system: "PubSubSystem") -> None:
        super().bind(system)
        for cid, seq in self.trace.items():
            for b in seq:
                if not 0 <= b < self.n:
                    raise ConfigurationError(
                        f"trace for client {cid} names broker {b}, but the "
                        f"topology has brokers 0..{self.n - 1}"
                    )

    def next_broker(self, rng: np.random.Generator, client: "Client") -> int:
        step = self._pos.get(client.id, 0)
        self._pos[client.id] = step + 1
        seq = self.trace.get(client.id)
        if seq:
            return seq[step % len(seq)]
        return (client.home_broker + 1 + step) % self.n


# ---------------------------------------------------------------------------
# topic popularity
# ---------------------------------------------------------------------------
class TopicSampler:
    """Draws publication topics in ``[0, 1)``.

    ``skew == 0`` (default) is the paper's uniform draw — one ``uniform()``
    call, bit-identical to the seed code path. ``skew > 0`` partitions the
    topic space into ``bins`` equal slices whose popularity follows Zipf
    with the given exponent (slice 0 — topics near 0.0 — hottest); within a
    slice, topics stay uniform. Skewed popularity concentrates matching and
    delivery load on the subscribers of the hot slices, the classic
    workload of real pub/sub feeds.
    """

    def __init__(self, skew: float = 0.0, bins: int = 50) -> None:
        check_non_negative("skew", skew)
        check_positive("bins", bins)
        self.skew = skew
        self.bins = int(bins)
        self._weights = zipf_weights(self.bins, skew) if skew > 0 else None

    def draw(self, rng: np.random.Generator) -> float:
        if self._weights is None:
            return float(rng.uniform())
        b = int(rng.choice(self.bins, p=self._weights))
        return (b + float(rng.uniform())) / self.bins
