"""Workload parameter record.

All durations are in **seconds** (the paper quotes seconds/minutes); the
simulation itself runs in milliseconds — conversion happens at the edge, in
:mod:`repro.workload.mobility_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = ["WorkloadSpec"]

SECONDS = 1000.0  # ms per second


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the paper's workload (§5.1 defaults)."""

    clients_per_broker: int = 10
    mobile_fraction: float = 0.2
    mean_connected_s: float = 300.0
    mean_disconnected_s: float = 300.0
    publish_interval_s: float = 300.0
    match_fraction: float = 0.0625
    duration_s: float = 1800.0
    #: delay before mobility begins, letting initial subscriptions settle
    warmup_s: float = 2.0

    def __post_init__(self) -> None:
        check_positive("clients_per_broker", self.clients_per_broker)
        check_probability("mobile_fraction", self.mobile_fraction)
        check_positive("mean_connected_s", self.mean_connected_s)
        check_positive("mean_disconnected_s", self.mean_disconnected_s)
        check_positive("publish_interval_s", self.publish_interval_s)
        check_in_range("match_fraction", self.match_fraction, 0.0, 0.5)
        check_positive("duration_s", self.duration_s)
        check_non_negative("warmup_s", self.warmup_s)

    @property
    def duration_ms(self) -> float:
        return self.duration_s * SECONDS

    @property
    def warmup_ms(self) -> float:
        return self.warmup_s * SECONDS
