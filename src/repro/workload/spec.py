"""Workload parameter record.

All durations are in **seconds** (the paper quotes seconds/minutes); the
simulation itself runs in milliseconds — conversion happens at the edge, in
:mod:`repro.workload.mobility_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = ["WorkloadSpec"]

SECONDS = 1000.0  # ms per second


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the paper's workload (§5.1 defaults).

    The defaults reproduce the paper exactly; ``mobility_model`` /
    ``mobility_params`` and ``topic_skew`` / ``topic_bins`` swap in
    adversarial movement and topic-popularity models from
    :mod:`repro.workload.models` (the defaults are draw-for-draw the
    paper's uniform models).
    """

    clients_per_broker: int = 10
    mobile_fraction: float = 0.2
    mean_connected_s: float = 300.0
    mean_disconnected_s: float = 300.0
    publish_interval_s: float = 300.0
    match_fraction: float = 0.0625
    duration_s: float = 1800.0
    #: delay before mobility begins, letting initial subscriptions settle
    warmup_s: float = 2.0
    #: registered mobility model choosing reconnect destinations
    mobility_model: str = "uniform"
    #: constructor kwargs for the mobility model (e.g. hotspot exponent)
    mobility_params: Mapping[str, Any] = field(default_factory=dict)
    #: Zipf exponent for topic popularity (0 = the paper's uniform topics)
    topic_skew: float = 0.0
    #: number of equal topic-space slices the Zipf skew ranks
    topic_bins: int = 50

    def __post_init__(self) -> None:
        check_positive("clients_per_broker", self.clients_per_broker)
        check_probability("mobile_fraction", self.mobile_fraction)
        check_positive("mean_connected_s", self.mean_connected_s)
        check_positive("mean_disconnected_s", self.mean_disconnected_s)
        check_positive("publish_interval_s", self.publish_interval_s)
        check_in_range("match_fraction", self.match_fraction, 0.0, 0.5)
        check_positive("duration_s", self.duration_s)
        check_non_negative("warmup_s", self.warmup_s)
        check_non_negative("topic_skew", self.topic_skew)
        check_positive("topic_bins", self.topic_bins)
        from repro.workload.models import MOBILITY_MODELS

        if self.mobility_model not in MOBILITY_MODELS:
            raise ConfigurationError(
                f"unknown mobility model {self.mobility_model!r}; "
                f"registered: {sorted(MOBILITY_MODELS)}"
            )

    @property
    def duration_ms(self) -> float:
        return self.duration_s * SECONDS

    @property
    def warmup_ms(self) -> float:
        return self.warmup_s * SECONDS
