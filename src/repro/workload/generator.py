"""Subscription and population generation.

Subscriptions are closed topic ranges over ``[0, 1)``. Widths are drawn
uniformly from ``[0, 2 * match_fraction]`` so the *mean* width — and hence
the mean fraction of clients matching a uniformly drawn event topic — equals
the paper's 6.25 %. Variable widths matter: with equal widths no
subscription would ever cover another, and the covering-based pruning the
paper invokes for the sub-unsub baseline at scale (Figure 6(a)) would be
inert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.pubsub.filters import RangeFilter
from repro.sim.rng import RandomStreams
from repro.util.validation import check_in_range

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.client import Client
    from repro.pubsub.system import PubSubSystem
    from repro.workload.spec import WorkloadSpec

__all__ = ["SubscriptionGenerator", "build_population"]


class SubscriptionGenerator:
    """Draws subscription range filters with a target mean match fraction."""

    def __init__(self, streams: RandomStreams, match_fraction: float) -> None:
        check_in_range("match_fraction", match_fraction, 0.0, 0.5)
        self.streams = streams
        self.match_fraction = match_fraction

    def draw(self, client_index: int) -> RangeFilter:
        """Subscription filter for the ``client_index``-th client."""
        rng = self.streams.stream(f"workload/subscription/{client_index}")
        width = float(rng.uniform(0.0, 2.0 * self.match_fraction))
        lo = float(rng.uniform(0.0, 1.0 - width))
        return RangeFilter(lo, lo + width)


def build_population(
    system: "PubSubSystem", spec: "WorkloadSpec"
) -> tuple[list["Client"], list["Client"]]:
    """Create the paper's client population.

    Each broker hosts ``clients_per_broker`` clients; a deterministic (per
    seed) random 20 % of all clients are mobile. Returns
    ``(static_clients, mobile_clients)``. Clients are *not* connected yet.
    """
    gen = SubscriptionGenerator(system.streams, spec.match_fraction)
    clients: list["Client"] = []
    for broker_id in range(system.broker_count):
        for _ in range(spec.clients_per_broker):
            filt = gen.draw(len(clients))
            clients.append(system.add_client(filt, broker=broker_id))
    n_mobile = round(spec.mobile_fraction * len(clients))
    picker = system.streams.stream("workload/mobile-selection")
    mobile_idx = set(
        picker.choice(len(clients), size=n_mobile, replace=False).tolist()
    )
    static: list["Client"] = []
    mobile: list["Client"] = []
    for i, client in enumerate(clients):
        if i in mobile_idx:
            client.mobile = True
            mobile.append(client)
        else:
            static.append(client)
    return static, mobile
