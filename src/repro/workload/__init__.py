"""The paper's workload model (Section 5.1).

* k x k base stations, 10 clients per broker;
* 20 % of clients are mobile; connection and disconnection period lengths
  are exponentially distributed;
* on silent-move reconnection the target broker is chosen uniformly from
  all base stations;
* every client publishes (while connected) at a mean rate of one event per
  five minutes;
* subscriptions are topic ranges generated so that, on average, 6.25 % of
  clients match each published event (variable widths, so the covering
  relation has bite — the effect the paper's Figure 6(a) discussion needs).
"""

from repro.workload.spec import WorkloadSpec
from repro.workload.generator import SubscriptionGenerator, build_population
from repro.workload.mobility_model import Workload

__all__ = [
    "WorkloadSpec",
    "SubscriptionGenerator",
    "build_population",
    "Workload",
]
