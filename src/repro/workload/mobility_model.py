"""Client behaviour processes: mobility and publishing.

Mobility pattern (paper §5.1): "Each mobile client disconnects and
reconnects from time to time, and the location of each time of connection
is randomly chosen from all base stations. The lengths of connection
periods and disconnection periods for mobile clients are random variables
that satisfy the exponential distribution."

The *timing* above is fixed; *where* a client reconnects and *which*
topics publishers favour are pluggable (``WorkloadSpec.mobility_model`` /
``topic_skew``, resolved through :mod:`repro.workload.models`). The
defaults make exactly the draws the paper's code made, so seeded default
runs are bit-identical.

Publishing: every client publishes at exponential intervals (mean five
minutes) while connected; publishes that would fall into a disconnection
period are skipped (a detached device cannot publish). Topics are uniform
floats in ``[0, 1)`` on the primary ``topic`` attribute (Zipf-sliced when
skew is on); subscriptions are contiguous topic ranges, so on the broker
side each published event is resolved by the broker-wide counting engine
(:mod:`repro.pubsub.matching`) — per-group interval stabs decide which
neighbours to forward to and the counting pass picks the matching client
entries, both in one pass per broker hop.

Only silent moves are simulated (paper §5.1); the proclaimed-move API is
exercised by unit tests and examples instead. Rapid-fire silent moves are
legitimate here: reconnects can outrun the handoff control messages of the
previous move, which is why every connect carries a monotone epoch (see
:meth:`repro.pubsub.client.Client.connect`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.process import Process, spawn
from repro.workload.models import TopicSampler, make_mobility_model
from repro.workload.spec import SECONDS, WorkloadSpec
from repro.workload.generator import build_population

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.client import Client
    from repro.pubsub.system import PubSubSystem

__all__ = ["Workload"]


class Workload:
    """Drives the paper's workload on a :class:`PubSubSystem`.

    Construction creates the population and starts all processes; call
    :meth:`stop` at the end of the measurement window (the runner then
    performs the drain phase).
    """

    def __init__(self, system: "PubSubSystem", spec: WorkloadSpec) -> None:
        self.system = system
        self.spec = spec
        self.mobility = make_mobility_model(
            spec.mobility_model, spec.mobility_params
        )
        self.mobility.bind(system)
        self.topics = TopicSampler(spec.topic_skew, spec.topic_bins)
        self.static_clients, self.mobile_clients = build_population(system, spec)
        self._processes: list[Process] = []
        self._stopped = False
        # processes ride the sans-IO clock facade, so the same workload
        # drives the simulated and the live (asyncio) drivers unchanged
        clock = system.clock
        # initial attachment: everyone connects at its home broker at t=0
        for client in self.static_clients + self.mobile_clients:
            client.connect(client.home_broker)
        for client in self.static_clients + self.mobile_clients:
            self._processes.append(
                spawn(
                    clock,
                    self._publisher(client),
                    start_delay=spec.warmup_ms,
                    name=f"pub/{client.id}",
                )
            )
        for client in self.mobile_clients:
            self._processes.append(
                spawn(
                    clock,
                    self._mover(client),
                    start_delay=spec.warmup_ms,
                    name=f"move/{client.id}",
                )
            )

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def _publisher(self, client: "Client"):
        rng = self.system.streams.stream(f"workload/publish/{client.id}")
        mean_ms = self.spec.publish_interval_s * SECONDS
        while True:
            yield float(rng.exponential(mean_ms))
            if self._stopped:
                return
            if client.connected:
                client.publish(topic=self.topics.draw(rng))

    def _mover(self, client: "Client"):
        rng = self.system.streams.stream(f"workload/mobility/{client.id}")
        conn_ms = self.spec.mean_connected_s * SECONDS
        disc_ms = self.spec.mean_disconnected_s * SECONDS
        while True:
            yield float(rng.exponential(conn_ms))
            if self._stopped:
                return
            if client.connected:  # a broker crash may have detached it already
                client.disconnect()
            yield float(rng.exponential(disc_ms))
            if self._stopped:
                # leave the client disconnected; the drain phase reconnects it
                return
            client.connect(self.mobility.next_broker(rng, client))

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """End the measurement window: freeze all behaviour processes."""
        self._stopped = True
        for proc in self._processes:
            proc.interrupt()

    def reconnect_all(self) -> None:
        """Reattach every disconnected client at its last-visited broker
        (home broker if it never moved) — the drain-phase preamble shared
        by the experiment runner and the live drivers."""
        for client in self.all_clients:
            if not client.connected:
                target = (
                    client.last_broker
                    if client.last_broker is not None
                    else client.home_broker
                )
                client.connect(target)

    @property
    def all_clients(self) -> list["Client"]:
        return self.static_clients + self.mobile_clients
