"""Experiment configuration and scale presets.

``paper`` scale matches Section 5.1 exactly (k=10 / size sweep, 10 clients
per broker, 20 % mobile, exponential 5-minute periods, one event per client
per 5 minutes, 6.25 % matching). ``small`` and ``smoke`` shrink the grid,
population and measurement window proportionally so tests and default
benchmark runs finish quickly while preserving every ratio that shapes the
curves (mobility timescales vs link latencies, match fraction, backlog per
disconnection).

Select the benchmark scale with the ``MHH_BENCH_SCALE`` environment
variable (``smoke`` | ``small`` | ``paper``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.network.faults import FaultProfile
from repro.network.recovery import CrashPlan
from repro.workload.spec import WorkloadSpec

__all__ = ["ExperimentConfig", "SCALES", "bench_scale"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation run: a protocol on a grid under a workload."""

    protocol: str
    grid_k: int = 10
    seed: int = 1
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    migration_batch_size: int = 10
    #: override covering (None = protocol default)
    covering_enabled: Optional[bool] = None
    #: hard wall on the drain phase in simulated ms (None = unbounded)
    drain_limit_ms: Optional[float] = None
    #: scheduler implementation: 'lanes' (default) or 'heap' (legacy,
    #: kept for differential testing — see repro.sim.core)
    sim_engine: str = "lanes"
    #: indexed covering control plane (default) vs the legacy scan-based
    #: covering checks (kept for differential testing — see
    #: repro.pubsub.filter_table)
    covering_index: bool = True
    #: broker matching implementation: 'counting' (default) or 'scan'
    #: (legacy path, kept for differential testing — see
    #: repro.pubsub.matching); 'counting-compiled' selects the optional
    #: mypyc build (repro.accel)
    matching_engine: str = "counting"
    #: batched event fan-out: drain same-instant wired EventMessage
    #: arrivals at a broker as one FilterTable.match_batch pass.
    #: Trace-identical to per-event routing (fuzzer-gated); default off so
    #: seed digests are untouched
    event_batching: bool = False
    #: wireless fault profile (None = perfect links; see
    #: repro.network.faults)
    faults: Optional[FaultProfile] = None
    #: broker crash/restart/partition schedule (None = crash-free; see
    #: repro.network.recovery)
    crashes: Optional[CrashPlan] = None
    #: end-to-end reliable downlink delivery (ACK/retransmit with backoff
    #: + per-link circuit breakers; see repro.pubsub.reliability).
    #: Default off = the paper's best-effort downlink, byte-identical.
    reliable: bool = False
    #: retransmission attempts per frame before the window is written off
    retry_budget: int = 8
    #: downlink bulkhead: max queued messages per client before the shed
    #: policy runs (None = unbounded, the paper's model)
    queue_cap: Optional[int] = None
    #: durable broker state: per-broker write-ahead log + persistent
    #: client sessions with repair-round handover (see repro.pubsub.wal).
    #: Default off = volatile brokers, byte-identical to the seed.
    durable: bool = False
    #: directory for file-backed WAL segments (None = the driver's
    #: default store: in-memory under simulation, a scratch dir live)
    wal_dir: Optional[str] = None

    def with_workload(self, **changes: Any) -> "ExperimentConfig":
        return replace(self, workload=replace(self.workload, **changes))

    def label(self) -> str:
        fault_tag = (
            f" {self.faults.label()}"
            if self.faults is not None and self.faults.active
            else ""
        )
        crash_tag = (
            f" [{self.crashes.label()}]"
            if self.crashes is not None and self.crashes.active
            else ""
        )
        rel_tag = ""
        if self.reliable:
            rel_tag = f" rel(budget={self.retry_budget})"
        if self.queue_cap is not None:
            rel_tag += f" cap={self.queue_cap}"
        if self.durable:
            rel_tag += " dur"
        return (
            f"{self.protocol} k={self.grid_k} "
            f"conn={self.workload.mean_connected_s:g}s "
            f"disc={self.workload.mean_disconnected_s:g}s "
            f"T={self.workload.duration_s:g}s seed={self.seed}"
            f"{fault_tag}{crash_tag}{rel_tag}"
        )


#: named presets shrinking the paper's setup for fast runs
SCALES: dict[str, dict[str, Any]] = {
    # full Section 5.1 parameters
    "paper": {"grid_k": 10, "clients_per_broker": 10, "duration_s": 2400.0},
    # ~4x smaller population, same time constants
    "small": {"grid_k": 7, "clients_per_broker": 5, "duration_s": 1200.0},
    # minutes of simulated time, tiny grid: CI-speed
    "smoke": {"grid_k": 4, "clients_per_broker": 4, "duration_s": 600.0},
}


def bench_scale(default: str = "smoke") -> str:
    """Benchmark scale from ``MHH_BENCH_SCALE`` (validated)."""
    scale = os.environ.get("MHH_BENCH_SCALE", default)
    if scale not in SCALES:
        raise ConfigurationError(
            f"MHH_BENCH_SCALE must be one of {sorted(SCALES)}, got {scale!r}"
        )
    return scale
