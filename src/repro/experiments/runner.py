"""End-to-end scenario runner.

A run has three phases:

1. **measurement** — the workload drives connects/disconnects/publishes for
   ``duration_s`` of simulated time; traffic and handoff metrics accumulate.
2. **snapshot** — overhead hops, handoff counts and delays are frozen
   (drain-phase traffic must not pollute the paper's per-handoff metrics).
3. **drain** — publishing and movement stop, every disconnected client
   reconnects at its last-visited broker, and the simulation runs until the
   event heap empties and the protocol reports quiescence. After the drain,
   every reliable protocol must satisfy ``expected == delivered + lost``
   exactly — the delivery checker turns the paper's reliability claims into
   hard assertions.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import SimulationError
from repro.experiments.config import ExperimentConfig
from repro.metrics.summary import ResultRow, summarize
from repro.pubsub.system import PubSubSystem
from repro.workload.mobility_model import Workload

__all__ = ["run_experiment", "build_system", "drain_to_quiescence"]


def build_system(cfg: ExperimentConfig) -> tuple[PubSubSystem, Workload]:
    """Construct the system + workload for a config (not yet run)."""
    system = PubSubSystem(
        grid_k=cfg.grid_k,
        protocol=cfg.protocol,
        seed=cfg.seed,
        covering_enabled=cfg.covering_enabled,
        migration_batch_size=cfg.migration_batch_size,
        sim_engine=cfg.sim_engine,
        covering_index=cfg.covering_index,
        matching_engine=cfg.matching_engine,
        faults=cfg.faults,
        crashes=cfg.crashes,
        reliable=cfg.reliable,
        retry_budget=cfg.retry_budget,
        queue_cap=cfg.queue_cap,
        durable=cfg.durable,
        wal_dir=cfg.wal_dir,
        event_batching=cfg.event_batching,
    )
    workload = Workload(system, cfg.workload)
    return system, workload


def run_experiment(cfg: ExperimentConfig) -> ResultRow:
    """Run one scenario to completion and summarise it."""
    wall_start = time.perf_counter()
    system, workload = build_system(cfg)
    system.run(until=cfg.workload.duration_ms)
    workload.stop()

    # ------------------------------------------------------------------
    # snapshot the paper's metrics before the drain phase
    # ------------------------------------------------------------------
    overhead_hops = system.metrics.traffic.overhead_hops()
    overhead_by_cat = dict(system.metrics.traffic.by_category())
    handoffs = system.metrics.handoffs.handoff_count
    mean_delay = system.metrics.handoffs.mean_delay()
    median_delay = system.metrics.handoffs.median_delay()
    # handoffs whose first delivery has not happened yet must not have their
    # delay filled in by drain-phase deliveries
    system.metrics.handoffs.discard_open()

    drain_to_quiescence(system, workload, cfg.drain_limit_ms)

    row = summarize(
        cfg.protocol,
        system.metrics,
        params={
            "k": cfg.grid_k,
            "brokers": system.broker_count,
            "conn_s": cfg.workload.mean_connected_s,
            "disc_s": cfg.workload.mean_disconnected_s,
            "duration_s": cfg.workload.duration_s,
            "seed": cfg.seed,
        },
        sim_events=system.sim.events_processed,
        wall_seconds=time.perf_counter() - wall_start,
    )
    row.handoffs = handoffs
    row.overhead_per_handoff = (
        overhead_hops / handoffs if handoffs else None
    )
    row.mean_handoff_delay_ms = mean_delay
    row.median_handoff_delay_ms = median_delay
    row.overhead_by_category = overhead_by_cat
    return row


def drain_to_quiescence(
    system: PubSubSystem,
    workload: Workload,
    drain_limit_ms: Optional[float] = None,
) -> None:
    """Reconnect everyone and run until the system is empty and quiescent."""
    deadline = (
        system.sim.now + drain_limit_ms if drain_limit_ms is not None else None
    )
    workload.reconnect_all()
    # The drain may need several rounds: reconnects trigger handoff
    # machinery whose completion schedules more events.
    for _round in range(10_000):
        system.sim.run(until=deadline)
        if system.sim.peek() is None:
            if system.protocol.quiescent():
                system.metrics.delivery.finalize_crash_accounting()
                return
            raise SimulationError(
                "drain deadlock: event heap empty but protocol not quiescent"
            )
        if deadline is not None and system.sim.now >= deadline:
            raise SimulationError(
                f"drain did not finish within {drain_limit_ms} ms"
            )
    raise SimulationError("drain did not converge")  # pragma: no cover
