"""Experiment harness: configuration, runner, and figure sweep drivers.

Each figure of the paper's evaluation (Figures 5(a,b) and 6(a,b)) has a
sweep driver in :mod:`repro.experiments.figures` that runs the three
protocols over the figure's parameter axis and returns the rows/series the
paper plots. ``python -m repro.experiments.cli fig5a`` prints them.
"""

from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.runner import run_experiment
from repro.experiments.figures import (
    fig5a,
    fig5b,
    fig6a,
    fig6b,
    run_fig5,
    run_fig6,
    CONN_PERIOD_SWEEP_S,
    GRID_SIZE_SWEEP,
)
from repro.experiments.report import format_table, format_series

__all__ = [
    "ExperimentConfig",
    "SCALES",
    "run_experiment",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "run_fig5",
    "run_fig6",
    "CONN_PERIOD_SWEEP_S",
    "GRID_SIZE_SWEEP",
    "format_table",
    "format_series",
]
