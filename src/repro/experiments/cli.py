"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments.cli fig5a [--scale smoke|small|paper] [--seed N]
    python -m repro.experiments.cli fig6b --scale paper
    python -m repro.experiments.cli all --scale small

``fig5a``/``fig5b`` share one sweep, as do ``fig6a``/``fig6b``; asking for
both panels of a figure runs the sweep once.

Adversarial variants of the paper sweeps: ``--loss/--dup/--jitter`` switch
on seeded wireless fault injection (:mod:`repro.network.faults`) and
``--mobility``/``--topic-skew`` swap the movement and topic-popularity
models (:mod:`repro.workload.models`). All default off — the plain
invocation reproduces the paper bit-for-bit.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.experiments import figures, report
from repro.network.faults import FaultProfile
from repro.workload.models import MOBILITY_MODELS

__all__ = ["main"]

_FIG5 = {"fig5a", "fig5b"}
_FIG6 = {"fig6a", "fig6b"}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Regenerate the MHH paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(_FIG5 | _FIG6 | {"fig5", "fig6", "all"}),
        help="which figure (or panel) to regenerate",
    )
    parser.add_argument("--scale", default="small",
                        choices=["smoke", "small", "paper"])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="fan the sweep's independent runs out over N "
                             "processes (default: serial)")
    parser.add_argument("--raw", action="store_true",
                        help="also print the full per-run result table")
    parser.add_argument("--loss", type=float, default=0.0, metavar="P",
                        help="wireless delivery loss probability (default 0)")
    parser.add_argument("--dup", type=float, default=0.0, metavar="P",
                        help="wireless delivery duplication probability "
                             "(default 0)")
    parser.add_argument("--jitter", type=float, default=0.0, metavar="MS",
                        help="max extra wireless service latency in ms "
                             "(default 0)")
    parser.add_argument("--mobility", default=None,
                        choices=sorted(MOBILITY_MODELS),
                        help="mobility model for mobile clients "
                             "(default: the paper's uniform model)")
    parser.add_argument("--topic-skew", type=float, default=0.0, metavar="S",
                        help="Zipf exponent for topic popularity "
                             "(0 = uniform, the paper's model)")
    args = parser.parse_args(argv)

    faults = None
    if args.loss or args.dup or args.jitter:
        faults = FaultProfile(
            deliver_loss=args.loss,
            deliver_duplicate=args.dup,
            wireless_jitter_ms=args.jitter,
        )
    overrides: dict[str, Any] = {}
    if args.mobility is not None:
        overrides["mobility_model"] = args.mobility
    if args.topic_skew:
        overrides["topic_skew"] = args.topic_skew

    want = {args.figure}
    if args.figure == "fig5":
        want = _FIG5
    elif args.figure == "fig6":
        want = _FIG6
    elif args.figure == "all":
        want = _FIG5 | _FIG6

    out: list[str] = []
    if want & _FIG5:
        rows5 = figures.run_fig5(
            scale=args.scale, seed=args.seed, workers=args.workers,
            faults=faults, workload_overrides=overrides or None,
        )
        if "fig5a" in want:
            out.append(report.format_series(
                figures.fig5a(rows5), "conn_period_s", "msg overhead / handoff",
                title="Figure 5(a): message overhead per handoff vs connection period",
            ))
        if "fig5b" in want:
            out.append(report.format_series(
                figures.fig5b(rows5), "conn_period_s", "handoff delay (ms)",
                title="Figure 5(b): handoff delay vs connection period",
            ))
        if args.raw:
            out.append(report.format_table(rows5, title="Figure 5 raw runs"))
    if want & _FIG6:
        rows6 = figures.run_fig6(
            scale=args.scale, seed=args.seed, workers=args.workers,
            faults=faults, workload_overrides=overrides or None,
        )
        if "fig6a" in want:
            out.append(report.format_series(
                figures.fig6a(rows6), "base_stations", "msg overhead / handoff",
                title="Figure 6(a): message overhead per handoff vs network size",
            ))
        if "fig6b" in want:
            out.append(report.format_series(
                figures.fig6b(rows6), "base_stations", "handoff delay (ms)",
                title="Figure 6(b): handoff delay vs network size",
            ))
        if args.raw:
            out.append(report.format_table(rows6, title="Figure 6 raw runs"))
    print("\n\n".join(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
