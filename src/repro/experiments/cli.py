"""Command-line entry point: regenerate the paper's figures, or soak live.

Usage::

    python -m repro.experiments.cli fig5a [--scale smoke|small|paper] [--seed N]
    python -m repro.experiments.cli fig6b --scale paper
    python -m repro.experiments.cli all --scale small
    python -m repro.experiments.cli soak --duration 3 --loss 0.1
    python -m repro.experiments.cli serve --port 7001
    python -m repro.experiments.cli connect --spawn 3 --scenario-seed 303

``fig5a``/``fig5b`` share one sweep, as do ``fig6a``/``fig6b``; asking for
both panels of a figure runs the sweep once.

``soak`` runs the **live asyncio driver** instead of the simulator: the
same broker/protocol kernel under real wall-clock delays, driven by the
standard churn workload for ``--duration`` wall seconds per protocol,
then drained to quiescence and audited against the conformance fuzzer's
delivery invariant matrix (see :mod:`repro.drivers.live`).

Adversarial variants of the paper sweeps: ``--loss/--dup/--jitter`` switch
on seeded wireless fault injection (:mod:`repro.network.faults`) and
``--mobility``/``--topic-skew`` swap the movement and topic-popularity
models (:mod:`repro.workload.models`). ``--reliable`` (with
``--retry-budget``) turns on the end-to-end ACK/retransmit layer and
``--queue-cap`` bounds each client's downlink queue with explicit load
shedding (:mod:`repro.pubsub.reliability`). All default off — the plain
invocation reproduces the paper bit-for-bit. The fault and reliability
flags apply to ``soak`` too.

Broker failures (soak only): ``--broker-crash B@T`` / ``--broker-restart
B@T`` / ``--link-partition A-B@T`` schedule overlay failures at model
second ``T`` (repeatable; see :mod:`repro.network.recovery`); the repair
round runs ``--crash-repair-delay`` model ms after each failure. The
post-drain audit then also checks the crash rows of the invariant matrix.

``serve``/``connect`` run the **multi-process wire harness**
(:mod:`repro.wire`): ``serve`` starts one broker node server (real TCP,
framed binary codec); ``connect`` drives a fuzzer scenario from a
coordinator with the brokers split across node processes — either ones it
spawns itself (``--spawn N``) or already-running servers
(``--node HOST:PORT``, repeatable). ``--verify-sim`` re-runs the scenario
on the simulated driver and diffs the delivery logs (the CI wire-smoke
gate).

Installed entry point: ``mhh-repro`` (see ``setup.cfg``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Optional, Sequence

from repro.experiments import figures, report
from repro.network.faults import FaultProfile
from repro.workload.models import MOBILITY_MODELS

__all__ = ["main"]

_FIG5 = {"fig5a", "fig5b"}
_FIG6 = {"fig6a", "fig6b"}
_SOAK_PROTOCOLS = ("mhh", "sub-unsub", "two-phase", "home-broker")


def _run_soak(args, faults: Optional[FaultProfile]) -> int:
    from repro.drivers.live import run_soak
    from repro.network.recovery import CrashPlan

    crashes = None
    if args.broker_crash or args.broker_restart or args.link_partition:
        crashes = CrashPlan.parse(
            crashes=args.broker_crash,
            restarts=args.broker_restart,
            partitions=args.link_partition,
            repair_delay_ms=args.crash_repair_delay,
        )
    protocols = (
        _SOAK_PROTOCOLS if args.protocol == "all" else (args.protocol,)
    )
    failures: list[tuple[str, list[str]]] = []
    for protocol in protocols:
        result = run_soak(
            protocol,
            grid_k=args.soak_grid,
            seed=args.seed,
            duration_s=args.duration,
            time_scale=args.time_scale,
            faults=faults,
            crashes=crashes,
            reliable=args.reliable,
            retry_budget=args.retry_budget,
            queue_cap=args.queue_cap,
            durable=args.durable,
            wal_dir=args.wal_dir,
        )
        st = result.stats
        status = "PASS" if result.passed else "FAIL"
        print(
            f"{status} {protocol:12s} wall={result.wall_seconds:5.1f}s "
            f"model={result.model_ms / 1000.0:6.1f}s "
            f"handoffs={result.handoffs:3d} published={st.published} "
            f"expected={st.expected} delivered={st.delivered} "
            f"dups={st.duplicates} lost={st.lost_explicit} "
            f"missing={st.missing}"
        )
        for violation in result.violations:
            print(f"     - {violation}")
        if not result.passed:
            failures.append((protocol, result.violations))
    if failures:
        # the non-zero exit names every violated invariant, so a CI log's
        # last line is already the diagnosis
        print(
            "soak FAILED: "
            + "; ".join(
                f"{proto}: {violations[0] if violations else 'unknown'}"
                for proto, violations in failures
            )
        )
        return 1
    return 0


def _run_wire_serve(args) -> int:
    from repro.wire.node import main as node_main

    return node_main([
        "serve", "--host", args.host, "--port", str(args.port),
        "--keepalive", str(args.keepalive),
    ])


def _run_wire_connect(args, faults: Optional[FaultProfile]) -> int:
    import dataclasses

    from repro.conformance.scenarios import PROTOCOLS, Scenario
    from repro.wire.harness import run_socket_scenario

    endpoints = None
    if args.node:
        endpoints = []
        for spec in args.node:
            host, _, port = spec.rpartition(":")
            endpoints.append((host or "127.0.0.1", int(port)))
    base = Scenario.from_seed(args.scenario_seed)
    if faults is not None:
        base = dataclasses.replace(base, faults=faults)
    protocols = (
        PROTOCOLS if args.wire_protocol == "all" else (args.wire_protocol,)
    )
    failures: list[str] = []
    for protocol in protocols:
        scenario = dataclasses.replace(base, protocol=protocol)
        system = run_socket_scenario(
            scenario.config(),
            processes=args.spawn,
            keepalive_s=args.keepalive,
            endpoints=endpoints,
        )
        st = system.metrics.delivery.stats
        wire = system.net.stats
        verdict, detail = "PASS", ""
        if args.verify_sim:
            from repro.conformance.fuzzer import run_scenario

            sim = run_scenario(scenario)
            socket_log = tuple(system.metrics.delivery.log)
            if (
                sim.delivery_log != socket_log
                or (sim.delivered, sim.duplicates, sim.lost, sim.missing)
                != (st.delivered, st.duplicates, st.lost_explicit, st.missing)
            ):
                verdict, detail = "FAIL", " sim-parity MISMATCH"
                failures.append(protocol)
        print(
            f"{verdict} {protocol:12s} published={st.published} "
            f"delivered={st.delivered} dups={st.duplicates} "
            f"lost={st.lost_explicit} missing={st.missing} "
            f"dispatches={wire.dispatches} effects={wire.effects} "
            f"resumes={wire.resumes} tx={wire.bytes_tx}B "
            f"rx={wire.bytes_rx}B{detail}"
        )
    if failures:
        print("wire connect FAILED: " + ", ".join(failures))
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Regenerate the MHH paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(
            _FIG5 | _FIG6 | {"fig5", "fig6", "all", "soak", "serve", "connect"}
        ),
        help="which figure (or panel) to regenerate, 'soak' to run the "
             "live asyncio driver under a churn workload, or "
             "'serve'/'connect' for the multi-process wire harness",
    )
    parser.add_argument("--scale", default=None,
                        choices=["smoke", "small", "paper"])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="fan the sweep's independent runs out over N "
                             "processes (default: serial)")
    parser.add_argument("--raw", action="store_true",
                        help="also print the full per-run result table")
    parser.add_argument("--loss", type=float, default=0.0, metavar="P",
                        help="wireless delivery loss probability (default 0)")
    parser.add_argument("--dup", type=float, default=0.0, metavar="P",
                        help="wireless delivery duplication probability "
                             "(default 0)")
    parser.add_argument("--jitter", type=float, default=0.0, metavar="MS",
                        help="max extra wireless service latency in ms "
                             "(default 0)")
    parser.add_argument("--reliable", action="store_true",
                        help="end-to-end reliable downlink delivery: "
                             "ACK/retransmit with deterministic backoff + "
                             "per-link circuit breakers (default off = the "
                             "paper's best-effort downlink)")
    parser.add_argument("--retry-budget", type=int, default=None, metavar="N",
                        help="retransmission attempts per frame before the "
                             "window is written off (default 8; needs "
                             "--reliable)")
    parser.add_argument("--queue-cap", type=int, default=None, metavar="N",
                        help="bound each client's downlink queue at N "
                             "messages; beyond it data is shed explicitly, "
                             "control never (default: unbounded)")
    parser.add_argument("--durable", action="store_true",
                        help="durable broker state: per-broker write-ahead "
                             "log replayed on crash recovery + persistent "
                             "client sessions with repair-round handover "
                             "(default off = volatile brokers)")
    parser.add_argument("--wal-dir", default=None, metavar="DIR",
                        help="directory for file-backed WAL segments (needs "
                             "--durable; default: the driver's store — "
                             "in-memory for sweeps, a scratch dir for soaks)")
    parser.add_argument("--mobility", default=None,
                        choices=sorted(MOBILITY_MODELS),
                        help="mobility model for mobile clients "
                             "(default: the paper's uniform model)")
    parser.add_argument("--topic-skew", type=float, default=None, metavar="S",
                        help="Zipf exponent for topic popularity "
                             "(0 = uniform, the paper's model)")
    soak = parser.add_argument_group("soak (live asyncio driver)")
    soak.add_argument("--protocol", default=None,
                      choices=sorted(_SOAK_PROTOCOLS) + ["all"],
                      help="protocol(s) to soak (default: all four)")
    soak.add_argument("--duration", type=float, default=None, metavar="S",
                      help="wall-clock seconds of live churn per protocol "
                           "(default 3)")
    soak.add_argument("--time-scale", type=float, default=None, metavar="X",
                      help="model seconds per wall second (default 5: a "
                           "10 ms wired hop takes 2 ms of wall time)")
    soak.add_argument("--soak-grid", type=int, default=None, metavar="K",
                      help="grid size for the soak (default 3)")
    soak.add_argument("--broker-crash", action="append", default=None,
                      metavar="B@T",
                      help="crash broker B at model second T (repeatable)")
    soak.add_argument("--broker-restart", action="append", default=None,
                      metavar="B@T",
                      help="restart broker B (empty state) at model "
                           "second T (repeatable)")
    soak.add_argument("--link-partition", action="append", default=None,
                      metavar="A-B@T",
                      help="partition overlay link A-B at model second T "
                           "(repeatable)")
    soak.add_argument("--crash-repair-delay", type=float, default=None,
                      metavar="MS",
                      help="model ms between a failure event and its "
                           "repair round (default 500)")
    wire = parser.add_argument_group("wire (multi-process socket harness)")
    wire.add_argument("--host", default=None, metavar="HOST",
                      help="serve: interface to listen on "
                           "(default 127.0.0.1)")
    wire.add_argument("--port", type=int, default=None, metavar="PORT",
                      help="serve: TCP port; 0 picks a free one and prints "
                           "it (default 0)")
    wire.add_argument("--keepalive", type=float, default=None, metavar="S",
                      help="wire keepalive ping interval in seconds "
                           "(default 2)")
    wire.add_argument("--node", action="append", default=None,
                      metavar="HOST:PORT",
                      help="connect: address of a running node server "
                           "(repeatable; default: spawn local ones)")
    wire.add_argument("--spawn", type=int, default=None, metavar="N",
                      help="connect: number of local node processes to "
                           "spawn when no --node is given (default 2)")
    wire.add_argument("--scenario-seed", type=int, default=None, metavar="N",
                      help="connect: conformance scenario seed to drive "
                           "over the sockets (default 303)")
    wire.add_argument("--wire-protocol", default=None,
                      choices=sorted(_SOAK_PROTOCOLS) + ["all"],
                      help="connect: protocol(s) to run (default: all four)")
    wire.add_argument("--verify-sim", action="store_true",
                      help="connect: re-run each scenario on the simulated "
                           "driver and require identical delivery logs")
    args = parser.parse_args(argv)

    # --seed and the fault flags are shared; everything else is scoped to
    # one mode. Mode-scoped flags parse with a None sentinel so that a
    # flag *explicitly* passed — even at its documented default value —
    # is rejected in the wrong mode instead of being silently ignored;
    # the real defaults are filled in below, after the check.
    soak_only = ("protocol", "duration", "time_scale", "soak_grid",
                 "broker_crash", "broker_restart", "link_partition",
                 "crash_repair_delay")
    figure_only = ("scale", "workers", "raw", "mobility", "topic_skew")
    serve_only = ("host", "port")
    connect_only = ("node", "spawn", "scenario_seed", "wire_protocol",
                    "verify_sim")
    wire_shared = ("keepalive",)
    mode = args.figure if args.figure in ("soak", "serve", "connect") else "figures"
    allowed = {
        "figures": figure_only,
        "soak": soak_only,
        "serve": serve_only + wire_shared,
        "connect": connect_only + wire_shared,
    }[mode]
    scope_names = {
        "figures": "figure sweeps",
        "soak": "soak",
        "serve": "serve",
        "connect": "connect",
    }
    stray = [
        name
        for name in soak_only + figure_only + serve_only + connect_only
        + wire_shared
        if name not in allowed and getattr(args, name) not in (None, False)
    ]
    if stray:
        parser.error(
            f"--{stray[0].replace('_', '-')} does not apply to "
            f"{scope_names[mode]} (target: {args.figure})"
        )
    if mode in ("serve", "connect"):
        if args.reliable or args.durable or args.queue_cap is not None:
            parser.error(
                "the wire harness does not support "
                "--reliable/--durable/--queue-cap yet"
            )
        if mode == "serve" and (args.loss or args.dup or args.jitter):
            parser.error(
                "fault flags apply to the coordinator (connect), not serve"
            )
        if args.node and args.spawn is not None:
            parser.error("--node and --spawn are mutually exclusive")
    if args.keepalive is None:
        args.keepalive = 2.0
    if args.host is None:
        args.host = "127.0.0.1"
    if args.port is None:
        args.port = 0
    if args.spawn is None:
        args.spawn = 2
    if args.scenario_seed is None:
        args.scenario_seed = 303
    if args.wire_protocol is None:
        args.wire_protocol = "all"
    if args.scale is None:
        args.scale = "small"
    if args.topic_skew is None:
        args.topic_skew = 0.0
    if args.protocol is None:
        args.protocol = "all"
    if args.duration is None:
        args.duration = 3.0
    if args.time_scale is None:
        args.time_scale = 5.0
    if args.soak_grid is None:
        args.soak_grid = 3
    if args.broker_crash is None:
        args.broker_crash = []
    if args.broker_restart is None:
        args.broker_restart = []
    if args.link_partition is None:
        args.link_partition = []
    if args.crash_repair_delay is None:
        from repro.network.recovery import DEFAULT_REPAIR_DELAY_MS
        args.crash_repair_delay = DEFAULT_REPAIR_DELAY_MS
    if args.retry_budget is not None and not args.reliable:
        parser.error("--retry-budget needs --reliable")
    if args.retry_budget is None:
        args.retry_budget = 8
    if args.wal_dir is not None and not args.durable:
        parser.error("--wal-dir needs --durable")
    if args.wal_dir is not None and args.figure != "soak":
        parser.error("--wal-dir only applies to soak (figure sweeps run "
                     "the simulated driver's in-memory store)")

    faults = None
    if args.loss or args.dup or args.jitter:
        faults = FaultProfile(
            deliver_loss=args.loss,
            deliver_duplicate=args.dup,
            wireless_jitter_ms=args.jitter,
        )
    if args.figure == "serve":
        return _run_wire_serve(args)
    if args.figure == "connect":
        return _run_wire_connect(args, faults)
    if args.figure == "soak":
        return _run_soak(args, faults)
    overrides: dict[str, Any] = {}
    if args.mobility is not None:
        overrides["mobility_model"] = args.mobility
    if args.topic_skew:
        overrides["topic_skew"] = args.topic_skew

    want = {args.figure}
    if args.figure == "fig5":
        want = _FIG5
    elif args.figure == "fig6":
        want = _FIG6
    elif args.figure == "all":
        want = _FIG5 | _FIG6

    out: list[str] = []
    if want & _FIG5:
        rows5 = figures.run_fig5(
            scale=args.scale, seed=args.seed, workers=args.workers,
            faults=faults, workload_overrides=overrides or None,
            reliable=args.reliable, retry_budget=args.retry_budget,
            queue_cap=args.queue_cap, durable=args.durable,
        )
        if "fig5a" in want:
            out.append(report.format_series(
                figures.fig5a(rows5), "conn_period_s", "msg overhead / handoff",
                title="Figure 5(a): message overhead per handoff vs connection period",
            ))
        if "fig5b" in want:
            out.append(report.format_series(
                figures.fig5b(rows5), "conn_period_s", "handoff delay (ms)",
                title="Figure 5(b): handoff delay vs connection period",
            ))
        if args.raw:
            out.append(report.format_table(rows5, title="Figure 5 raw runs"))
    if want & _FIG6:
        rows6 = figures.run_fig6(
            scale=args.scale, seed=args.seed, workers=args.workers,
            faults=faults, workload_overrides=overrides or None,
            reliable=args.reliable, retry_budget=args.retry_budget,
            queue_cap=args.queue_cap, durable=args.durable,
        )
        if "fig6a" in want:
            out.append(report.format_series(
                figures.fig6a(rows6), "base_stations", "msg overhead / handoff",
                title="Figure 6(a): message overhead per handoff vs network size",
            ))
        if "fig6b" in want:
            out.append(report.format_series(
                figures.fig6b(rows6), "base_stations", "handoff delay (ms)",
                title="Figure 6(b): handoff delay vs network size",
            ))
        if args.raw:
            out.append(report.format_table(rows6, title="Figure 6 raw runs"))
    print("\n\n".join(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
