"""Sweep drivers regenerating the paper's figures.

* Figure 5 (a: message overhead per handoff, b: mean handoff delay) —
  100 base stations, mean disconnection period 5 min, mean connection
  period swept over {1, 10, 100, 1000, 10000} s.
* Figure 6 (a: overhead, b: delay) — connection = disconnection = 5 min,
  base stations swept over {25, 49, 100, 144, 196} (k in {5, 7, 10, 12, 14}).

All three protocols of the paper run on the *identical* workload (same
seed-derived random streams for subscriptions, publishing and movement), so
curve differences are protocol effects, not sampling noise.

Measurement windows adapt to the sweep point: at least ~1.2 mobility cycles
(so every mobile client hands off at least about once) and at least the
scale preset's base duration.

Sweeps are embarrassingly parallel — every (protocol, sweep-point) run is
an independent deterministic simulation — so both drivers accept
``workers=N`` to fan the runs out over a multiprocessing pool
(``ExperimentConfig`` and ``ResultRow`` both pickle). Results come back in
the same deterministic order as the serial loop, so downstream series
assembly and seeds are unaffected.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.summary import ResultRow
from repro.network.faults import FaultProfile
from repro.workload.spec import WorkloadSpec

__all__ = [
    "CONN_PERIOD_SWEEP_S",
    "GRID_SIZE_SWEEP",
    "PROTOCOLS_UNDER_TEST",
    "run_fig5",
    "run_fig6",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
]

#: Figure 5 x-axis: mean connection period (seconds)
CONN_PERIOD_SWEEP_S: tuple[float, ...] = (1.0, 10.0, 100.0, 1000.0, 10_000.0)
#: Figure 6 x-axis: grid side (k^2 base stations: 25 ... 196)
GRID_SIZE_SWEEP: tuple[int, ...] = (5, 7, 10, 12, 14)
#: the protocols the paper compares
PROTOCOLS_UNDER_TEST: tuple[str, ...] = ("mhh", "sub-unsub", "home-broker")


def _duration_s(base_s: float, conn_s: float, disc_s: float) -> float:
    """Measurement window: >= base and >= ~1.2 mobility cycles."""
    return max(base_s, 1.2 * (conn_s + disc_s))


def _checked_overrides(
    overrides: Optional[Mapping[str, Any]], reserved: tuple[str, ...]
) -> dict[str, Any]:
    """Reject overrides of the fields the sweep itself owns (the sweep
    variable and the scale preset) — splatting them through would raise an
    opaque duplicate-kwarg TypeError deep inside WorkloadSpec."""
    out = dict(overrides or {})
    clashes = sorted(set(out) & set(reserved))
    if clashes:
        raise ConfigurationError(
            f"workload_overrides may not override sweep-owned fields "
            f"{clashes}; use the sweep parameters instead"
        )
    return out


def _run_configs(
    cfgs: Sequence[ExperimentConfig], workers: Optional[int]
) -> list[ResultRow]:
    """Run every config, serially or over a worker pool.

    ``pool.map`` preserves input order, so the returned rows line up with
    the serial loop exactly regardless of which worker finished first.
    """
    if workers is not None and workers > 1 and len(cfgs) > 1:
        with multiprocessing.Pool(processes=min(workers, len(cfgs))) as pool:
            return pool.map(run_experiment, cfgs)
    return [run_experiment(cfg) for cfg in cfgs]


def _sweep_conn(
    scale: str,
    protocols: Sequence[str],
    conn_periods_s: Sequence[float],
    seed: int,
    workers: Optional[int] = None,
    faults: Optional[FaultProfile] = None,
    workload_overrides: Optional[Mapping[str, Any]] = None,
    reliable: bool = False,
    retry_budget: int = 8,
    queue_cap: Optional[int] = None,
    durable: bool = False,
) -> list[ResultRow]:
    preset = SCALES[scale]
    overrides = _checked_overrides(
        workload_overrides,
        ("clients_per_broker", "mean_connected_s", "mean_disconnected_s",
         "duration_s"),
    )
    cfgs = [
        ExperimentConfig(
            protocol=protocol,
            grid_k=preset["grid_k"],
            seed=seed,
            faults=faults,
            reliable=reliable,
            retry_budget=retry_budget,
            queue_cap=queue_cap,
            durable=durable,
            workload=WorkloadSpec(
                clients_per_broker=preset["clients_per_broker"],
                mean_connected_s=conn_s,
                mean_disconnected_s=300.0,
                duration_s=_duration_s(preset["duration_s"], conn_s, 300.0),
                **overrides,
            ),
        )
        for conn_s in conn_periods_s
        for protocol in protocols
    ]
    return _run_configs(cfgs, workers)


def _sweep_size(
    scale: str,
    protocols: Sequence[str],
    grid_sizes: Sequence[int],
    seed: int,
    workers: Optional[int] = None,
    faults: Optional[FaultProfile] = None,
    workload_overrides: Optional[Mapping[str, Any]] = None,
    reliable: bool = False,
    retry_budget: int = 8,
    queue_cap: Optional[int] = None,
    durable: bool = False,
) -> list[ResultRow]:
    preset = SCALES[scale]
    overrides = _checked_overrides(
        workload_overrides,
        ("clients_per_broker", "mean_connected_s", "mean_disconnected_s",
         "duration_s"),
    )
    cfgs = [
        ExperimentConfig(
            protocol=protocol,
            grid_k=k,
            seed=seed,
            faults=faults,
            reliable=reliable,
            retry_budget=retry_budget,
            queue_cap=queue_cap,
            durable=durable,
            workload=WorkloadSpec(
                clients_per_broker=preset["clients_per_broker"],
                mean_connected_s=300.0,
                mean_disconnected_s=300.0,
                duration_s=_duration_s(preset["duration_s"], 300.0, 300.0),
                **overrides,
            ),
        )
        for k in grid_sizes
        for protocol in protocols
    ]
    return _run_configs(cfgs, workers)


# ---------------------------------------------------------------------------
# public sweep entry points
# ---------------------------------------------------------------------------
def run_fig5(
    scale: str = "paper",
    protocols: Sequence[str] = PROTOCOLS_UNDER_TEST,
    conn_periods_s: Optional[Sequence[float]] = None,
    seed: int = 1,
    workers: Optional[int] = None,
    faults: Optional[FaultProfile] = None,
    workload_overrides: Optional[Mapping[str, Any]] = None,
    reliable: bool = False,
    retry_budget: int = 8,
    queue_cap: Optional[int] = None,
    durable: bool = False,
) -> list[ResultRow]:
    """Both panels of Figure 5 share one sweep; run it once.

    ``workers=N`` fans the (protocol, connection-period) runs out over N
    processes; rows come back in the serial loop's order. ``faults`` and
    ``workload_overrides`` (extra :class:`WorkloadSpec` fields — e.g. a
    mobility model or topic skew) turn the paper sweep into an adversarial
    variant; both default to the paper's exact setup.
    """
    return _sweep_conn(
        scale, protocols, conn_periods_s or CONN_PERIOD_SWEEP_S, seed,
        workers=workers, faults=faults, workload_overrides=workload_overrides,
        reliable=reliable, retry_budget=retry_budget, queue_cap=queue_cap,
        durable=durable,
    )


def run_fig6(
    scale: str = "paper",
    protocols: Sequence[str] = PROTOCOLS_UNDER_TEST,
    grid_sizes: Optional[Sequence[int]] = None,
    seed: int = 1,
    workers: Optional[int] = None,
    faults: Optional[FaultProfile] = None,
    workload_overrides: Optional[Mapping[str, Any]] = None,
    reliable: bool = False,
    retry_budget: int = 8,
    queue_cap: Optional[int] = None,
    durable: bool = False,
) -> list[ResultRow]:
    """Both panels of Figure 6 share one sweep; run it once.

    ``workers=N`` fans the (protocol, grid-size) runs out over N processes;
    rows come back in the serial loop's order. ``faults`` /
    ``workload_overrides`` behave as in :func:`run_fig5`.
    """
    return _sweep_size(
        scale, protocols, grid_sizes or GRID_SIZE_SWEEP, seed, workers=workers,
        faults=faults, workload_overrides=workload_overrides,
        reliable=reliable, retry_budget=retry_budget, queue_cap=queue_cap,
        durable=durable,
    )


def _series(
    rows: list[ResultRow], x_key: str, y_attr: str
) -> dict[str, list[tuple[float, Optional[float]]]]:
    out: dict[str, list[tuple[float, Optional[float]]]] = {}
    for row in rows:
        out.setdefault(row.protocol, []).append(
            (row.params[x_key], getattr(row, y_attr))
        )
    for series in out.values():
        series.sort()
    return out


def fig5a(rows: list[ResultRow]) -> dict[str, list[tuple[float, Optional[float]]]]:
    """Figure 5(a): msg overhead / handoff vs mean connection period."""
    return _series(rows, "conn_s", "overhead_per_handoff")


def fig5b(rows: list[ResultRow]) -> dict[str, list[tuple[float, Optional[float]]]]:
    """Figure 5(b): handoff delay (ms) vs mean connection period."""
    return _series(rows, "conn_s", "mean_handoff_delay_ms")


def fig6a(rows: list[ResultRow]) -> dict[str, list[tuple[float, Optional[float]]]]:
    """Figure 6(a): msg overhead / handoff vs number of base stations."""
    return _series(rows, "brokers", "overhead_per_handoff")


def fig6b(rows: list[ResultRow]) -> dict[str, list[tuple[float, Optional[float]]]]:
    """Figure 6(b): handoff delay (ms) vs number of base stations."""
    return _series(rows, "brokers", "mean_handoff_delay_ms")
