"""Plain-text rendering of result rows and figure series."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.metrics.summary import ResultRow

__all__ = ["format_table", "format_series"]


def _fmt(v: object) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.1f}"
    return str(v)


def format_table(rows: Sequence[ResultRow], title: str = "") -> str:
    """Render rows as an aligned text table (one line per run)."""
    headers = [
        "protocol", "k", "conn_s", "handoffs",
        "overhead/handoff", "delay_ms", "median_ms",
        "expected", "delivered", "dup", "ooo", "lost", "missing",
    ]
    table: list[list[str]] = [headers]
    for r in rows:
        table.append([
            r.protocol,
            _fmt(r.params.get("k")),
            _fmt(r.params.get("conn_s")),
            _fmt(r.handoffs),
            _fmt(r.overhead_per_handoff),
            _fmt(r.mean_handoff_delay_ms),
            _fmt(r.median_handoff_delay_ms),
            _fmt(r.expected_deliveries),
            _fmt(r.delivered),
            _fmt(r.duplicates),
            _fmt(r.order_violations),
            _fmt(r.lost),
            _fmt(r.missing),
        ])
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    series: dict[str, list[tuple[float, Optional[float]]]],
    x_label: str,
    y_label: str,
    title: str = "",
) -> str:
    """Render a figure's per-protocol series as aligned columns."""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    protocols = sorted(series)
    lines = []
    if title:
        lines.append(title)
    header = [x_label.rjust(12)] + [p.rjust(14) for p in protocols]
    lines.append("".join(header) + f"    ({y_label})")
    lookup = {
        p: {x: y for x, y in pts} for p, pts in series.items()
    }
    for x in xs:
        cells = [f"{x:g}".rjust(12)]
        for p in protocols:
            y = lookup[p].get(x)
            cells.append(("-" if y is None else f"{y:.1f}").rjust(14))
        lines.append("".join(cells))
    return "\n".join(lines)
