"""Length-prefixed CRC-framed stream framing.

Frame layout (mirrors the WAL record convention in ``pubsub/wal.py``)::

    <u32 payload-length, little-endian> <u32 crc32(payload)> <payload>

The decoder is incremental: feed it arbitrary byte chunks (a torn TCP read
is fine) and pull complete payloads out as they materialise. Corruption is
unrecoverable by design — a stream with a bad CRC or an absurd length
prefix has lost sync, so the decoder latches into a dead state and the
owner must drop the connection. No exception other than :class:`FrameError`
subclasses ever leaves this module, and every rejection increments a typed
counter so transports can account the failure.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional

__all__ = [
    "HEADER_SIZE",
    "MAX_FRAME_SIZE",
    "FrameError",
    "FrameCorruptionError",
    "FrameTooLargeError",
    "FrameDecoder",
    "encode_frame",
]

_HDR = struct.Struct("<II")
HEADER_SIZE = _HDR.size

#: Hard ceiling on a single frame's payload. Generous for the wire
#: protocol's biggest frames (a migration batch of events is a few KiB) but
#: small enough that a corrupt length prefix cannot make a peer buffer GiBs.
MAX_FRAME_SIZE = 4 * 1024 * 1024


class FrameError(Exception):
    """Base class for framing failures. The stream is dead once raised."""


class FrameCorruptionError(FrameError):
    """CRC mismatch: the payload bytes do not match their checksum."""


class FrameTooLargeError(FrameError):
    """Length prefix exceeds the frame ceiling (corrupt or hostile peer)."""


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a ``<len><crc32>`` header."""
    if len(payload) > MAX_FRAME_SIZE:
        raise FrameTooLargeError(
            f"refusing to encode {len(payload)} byte frame "
            f"(ceiling {MAX_FRAME_SIZE})"
        )
    return _HDR.pack(len(payload), zlib.crc32(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder for one stream.

    ``feed(chunk)`` returns the list of payloads completed by that chunk.
    Partial frames stay buffered across calls. After the first
    :class:`FrameError` the decoder is *dead*: further feeds raise the same
    error class immediately — the caller must close the connection rather
    than attempt resync.

    Counters (``frames``, ``bytes_in``, ``corrupt``, ``oversize``) let the
    owning transport account rejections in its shed/fault ledgers.
    """

    __slots__ = ("_buf", "_dead", "max_frame", "frames", "bytes_in",
                 "corrupt", "oversize")

    def __init__(self, max_frame: int = MAX_FRAME_SIZE) -> None:
        self._buf = bytearray()
        self._dead: Optional[FrameError] = None
        self.max_frame = max_frame
        self.frames = 0
        self.bytes_in = 0
        self.corrupt = 0
        self.oversize = 0

    @property
    def dead(self) -> bool:
        return self._dead is not None

    @property
    def buffered(self) -> int:
        """Bytes held for a not-yet-complete frame (torn-read detector)."""
        return len(self._buf)

    def feed(self, chunk: bytes) -> List[bytes]:
        if self._dead is not None:
            raise type(self._dead)(str(self._dead))
        self.bytes_in += len(chunk)
        self._buf += chunk
        out: List[bytes] = []
        while True:
            payload = self._next()
            if payload is None:
                return out
            out.append(payload)

    def _next(self) -> Optional[bytes]:
        buf = self._buf
        if len(buf) < HEADER_SIZE:
            return None
        length, crc = _HDR.unpack_from(buf)
        if length > self.max_frame:
            self.oversize += 1
            self._die(FrameTooLargeError(
                f"frame length {length} exceeds ceiling {self.max_frame}"
            ))
        end = HEADER_SIZE + length
        if len(buf) < end:
            return None
        payload = bytes(buf[HEADER_SIZE:end])
        if zlib.crc32(payload) != crc:
            self.corrupt += 1
            self._die(FrameCorruptionError(
                f"crc mismatch on {length} byte frame"
            ))
        del buf[:end]
        self.frames += 1
        return payload

    def _die(self, err: FrameError) -> None:
        self._dead = err
        self._buf.clear()
        raise err


def iter_frames(data: bytes, max_frame: int = MAX_FRAME_SIZE) -> Iterator[bytes]:
    """Decode a complete byte string of concatenated frames (tests, tools)."""
    dec = FrameDecoder(max_frame=max_frame)
    for payload in dec.feed(data):
        yield payload
    if dec.buffered:
        raise FrameCorruptionError(f"{dec.buffered} trailing bytes after last frame")
