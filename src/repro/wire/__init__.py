"""Wire protocol: binary codec, stream framing, and multi-process transport.

The sans-IO kernel (``pubsub/``) exchanges Python message objects through
the :class:`~repro.drivers.base.Transport` facade. This package gives those
objects a real byte representation and a real network:

- :mod:`repro.wire.codec` — versioned compact binary codec with a per-type
  registry covering every class in :mod:`repro.pubsub.messages`;
- :mod:`repro.wire.framing` — length-prefixed CRC-framed streams (the WAL's
  ``<len><crc32>`` convention) with an incremental decoder;
- :mod:`repro.wire.node` — a broker node process (asyncio TCP server) that
  executes kernel dispatches and streams resulting effects back;
- :mod:`repro.wire.harness` — the coordinator that runs a full scenario
  with brokers spread across OS processes, in lockstep with the
  deterministic :class:`~repro.drivers.live.VirtualClock`.
"""
