"""Multi-process scenario harness: broker nodes as real OS processes.

:func:`run_socket_scenario` is the socket twin of
:func:`repro.drivers.live.run_virtual_scenario`: it takes the same
:class:`~repro.experiments.config.ExperimentConfig`, spawns ``processes``
broker node servers (``python -m repro.wire.node serve``), splits the
broker grid round-robin across them, and drives the identical workload
from a coordinator holding the virtual clock, the link layer and every
client. The returned system carries the same
:class:`~repro.metrics.delivery.DeliveryChecker` state the sim and live
drivers produce — the driver-parity tests diff them field for field.

Determinism: the coordinator owns every random stream that matters
(workload, fault draws, event ids). Node replicas consume only the
population-construction draws, which are identical by seed, and queue-id
serials, which are broker-local. The dispatch/effect stream is lockstep —
one dispatch in flight globally — so the interleaving is exactly the
virtual clock's, and outcomes are byte-identical to the in-process run.
"""

from __future__ import annotations

import os
import subprocess
import sys
import uuid
from pathlib import Path
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.drivers.base import Driver, Transport
from repro.drivers.live import VirtualClock
from repro.drivers.socket import BrokerPeer, PeerError, SocketTransport
from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import ExperimentConfig
    from repro.pubsub.system import PubSubSystem

__all__ = ["SocketDriver", "run_socket_scenario", "spawn_nodes", "NodeProc"]

_SRC_DIR = str(Path(__file__).resolve().parents[2])
_LISTEN_PREFIX = "WIRE_NODE_LISTENING"


class SocketDriver(Driver):
    """Driver whose transport proxies some brokers to node processes."""

    name = "socket"
    sim = None

    def __init__(self, clock: VirtualClock, peers: List[BrokerPeer],
                 owner: Dict[int, int]) -> None:
        self.clock = clock
        self.peers = peers
        self.owner = owner
        self.transport: Optional[SocketTransport] = None

    def build_transport(self, topo, paths, **kwargs) -> Transport:
        self.transport = SocketTransport(
            self.clock, topo, paths,
            peers=self.peers, owner=self.owner, **kwargs,
        )
        return self.transport


class _ProtocolProxy:
    """Routes client-entry protocol calls for remote brokers to their node.

    The coordinator's own protocol instance stays pristine (its brokers
    never execute a handler), so ``quiescent`` is the AND of the local
    check — trivially true — and every node's.
    """

    def __init__(self, inner, transport: SocketTransport) -> None:
        self._inner = inner
        self._transport = transport

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def on_disconnect(self, broker, client: int) -> None:
        if broker.id in self._transport.owner:
            self._transport.remote_on_disconnect(broker.id, client)
        else:
            self._inner.on_disconnect(broker, client)

    def on_proclaimed_disconnect(self, broker, client: int, dest: int) -> None:
        if broker.id in self._transport.owner:
            self._transport.remote_on_proclaimed_disconnect(
                broker.id, client, dest
            )
        else:
            self._inner.on_proclaimed_disconnect(broker, client, dest)

    def quiescent(self) -> bool:
        return self._inner.quiescent() and self._transport.remote_quiescent()


class NodeProc:
    """One spawned ``repro.wire.node serve`` process."""

    def __init__(self, proc: subprocess.Popen, host: str, port: int) -> None:
        self.proc = proc
        self.host = host
        self.port = port

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck node
                self.proc.kill()
                self.proc.wait(timeout=10)
        if self.proc.stdout is not None:
            self.proc.stdout.close()


def spawn_nodes(count: int, keepalive_s: float = 2.0) -> List[NodeProc]:
    """Start ``count`` node servers on free loopback ports."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    nodes: List[NodeProc] = []
    try:
        for _ in range(count):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.wire.node", "serve",
                 "--port", "0", "--keepalive", str(keepalive_s)],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            nodes.append(_await_listening(proc))
    except BaseException:
        for node in nodes:
            node.terminate()
        raise
    return nodes


def _await_listening(proc: subprocess.Popen) -> NodeProc:
    assert proc.stdout is not None
    for _ in range(100):  # tolerate interpreter warnings before the banner
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith(_LISTEN_PREFIX):
            _, host, port = line.split()
            return NodeProc(proc, host, int(port))
    rest = proc.stdout.read() if proc.poll() is not None else ""
    proc.kill()
    raise PeerError(f"node process never announced a port: {rest!r}")


def _config_blob(cfg: "ExperimentConfig") -> str:
    """The replica construction recipe, as a literal-eval-safe blob.

    ``repr``/``ast.literal_eval`` rather than JSON because mobility traces
    key dicts by int client id, which JSON would silently stringify.
    """
    from dataclasses import asdict

    workload = asdict(cfg.workload)
    workload["mobility_params"] = dict(workload["mobility_params"])
    return repr({
        "grid_k": cfg.grid_k,
        "protocol": cfg.protocol,
        "seed": cfg.seed,
        "covering_enabled": cfg.covering_enabled,
        "migration_batch_size": cfg.migration_batch_size,
        "matching_engine": cfg.matching_engine,
        "covering_index": cfg.covering_index,
        "workload": workload,
    })


def run_socket_scenario(
    cfg: "ExperimentConfig",
    processes: int = 2,
    keepalive_s: float = 2.0,
    tweak: Optional[Callable[[SocketTransport], None]] = None,
    endpoints: Optional[List] = None,
) -> "PubSubSystem":
    """Run one experiment config with brokers split across OS processes.

    Mirrors :func:`repro.drivers.live.run_virtual_scenario` phase for
    phase. ``tweak`` runs after the transport is wired and before the
    workload starts — the parity tests use it to arm mid-stream
    connection kills (``peer.kill_after_frames``).

    By default the harness spawns ``processes`` node servers and tears
    them down afterwards. Pass ``endpoints`` (``[(host, port), ...]`` of
    already-running ``repro.wire.node serve`` processes, e.g. started
    from the CLI) to use those instead — they are left running for the
    next run.
    """
    if not isinstance(cfg.protocol, str):
        raise ConfigurationError("socket scenarios need a registry protocol name")
    if cfg.reliable or cfg.durable:
        raise ConfigurationError(
            "reliability/durability layers are client- and broker-entangled; "
            "the socket harness does not split them yet"
        )
    if cfg.crashes is not None and getattr(cfg.crashes, "active", False):
        raise ConfigurationError(
            "crash plans drive broker state coordinator-side; "
            "the socket harness does not support them"
        )
    if endpoints is None and processes < 1:
        raise ConfigurationError(f"processes must be >= 1, got {processes}")
    if endpoints is not None and not endpoints:
        raise ConfigurationError("endpoints must name at least one node")

    from repro.pubsub.system import PubSubSystem
    from repro.workload.mobility_model import Workload

    n_brokers = cfg.grid_k * cfg.grid_k
    nodes: List[NodeProc] = []
    if endpoints is None:
        nodes = spawn_nodes(min(processes, n_brokers), keepalive_s=keepalive_s)
        endpoints = [(node.host, node.port) for node in nodes]
    owner = {bid: bid % len(endpoints) for bid in range(n_brokers)}
    try:
        run_token = uuid.uuid4().hex
        peers = [
            BrokerPeer(host, port, token=f"{run_token}-{i}")
            for i, (host, port) in enumerate(endpoints)
        ]
        blob = _config_blob(cfg)
        for i, peer in enumerate(peers):
            peer.hello(blob, tuple(b for b in sorted(owner) if owner[b] == i))

        clock = VirtualClock()
        system = PubSubSystem(
            grid_k=cfg.grid_k,
            protocol=cfg.protocol,
            seed=cfg.seed,
            covering_enabled=cfg.covering_enabled,
            migration_batch_size=cfg.migration_batch_size,
            matching_engine=cfg.matching_engine,
            covering_index=cfg.covering_index,
            faults=cfg.faults,
            driver=SocketDriver(clock, peers, owner),
        )
        transport = system.net
        assert isinstance(transport, SocketTransport)
        transport.bind_system(system)
        system.protocol = _ProtocolProxy(system.protocol, transport)
        system.metrics.delivery.record_log = True
        if tweak is not None:
            tweak(transport)

        workload = Workload(system, cfg.workload)
        clock.run(until=cfg.workload.duration_ms)
        workload.stop()
        workload.reconnect_all()
        clock.run()
        if not system.protocol.quiescent():
            raise SimulationError(
                "drain deadlock: socket clock idle but protocol not quiescent"
            )
        system.metrics.delivery.finalize_crash_accounting()

        # fold the nodes' keepalive shedding into the coordinator ledger
        # (cause-tagged like every other shed; client -1 = not client data)
        for idx in range(len(peers)):
            stats = transport._dispatch_to_node(idx, "stats", ())
            for _ in range(int(stats.get("shed_pings", 0))):
                system.metrics.traffic.account_shed("wire_keepalive", -1)

        if nodes:
            # harness-spawned servers die with the run; externally managed
            # ones stay up for the caller's next scenario
            transport.shutdown_peers()
        else:
            for peer in peers:
                peer.close()
        return system
    finally:
        for node in nodes:
            node.terminate()
