"""Broker node process: an asyncio TCP server running kernel replicas.

One node owns a subset of the brokers. It builds an SPMD replica of the
:class:`~repro.pubsub.system.PubSubSystem` from the coordinator's config
blob (same seed, same named random streams, same id allocators — so queue
ids and populations match the coordinator bit for bit), then executes the
dispatches the coordinator streams at it:

``recv``        a message arriving at an owned broker
``fire``        a timer the broker requested earlier
``disconnect``  / ``proclaimed``  client-side protocol entry points
``quiescent``   drain check (owned brokers only; the coordinator ANDs)

Handlers run on the *real* kernel code — broker, protocol, filter tables —
against a :class:`NodeClock` and :class:`NodeTransport` that turn every
side effect (send, timer, loss accounting) into a frame streamed back to
the coordinator, which applies it through its unmodified link layer.
Queries (``reclaim_downlink``/``downlink_backlog``) block the kernel
thread on a future until the coordinator answers, because their results
feed the very next statement of a handler.

The server is asyncio end to end: per-connection bounded send queues with
genuine backpressure (the kernel thread waits for its frame to be
queued), a keepalive ping that is *shed* — never queued — when the peer
stops draining, and a reader that keeps accepting resumed connections
while a dispatch is executing. Kernel execution itself lives in a
single-thread executor so blocking queries cannot stall the loop.
"""

from __future__ import annotations

import argparse
import ast
import asyncio
import concurrent.futures
import sys
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.drivers.base import CancelHandle, Driver, Transport
from repro.errors import ConfigurationError, SchedulingError
from repro.metrics.hub import MetricsHub
from repro.wire.codec import decode_control, encode_control
from repro.wire.framing import FrameDecoder, FrameError, encode_frame

__all__ = ["NodeServer", "main"]

SEND_QUEUE_CAP = 256
SEND_TIMEOUT_S = 30.0
KEEPALIVE_S = 2.0


# ---------------------------------------------------------------------------
# recording clock / transport / metrics: kernel side effects become frames
# ---------------------------------------------------------------------------
class _NodeHandle(CancelHandle):
    __slots__ = ("_clock", "_token")

    def __init__(self, clock: "NodeClock", token: int) -> None:
        self._clock = clock
        self._token = token

    def cancel(self) -> None:
        self._clock._cancel(self._token)


class NodeClock:
    """Clock facade whose timers are scheduled by the coordinator.

    ``now`` is set from each dispatch frame (the coordinator's virtual
    time); ``call_later`` hands out a token, remembers the callback, and
    emits a ``timer`` effect — the coordinator schedules the real timer
    and dispatches ``fire`` with the token when it goes off.
    """

    def __init__(self, session: "Session") -> None:
        self._session = session
        self.now = 0.0
        self._next_token = 1
        self._timers: Dict[int, Tuple[Any, tuple]] = {}

    def _register(self, delay: float, cb: Any, args: tuple, fifo: bool) -> int:
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        token = self._next_token
        self._next_token += 1
        self._timers[token] = (cb, args)
        self._session.emit_effect(("timer", token, float(delay), fifo))
        return token

    def call_later(self, delay: float, cb: Any, *args: Any) -> CancelHandle:
        return _NodeHandle(self, self._register(delay, cb, args, False))

    def call_later_fifo(self, delay: float, cb: Any, *args: Any) -> None:
        self._register(delay, cb, args, True)

    def _cancel(self, token: int) -> None:
        if self._timers.pop(token, None) is not None:
            self._session.emit_effect(("cancel", token))

    def fire(self, token: int) -> None:
        entry = self._timers.pop(token, None)
        if entry is None:
            raise ConfigurationError(f"fire for unknown timer token {token}")
        cb, args = entry
        cb(*args)


class NodeTransport(Transport):
    """Transport facade that streams sends back as effects.

    Uplink sends never happen here (clients live with the coordinator);
    reclaim/backlog are synchronous queries against the coordinator's
    channels, blocking the kernel thread until answered.
    """

    def __init__(self, session: "Session") -> None:
        self._session = session
        self._broker_rx: Dict[int, Any] = {}
        self.wired_latency = 0.0
        self.wireless_latency = 0.0

    def register_broker(self, broker_id: int, rx: Any) -> None:
        self._broker_rx[broker_id] = rx

    def register_client(self, client_id: int, rx: Any) -> None:
        pass  # clients live coordinator-side; replica objects are state only

    def send_broker(self, frm: int, to: int, msg: Any) -> None:
        self._session.emit_effect(("send_broker", frm, to, msg))

    def unicast(self, frm: int, to: int, msg: Any) -> None:
        self._session.emit_effect(("unicast", frm, to, msg))

    def send_client(self, client_id: int, msg: Any) -> None:
        self._session.emit_effect(("send_client", client_id, msg))

    def send_uplink(self, client_id: int, broker_id: int, msg: Any) -> None:
        raise ConfigurationError("broker replica attempted a client uplink")

    def reclaim_downlink(self, client_id: int) -> List[Any]:
        return list(self._session.query(("reclaim", client_id)))

    def downlink_backlog(self, client_id: int) -> int:
        return int(self._session.query(("backlog", client_id)))


class NodeMetrics(MetricsHub):
    """Replica metrics: explicit losses are effects, the rest is local."""

    def __init__(self, session: "Session") -> None:
        super().__init__()
        self._session = session

    def on_loss(self, client: int, event: Any) -> None:
        self._session.emit_effect(("loss", client, event))


class NodeDriver(Driver):
    name = "wire-node"
    sim = None

    def __init__(self, clock: NodeClock, transport: NodeTransport) -> None:
        self.clock = clock
        self.transport = transport

    def build_transport(self, topo: Any, paths: Any, *, wired_latency: float,
                        wireless_latency: float, **_ignored: Any) -> Transport:
        self.transport.wired_latency = wired_latency
        self.transport.wireless_latency = wireless_latency
        return self.transport

    def build_log_store(self, wal_dir: Optional[str] = None) -> Any:
        raise ConfigurationError("durable state is not supported over wire nodes")


# ---------------------------------------------------------------------------
# session: one coordinator's replica + resumable frame stream
# ---------------------------------------------------------------------------
class Session:
    """Replica state plus the exactly-once outbox for one coordinator."""

    def __init__(self, server: "NodeServer", token: str, config: dict,
                 brokers: Tuple[int, ...]) -> None:
        self.server = server
        self.token = token
        self.brokers = tuple(brokers)
        self.loop = asyncio.get_running_loop()
        self.conn: Optional["Connection"] = None
        self.executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"kernel-{token[:8]}"
        )
        self.last_seq = 0
        self.outbox: List[bytes] = []
        self.out_count = 0
        self._pending: Optional[Tuple[int, concurrent.futures.Future]] = None
        self._epoch_sent: Dict[int, int] = {}
        self._epoch_updates: List[Tuple[int, int]] = []
        self._building = True
        self.clock = NodeClock(self)
        self.transport = NodeTransport(self)
        self.system = self._build_replica(config)
        self._building = False

    def _build_replica(self, config: dict) -> Any:
        from repro.pubsub.system import PubSubSystem
        from repro.workload.generator import build_population
        from repro.workload.spec import WorkloadSpec

        driver = NodeDriver(self.clock, self.transport)
        system = PubSubSystem(
            grid_k=config["grid_k"],
            protocol=config["protocol"],
            seed=config["seed"],
            covering_enabled=config["covering_enabled"],
            migration_batch_size=config["migration_batch_size"],
            matching_engine=config["matching_engine"],
            covering_index=config["covering_index"],
            driver=driver,
        )
        system.metrics = NodeMetrics(self)
        build_population(system, WorkloadSpec(**config["workload"]))
        return system

    # ------------------------------------------------------------------
    # frames out (called from the kernel thread)
    # ------------------------------------------------------------------
    def _send(self, value: tuple) -> None:
        frame = encode_frame(encode_control(value))
        self.outbox.append(frame)
        self._push(frame)

    def _push(self, frame: bytes) -> None:
        """Queue one frame on the live connection, with backpressure.

        The kernel thread waits until the frame is accepted by the
        connection's bounded send queue; a dead or absent connection just
        leaves the frame in the outbox for the next session resume.
        """
        conn = self.conn
        if conn is None:
            return
        fut = asyncio.run_coroutine_threadsafe(conn.send(frame), self.loop)
        try:
            fut.result(timeout=SEND_TIMEOUT_S)
        except Exception:
            pass  # outbox keeps the frame; resume will replay it

    def emit_effect(self, eff: tuple) -> None:
        if self._building:
            raise ConfigurationError(
                f"kernel side effect during replica construction: {eff[0]!r}"
            )
        self.out_count += 1
        self._send(("effect", self.out_count, eff))

    def query(self, q: tuple) -> Any:
        self.out_count += 1
        fut: concurrent.futures.Future = concurrent.futures.Future()
        self._pending = (self.out_count, fut)
        self._send(("query", self.out_count, q))
        value = fut.result()
        self._pending = None
        return value

    # ------------------------------------------------------------------
    # frames in (called from the event loop)
    # ------------------------------------------------------------------
    def attach(self, conn: "Connection") -> None:
        self.conn = conn

    def pending_query_index(self) -> Optional[int]:
        pending = self._pending
        return pending[0] if pending is not None else None

    def resolve_answer(self, value: Any) -> None:
        pending = self._pending
        if pending is not None and not pending[1].done():
            pending[1].set_result(value)

    def start_dispatch(self, seq: int, now: float, deltas: tuple,
                       kind: str, args: tuple) -> None:
        if seq <= self.last_seq:
            return  # duplicate of a dispatch we already own (resume race)
        self.last_seq = seq
        self.outbox = []
        self.out_count = 0
        self.loop.run_in_executor(
            self.executor, self._execute, seq, now, deltas, kind, args
        )

    # ------------------------------------------------------------------
    # kernel execution (kernel thread)
    # ------------------------------------------------------------------
    def _execute(self, seq: int, now: float, deltas: tuple,
                 kind: str, args: tuple) -> None:
        try:
            result = self._run_kernel(now, deltas, kind, args)
            epochs = tuple(self._epoch_updates)
            self._epoch_updates = []
            self._send(("done", seq, result, epochs))
        except BaseException as exc:
            traceback.print_exc()
            self._send(("error", f"{type(exc).__name__}: {exc}"))

    def _run_kernel(self, now: float, deltas: tuple,
                    kind: str, args: tuple) -> Any:
        self.clock.now = float(now)
        self._apply_deltas(deltas)
        system = self.system
        if kind == "recv":
            bid, msg, frm = args
            system.brokers[int(bid)].receive(msg, int(frm))
        elif kind == "fire":
            self.clock.fire(int(args[0]))
        elif kind == "disconnect":
            bid, client = args
            system.protocol.on_disconnect(system.brokers[int(bid)], int(client))
        elif kind == "proclaimed":
            bid, client, dest = args
            system.protocol.on_proclaimed_disconnect(
                system.brokers[int(bid)], int(client), int(dest)
            )
        elif kind == "quiescent":
            return bool(system.protocol.quiescent())
        elif kind == "stats":
            return {"shed_pings": self.server.shed_pings}
        else:
            raise ConfigurationError(f"unknown dispatch kind {kind!r}")
        self._collect_epochs()
        return None

    def _apply_deltas(self, deltas: tuple) -> None:
        client_deltas, epoch_deltas = deltas
        clients = self.system.clients
        for cid, connected, current, last, epoch in client_deltas:
            c = clients[int(cid)]
            c.connected = bool(connected)
            c.current_broker = current
            c.last_broker = last
            c.connect_epoch = int(epoch)
        if epoch_deltas:
            epochs = getattr(self.system.protocol, "_epochs", None)
            for cid, value in epoch_deltas:
                self._epoch_sent[int(cid)] = int(value)
                if epochs is not None:
                    epochs[int(cid)] = int(value)

    def _collect_epochs(self) -> None:
        """Diff the protocol's shared per-client counters for the done frame.

        The sub-unsub baseline allocates a global per-client epoch at
        whichever broker handles a connect; with brokers split across
        processes that counter must travel, or two nodes would hand out
        the same epoch. (In a real deployment this would be client-carried
        state; here the coordinator is its bus.)
        """
        epochs = getattr(self.system.protocol, "_epochs", None)
        if epochs is None:
            return
        for cid, value in epochs.items():
            if self._epoch_sent.get(cid) != value:
                self._epoch_sent[cid] = value
                self._epoch_updates.append((cid, value))

    # ------------------------------------------------------------------
    def resume(self, seq: int, consumed: int) -> List[bytes]:
        """Frames to replay after a reconnect (the coordinator consumed
        ``consumed`` frames of dispatch ``seq``)."""
        if seq != self.last_seq:
            return []  # the dispatch itself never arrived; it will be re-sent
        return self.outbox[consumed:]

    def shutdown(self) -> None:
        self.executor.shutdown(wait=False)


# ---------------------------------------------------------------------------
# connections + server
# ---------------------------------------------------------------------------
class Connection:
    """One coordinator connection: framed reader, bounded writer, keepalive."""

    def __init__(self, server: "NodeServer", reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=SEND_QUEUE_CAP)
        self.session: Optional[Session] = None
        self._tasks: List[asyncio.Task] = []

    async def send(self, frame: bytes) -> None:
        await self.queue.put(frame)

    async def run(self) -> None:
        self._tasks = [
            asyncio.ensure_future(self._writer_loop()),
            asyncio.ensure_future(self._keepalive_loop()),
        ]
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await self.reader.read(65536)
                if not chunk:
                    break
                for payload in decoder.feed(chunk):
                    await self._handle(decode_control(payload))
        except (FrameError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._detach()

    def _detach(self) -> None:
        for task in self._tasks:
            task.cancel()
        if self.session is not None and self.session.conn is self:
            self.session.conn = None
        try:
            self.writer.close()
        except Exception:
            pass

    async def _writer_loop(self) -> None:
        while True:
            frame = await self.queue.get()
            self.writer.write(frame)
            await self.writer.drain()

    async def _keepalive_loop(self) -> None:
        ping = encode_frame(encode_control(("ping",)))
        while True:
            await asyncio.sleep(self.server.keepalive_s)
            try:
                self.queue.put_nowait(ping)
            except asyncio.QueueFull:
                # shed, never queue: a peer that stopped draining gets no
                # keepalive backlog on top of its data backlog
                self.server.shed_pings += 1

    # ------------------------------------------------------------------
    async def _handle(self, value: tuple) -> None:
        tag = value[0]
        if tag == "hello":
            _, token, blob, brokers = value
            try:
                config = ast.literal_eval(blob)
                session = Session(self.server, token, config, tuple(brokers))
            except Exception as exc:
                traceback.print_exc()
                await self.send(encode_frame(encode_control(
                    ("error", f"replica build failed: {exc}")
                )))
                return
            self.server.sessions[token] = session
            self.session = session
            session.attach(self)
            await self.send(encode_frame(encode_control(("hello-ok",))))
        elif tag == "resume":
            _, token, seq, consumed = value
            session = self.server.sessions.get(token)
            if session is None:
                await self.send(encode_frame(encode_control(
                    ("error", f"unknown session {token!r}")
                )))
                return
            self.session = session
            session.attach(self)
            await self.send(encode_frame(encode_control(
                ("resume-ok", session.last_seq, session.pending_query_index())
            )))
            for frame in session.resume(int(seq), int(consumed)):
                await self.send(frame)
        elif tag == "dispatch":
            _, seq, now, deltas, kind, args = value
            self.session.start_dispatch(
                int(seq), float(now), deltas, kind, tuple(args)
            )
        elif tag == "answer":
            self.session.resolve_answer(value[1])
        elif tag == "shutdown":
            self.server.request_stop()
        else:
            raise FrameError(f"unknown frame tag {tag!r}")


class NodeServer:
    """The broker node process: serve until told to shut down."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 keepalive_s: float = KEEPALIVE_S) -> None:
        self.host = host
        self.port = port
        self.keepalive_s = keepalive_s
        self.sessions: Dict[str, Session] = {}
        self.shed_pings = 0
        self._stop: Optional[asyncio.Event] = None

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    async def run(self) -> None:
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._on_conn, self.host, self.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"WIRE_NODE_LISTENING {host} {port}", flush=True)
        async with server:
            await self._stop.wait()
        for session in self.sessions.values():
            session.shutdown()

    async def _on_conn(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        await Connection(self, reader, writer).run()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.wire.node", description="run one broker node process"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    serve = sub.add_parser("serve", help="listen for a coordinator")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks a free port (printed on stdout)")
    serve.add_argument("--keepalive", type=float, default=KEEPALIVE_S,
                       help="keepalive ping interval in seconds")
    args = parser.parse_args(argv)
    if args.command == "serve":
        asyncio.run(
            NodeServer(args.host, args.port, keepalive_s=args.keepalive).run()
        )
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
