"""Versioned compact binary codec for :mod:`repro.pubsub.messages`.

Layout of an encoded message::

    <u8 version> <varint type-id> <fields per the type's schema>

Every message class has an explicit entry in :data:`MESSAGE_SCHEMAS` — a
stable type id plus a ``(field-name, kind)`` tuple per slot. An
exhaustiveness test pins the registry against the module's class list, so
adding a message without a schema (or a slot without a field) fails CI.

Primitives:

- unsigned ints are LEB128 varints; signed ints are zigzag varints
  (arbitrary precision — Python ints never truncate);
- floats are little-endian IEEE-754 doubles (bit-exact round-trip);
- strings are interned per encode: the first occurrence ships UTF-8 bytes
  and enters the table, repeats ship a 1-2 byte table index — topic/attr
  names and traffic categories repeat heavily inside batched frames;
- heterogeneous fields (subscription keys, control-frame bodies) use a
  tagged value encoding that covers None/bool/int/float/str/bytes,
  tuples/lists/frozensets/dicts, and the domain types
  (:class:`Notification`, :class:`Filter`, :class:`QueueRef`, nested
  messages).

Compatibility rule: the version byte names the schema generation. A
decoder refuses versions it does not know (:class:`CodecError`) — peers
must speak the same generation, there is no in-band negotiation beyond the
``hello`` exchange checking it up front.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Tuple, Type

from repro.pubsub import messages as m
from repro.pubsub.events import Notification
from repro.pubsub.filters import (
    AttributeConstraint,
    ConjunctionFilter,
    Filter,
    Op,
    RangeFilter,
)
from repro.util.ids import QueueRef

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "MESSAGE_SCHEMAS",
    "encode_message",
    "decode_message",
    "encode_control",
    "decode_control",
]

CODEC_VERSION = 1

_F64 = struct.Struct("<d")


class CodecError(Exception):
    """Malformed payload, unknown type id, or unsupported field value."""


# ---------------------------------------------------------------------------
# primitive writers / readers
# ---------------------------------------------------------------------------
class _Writer:
    __slots__ = ("out", "strings")

    def __init__(self) -> None:
        self.out = bytearray()
        self.strings: Dict[str, int] = {}

    def uint(self, value: int) -> None:
        if value < 0:
            raise CodecError(f"negative value {value} for unsigned field")
        out = self.out
        while value > 0x7F:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)

    def f64(self, value: float) -> None:
        self.out += _F64.pack(value)

    def string(self, value: str) -> None:
        idx = self.strings.get(value)
        if idx is not None:
            self.uint(idx + 1)
            return
        raw = value.encode("utf-8")
        self.uint(0)
        self.uint(len(raw))
        self.out += raw
        self.strings[value] = len(self.strings)


class _Reader:
    __slots__ = ("data", "pos", "strings")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos
        self.strings: List[str] = []

    def uint(self) -> int:
        data, pos = self.data, self.pos
        result = shift = 0
        try:
            while True:
                byte = data[pos]
                pos += 1
                result |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
        except IndexError:
            raise CodecError("truncated varint") from None
        self.pos = pos
        return result

    def f64(self) -> float:
        end = self.pos + 8
        if end > len(self.data):
            raise CodecError("truncated float")
        value = _F64.unpack_from(self.data, self.pos)[0]
        self.pos = end
        return value

    def string(self) -> str:
        idx = self.uint()
        if idx:
            try:
                return self.strings[idx - 1]
            except IndexError:
                raise CodecError(f"string table index {idx} out of range") from None
        length = self.uint()
        end = self.pos + length
        if end > len(self.data):
            raise CodecError("truncated string")
        try:
            value = self.data[self.pos:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string: {exc}") from None
        self.pos = end
        self.strings.append(value)
        return value

    def done(self) -> bool:
        return self.pos >= len(self.data)


# ---------------------------------------------------------------------------
# zigzag for signed ints (two's-complement-free, any magnitude)
# ---------------------------------------------------------------------------
def _write_sint(w: _Writer, value: int) -> None:
    w.uint(value << 1 if value >= 0 else ((-value) << 1) - 1)


def _read_sint(r: _Reader) -> int:
    raw = r.uint()
    return raw >> 1 if not raw & 1 else -((raw + 1) >> 1)


# ---------------------------------------------------------------------------
# domain payloads
# ---------------------------------------------------------------------------
def _write_event(w: _Writer, ev: Notification) -> None:
    w.uint(ev.event_id)
    w.uint(ev.publisher)
    w.uint(ev.seq)
    w.f64(ev.publish_time)
    w.f64(ev.topic)
    items = ev.attrs_items()
    w.uint(len(items))
    for key, val in items:
        w.string(key)
        _write_value(w, val)


def _read_event(r: _Reader) -> Notification:
    event_id = r.uint()
    publisher = r.uint()
    seq = r.uint()
    publish_time = r.f64()
    topic = r.f64()
    count = r.uint()
    attrs = {r.string(): _read_value(r) for _ in range(count)} if count else None
    return Notification(event_id, publisher, seq, publish_time, topic, attrs)


_OPS: Tuple[Op, ...] = (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE,
                        Op.RANGE, Op.EXISTS, Op.PREFIX)
_OP_INDEX = {op: i for i, op in enumerate(_OPS)}

_FILTER_RANGE = 1
_FILTER_CONJ = 2


def _write_filter(w: _Writer, f: Filter) -> None:
    if isinstance(f, RangeFilter):
        w.uint(_FILTER_RANGE)
        w.string(f.attr)
        w.f64(f.lo)
        w.f64(f.hi)
    elif isinstance(f, ConjunctionFilter):
        w.uint(_FILTER_CONJ)
        w.uint(len(f.constraints))
        for c in f.constraints:
            w.string(c.attr)
            w.uint(_OP_INDEX[c.op])
            _write_value(w, c.value)
    else:
        raise CodecError(f"unregistered filter type {type(f).__name__}")


def _read_filter(r: _Reader) -> Filter:
    kind = r.uint()
    if kind == _FILTER_RANGE:
        attr = r.string()
        lo = r.f64()
        return RangeFilter(lo, r.f64(), attr=attr)
    if kind == _FILTER_CONJ:
        count = r.uint()
        constraints = []
        for _ in range(count):
            attr = r.string()
            op_idx = r.uint()
            if op_idx >= len(_OPS):
                raise CodecError(f"unknown filter op index {op_idx}")
            constraints.append(
                AttributeConstraint(attr, _OPS[op_idx], _read_value(r))
            )
        return ConjunctionFilter(tuple(constraints))
    raise CodecError(f"unknown filter kind {kind}")


def _write_qref(w: _Writer, ref: QueueRef) -> None:
    w.uint(ref.broker)
    w.uint(ref.qid)


def _read_qref(r: _Reader) -> QueueRef:
    broker = r.uint()
    return QueueRef(broker, r.uint())


# ---------------------------------------------------------------------------
# tagged values (subscription keys, control frames, generic attrs)
# ---------------------------------------------------------------------------
_V_NONE = 0
_V_FALSE = 1
_V_TRUE = 2
_V_INT = 3
_V_F64 = 4
_V_STR = 5
_V_TUPLE = 6
_V_LIST = 7
_V_FROZENSET = 8
_V_DICT = 9
_V_QREF = 10
_V_EVENT = 11
_V_FILTER = 12
_V_MESSAGE = 13
_V_BYTES = 14


def _write_value(w: _Writer, value: Any) -> None:
    if value is None:
        w.uint(_V_NONE)
    elif value is False:
        w.uint(_V_FALSE)
    elif value is True:
        w.uint(_V_TRUE)
    elif isinstance(value, int):
        w.uint(_V_INT)
        _write_sint(w, value)
    elif isinstance(value, float):
        w.uint(_V_F64)
        w.f64(value)
    elif isinstance(value, str):
        w.uint(_V_STR)
        w.string(value)
    elif isinstance(value, tuple):
        w.uint(_V_TUPLE)
        w.uint(len(value))
        for item in value:
            _write_value(w, item)
    elif isinstance(value, list):
        w.uint(_V_LIST)
        w.uint(len(value))
        for item in value:
            _write_value(w, item)
    elif isinstance(value, frozenset):
        w.uint(_V_FROZENSET)
        w.uint(len(value))
        # canonical item order, so the same set always produces the same
        # bytes regardless of hash-table iteration order
        for item in sorted(value, key=_sort_key):
            _write_value(w, item)
    elif isinstance(value, dict):
        w.uint(_V_DICT)
        w.uint(len(value))
        for key, val in value.items():
            _write_value(w, key)
            _write_value(w, val)
    elif isinstance(value, QueueRef):
        w.uint(_V_QREF)
        _write_qref(w, value)
    elif isinstance(value, Notification):
        w.uint(_V_EVENT)
        _write_event(w, value)
    elif isinstance(value, Filter):
        w.uint(_V_FILTER)
        _write_filter(w, value)
    elif isinstance(value, m.Message):
        w.uint(_V_MESSAGE)
        _write_message_body(w, value)
    elif isinstance(value, (bytes, bytearray)):
        w.uint(_V_BYTES)
        w.uint(len(value))
        w.out += value
    else:
        raise CodecError(f"unencodable value type {type(value).__name__}")


def _sort_key(item: Any):
    return (type(item).__name__, repr(item))


def _read_value(r: _Reader) -> Any:
    tag = r.uint()
    if tag == _V_NONE:
        return None
    if tag == _V_FALSE:
        return False
    if tag == _V_TRUE:
        return True
    if tag == _V_INT:
        return _read_sint(r)
    if tag == _V_F64:
        return r.f64()
    if tag == _V_STR:
        return r.string()
    if tag == _V_TUPLE:
        return tuple(_read_value(r) for _ in range(r.uint()))
    if tag == _V_LIST:
        return [_read_value(r) for _ in range(r.uint())]
    if tag == _V_FROZENSET:
        return frozenset(_read_value(r) for _ in range(r.uint()))
    if tag == _V_DICT:
        count = r.uint()
        out = {}
        for _ in range(count):
            key = _read_value(r)
            out[key] = _read_value(r)
        return out
    if tag == _V_QREF:
        return _read_qref(r)
    if tag == _V_EVENT:
        return _read_event(r)
    if tag == _V_FILTER:
        return _read_filter(r)
    if tag == _V_MESSAGE:
        return _read_message_body(r)
    if tag == _V_BYTES:
        length = r.uint()
        end = r.pos + length
        if end > len(r.data):
            raise CodecError("truncated bytes value")
        raw = r.data[r.pos:end]
        r.pos = end
        return raw
    raise CodecError(f"unknown value tag {tag}")


# ---------------------------------------------------------------------------
# field kinds
# ---------------------------------------------------------------------------
def _opt(writer: Callable, reader: Callable):
    def write(w: _Writer, value: Any) -> None:
        if value is None:
            w.uint(0)
        else:
            w.uint(1)
            writer(w, value)

    def read(r: _Reader) -> Any:
        return reader(r) if r.uint() else None

    return write, read


def _seq(writer: Callable, reader: Callable, factory: Callable):
    def write(w: _Writer, value: Any) -> None:
        w.uint(len(value))
        for item in value:
            writer(w, item)

    def read(r: _Reader) -> Any:
        return factory(reader(r) for _ in range(r.uint()))

    return write, read


def _write_uint(w: _Writer, v: int) -> None:
    w.uint(v)


def _read_uint(r: _Reader) -> int:
    return r.uint()


def _write_str(w: _Writer, v: str) -> None:
    w.string(v)


def _read_str(r: _Reader) -> str:
    return r.string()


def _write_f64(w: _Writer, v: float) -> None:
    w.f64(v)


def _read_f64(r: _Reader) -> float:
    return r.f64()


def _sorted_frozenset(items) -> frozenset:
    return frozenset(items)


#: kind -> (writer(w, value), reader(r) -> value)
FIELD_KINDS: Dict[str, Tuple[Callable, Callable]] = {
    "uint": (_write_uint, _read_uint),
    "int": (_write_sint, _read_sint),
    "f64": (_write_f64, _read_f64),
    "str": (_write_str, _read_str),
    "value": (_write_value, _read_value),
    "event": (_write_event, _read_event),
    "filter": (_write_filter, _read_filter),
    "opt_filter": _opt(_write_filter, _read_filter),
    "opt_uint": _opt(_write_uint, _read_uint),
    "qref": (_write_qref, _read_qref),
    "opt_qref": _opt(_write_qref, _read_qref),
    "uint_tuple": _seq(_write_uint, _read_uint, tuple),
    "qref_tuple": _seq(_write_qref, _read_qref, tuple),
    "event_list": _seq(_write_event, _read_event, list),
    "event_tuple": _seq(_write_event, _read_event, tuple),
    "uint_frozenset": _seq(_write_uint, _read_uint, _sorted_frozenset),
}


# ---------------------------------------------------------------------------
# the registry: every message class, explicit stable ids + field schemas
# ---------------------------------------------------------------------------
#: type -> (type-id, ((slot-name, kind), ...)). Field order is wire order
#: and must list every slot the class (and its bases) defines.
MESSAGE_SCHEMAS: Dict[Type[m.Message], Tuple[int, Tuple[Tuple[str, str], ...]]] = {
    m.EventMessage: (1, (("event", "event"),)),
    m.SubscribeMessage: (2, (("key", "value"), ("filter", "filter"),
                             ("category", "str"))),
    m.UnsubscribeMessage: (3, (("key", "value"), ("category", "str"))),
    m.PublishMessage: (4, (("event", "event"),)),
    m.ConnectMessage: (5, (("client", "uint"), ("filter", "opt_filter"),
                           ("last_broker", "opt_uint"), ("epoch", "uint"))),
    m.DeliverMessage: (6, (("client", "uint"), ("event", "event"))),
    m.ReliableDeliver: (7, (("client", "uint"), ("event", "event"),
                            ("origin", "uint"), ("session", "uint"),
                            ("rel_seq", "uint"))),
    m.AckMessage: (8, (("client", "uint"), ("origin", "uint"),
                       ("session", "uint"), ("cum_ack", "int"),
                       ("nacks", "uint_tuple"))),
    m.HandoffRequest: (9, (("client", "uint"), ("new_broker", "uint"),
                           ("epoch", "uint"))),
    m.SubMigration: (10, (("client", "uint"), ("key", "value"),
                          ("filter", "filter"), ("dest", "uint"),
                          ("pqlist", "qref_tuple"), ("epoch", "uint"))),
    m.SubMigrationAck: (11, (("client", "uint"),)),
    m.DeliverTQ: (12, (("client", "uint"), ("dest", "uint"),
                       ("target", "uint"), ("append_to", "opt_qref"),
                       ("remaining", "qref_tuple"))),
    m.MigrateBatch: (13, (("client", "uint"), ("events", "event_list"),
                          ("append_to", "opt_qref"))),
    m.FetchQueue: (14, (("client", "uint"), ("ref", "qref"),
                        ("dest", "uint"), ("append_to", "opt_qref"))),
    m.QueueStreamed: (15, (("client", "uint"), ("ref", "qref"))),
    m.StreamDone: (16, (("client", "uint"),)),
    m.StopEventMigration: (17, (("client", "uint"),)),
    m.TransferRequest: (18, (("client", "uint"), ("epoch", "uint"),
                             ("new_broker", "uint"))),
    m.TransferBatch: (19, (("client", "uint"), ("epoch", "uint"),
                           ("events", "event_list"))),
    m.TransferDone: (20, (("client", "uint"), ("epoch", "uint"),
                          ("delivered_ids", "uint_frozenset"))),
    m.Register: (21, (("client", "uint"), ("foreign", "uint"),
                      ("epoch", "uint"))),
    m.Deregister: (22, (("client", "uint"), ("epoch", "uint"))),
    m.ForwardedEvent: (23, (("client", "uint"), ("event", "event"))),
    m.ForwardedBatch: (24, (("client", "uint"), ("events", "event_list"))),
    m.SessionTransfer: (25, (("client", "uint"), ("origin", "uint"),
                             ("anchor", "uint"), ("events", "event_tuple"),
                             ("acked", "uint_tuple"))),
}

# protocol-private messages that still cross broker links: the two-phase
# baseline's grant handshake travels via net.unicast, so it needs wire ids
from repro.mobility.two_phase import (  # noqa: E402  (registry must exist first)
    GrantAck,
    GrantRelease,
    GrantRequest,
)

MESSAGE_SCHEMAS[GrantRequest] = (26, (("client", "uint"),
                                      ("coordinator", "uint")))
MESSAGE_SCHEMAS[GrantAck] = (27, (("client", "uint"), ("granter", "uint")))
MESSAGE_SCHEMAS[GrantRelease] = (28, (("client", "uint"),))

_BY_ID: Dict[int, Tuple[Type[m.Message], Tuple[Tuple[str, str], ...]]] = {}
for _cls, (_tid, _fields) in MESSAGE_SCHEMAS.items():
    if _tid in _BY_ID:
        raise RuntimeError(f"duplicate wire type id {_tid}")
    for _name, _kind in _fields:
        if _kind not in FIELD_KINDS:
            raise RuntimeError(f"unknown field kind {_kind!r} in {_cls.__name__}")
    _BY_ID[_tid] = (_cls, _fields)
del _cls, _tid, _fields, _name, _kind


def _write_message_body(w: _Writer, msg: m.Message) -> None:
    try:
        type_id, fields = MESSAGE_SCHEMAS[type(msg)]
    except KeyError:
        raise CodecError(
            f"no wire schema registered for {type(msg).__name__}"
        ) from None
    w.uint(type_id)
    for name, kind in fields:
        FIELD_KINDS[kind][0](w, getattr(msg, name))


def _read_message_body(r: _Reader) -> m.Message:
    type_id = r.uint()
    try:
        cls, fields = _BY_ID[type_id]
    except KeyError:
        raise CodecError(f"unknown wire type id {type_id}") from None
    kwargs = {}
    for name, kind in fields:
        kwargs[name] = FIELD_KINDS[kind][1](r)
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise CodecError(f"cannot rebuild {cls.__name__}: {exc}") from None


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------
def encode_message(msg: m.Message) -> bytes:
    """Encode one message to its versioned wire payload."""
    w = _Writer()
    w.out.append(CODEC_VERSION)
    _write_message_body(w, msg)
    return bytes(w.out)


def decode_message(data: bytes) -> m.Message:
    """Decode one versioned wire payload back into a message object."""
    if not data:
        raise CodecError("empty payload")
    if data[0] != CODEC_VERSION:
        raise CodecError(f"unsupported codec version {data[0]}")
    r = _Reader(data, pos=1)
    msg = _read_message_body(r)
    if not r.done():
        raise CodecError(f"{len(data) - r.pos} trailing bytes after message")
    return msg


def encode_control(value: Any) -> bytes:
    """Encode an arbitrary control value (node-protocol frames)."""
    w = _Writer()
    w.out.append(CODEC_VERSION)
    _write_value(w, value)
    return bytes(w.out)


def decode_control(data: bytes) -> Any:
    """Decode a control value produced by :func:`encode_control`."""
    if not data:
        raise CodecError("empty payload")
    if data[0] != CODEC_VERSION:
        raise CodecError(f"unsupported codec version {data[0]}")
    r = _Reader(data, pos=1)
    value = _read_value(r)
    if not r.done():
        raise CodecError(f"{len(data) - r.pos} trailing bytes after value")
    return value
