"""Exception hierarchy for the MHH reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the package with a single ``except`` clause
while still being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation engine."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled into the past or after shutdown."""


class TopologyError(ReproError):
    """Raised for malformed or disconnected network topologies."""


class RoutingError(ReproError):
    """Raised when a route lookup fails (unknown destination, no next hop)."""


class FilterError(ReproError):
    """Raised for malformed subscription filters or constraints."""


class ProtocolError(ReproError):
    """Raised when a mobility protocol reaches an impossible state.

    These indicate implementation bugs (violated protocol invariants), not
    user errors, and are never expected during a correctly configured run.
    """


class ClientStateError(ReproError):
    """Raised on invalid client life-cycle transitions.

    Example: connecting a client that is already connected, or publishing
    from a disconnected client.
    """


class ConfigurationError(ReproError):
    """Raised for invalid experiment or workload configuration values."""
