"""Staging package for the optional mypyc-compiled hot modules.

``tools/build_compiled.py`` stages byte-identical copies of
``repro/pubsub/matching.py`` (as ``matching``) and ``repro/sim/core.py``
(as ``sim_core``) here, compiles them with mypyc, and removes the staged
sources again — so ``repro._compiled.matching`` / ``repro._compiled
.sim_core`` import *only* when the C extensions were actually built. A
host that never ran the build sees plain ``ImportError``, which
:mod:`repro.accel` turns into a :class:`~repro.errors.ConfigurationError`
naming the build step.

Nothing outside :mod:`repro.accel` may import from this package: the
pure-Python modules are the default and the single source of truth, and
the compiled builds are behaviourally identical opt-ins (held to that by
the conformance fuzzer's cross-engine trace-identity lanes).
"""
