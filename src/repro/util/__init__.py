"""Small shared utilities: typed identifiers, validation, chunking."""

from typing import Iterator, Sequence, TypeVar

from repro.util.ids import (
    BrokerId,
    ClientId,
    EventId,
    QueueId,
    QueueRef,
    IdAllocator,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
)

_T = TypeVar("_T")


def chunked(seq: Sequence[_T], size: int) -> Iterator[list[_T]]:
    """Split ``seq`` into consecutive lists of at most ``size`` elements.

    >>> list(chunked([1, 2, 3, 4, 5], 2))
    [[1, 2], [3, 4], [5]]
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for i in range(0, len(seq), size):
        yield list(seq[i : i + size])


__all__ = [
    "BrokerId",
    "ClientId",
    "EventId",
    "QueueId",
    "QueueRef",
    "IdAllocator",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "chunked",
]
