"""Typed identifiers used across the library.

Brokers and clients are identified by small integers for speed (they index
into dense tables inside the simulator); queues are identified by
``(broker, serial)`` pairs because a queue lives on exactly one broker and
the MHH PQlist needs location-qualified references that can be shipped
inside control messages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

# Brokers and clients are plain ints at runtime. The aliases document intent
# in signatures without imposing wrapper-object overhead on hot paths.
BrokerId = int
ClientId = int
EventId = int
QueueId = int


@dataclass(frozen=True, slots=True)
class QueueRef:
    """Location-qualified reference to a persistent queue.

    ``broker`` is the broker currently hosting the queue and ``qid`` the
    broker-local queue serial. QueueRefs are shipped inside MHH control
    messages to link the distributed PQlist together.
    """

    broker: BrokerId
    qid: QueueId

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"PQ(b{self.broker}#{self.qid})"


class IdAllocator:
    """Monotonic id source with independent named streams.

    A single allocator is owned by the :class:`~repro.pubsub.system.PubSubSystem`
    so that ids are unique per run and deterministic given the construction
    order (no global state, unlike ``itertools.count`` at module scope).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Iterator[int]] = {}

    def next(self, stream: str) -> int:
        """Return the next id in ``stream``, starting from 0."""
        counter = self._counters.get(stream)
        if counter is None:
            counter = itertools.count()
            self._counters[stream] = counter
        return next(counter)

    def peek_streams(self) -> list[str]:
        """Names of streams that have allocated at least one id."""
        return sorted(self._counters)
