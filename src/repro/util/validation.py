"""Argument validation helpers.

These raise :class:`~repro.errors.ConfigurationError` with uniform wording so
configuration mistakes surface early with actionable messages instead of as
deep simulator misbehaviour.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for fluent use."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for fluent use."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for fluent use."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``; return it for fluent use."""
    if not lo <= value <= hi:
        raise ConfigurationError(
            f"{name} must be in [{lo}, {hi}], got {value!r}"
        )
    return value
