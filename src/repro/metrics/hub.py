"""MetricsHub: the single metrics facade wired into the system.

Bundles the traffic meter, delivery checker and handoff log behind the small
callback surface the pub/sub core calls (publish / delivery / connect /
disconnect / loss), so brokers and clients need exactly one reference.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.delivery import DeliveryChecker
from repro.metrics.handoff import HandoffLog
from repro.metrics.traffic import TrafficMeter
from repro.pubsub.events import Notification

__all__ = ["MetricsHub"]


class MetricsHub:
    """Aggregates all run metrics; one instance per system."""

    def __init__(self) -> None:
        self.traffic = TrafficMeter()
        self.delivery = DeliveryChecker()
        self.handoffs = HandoffLog()

    # -- link layer hook -------------------------------------------------
    def account(self, category: str, hops: int, wireless: bool) -> None:
        self.traffic.account(category, hops, wireless)

    # -- client life-cycle hooks ------------------------------------------
    def on_client_connect(
        self,
        client: int,
        time: float,
        last_broker: Optional[int],
        new_broker: int,
    ) -> None:
        self.handoffs.on_connect(client, time, last_broker, new_broker)

    def on_client_disconnect(self, client: int, time: float) -> None:
        self.handoffs.on_disconnect(client, time)

    # -- pub/sub hooks ----------------------------------------------------
    def on_publish(self, event: Notification) -> None:
        self.delivery.on_publish(event)

    def on_delivery(self, client: int, event: Notification, time: float) -> None:
        self.delivery.on_delivery(client, event, time)
        self.handoffs.on_delivery(client, time)

    def on_loss(self, client: int, event: Notification) -> None:
        self.delivery.on_loss(client, event)

    def on_recoverable_drop(self, client: int, event: Notification) -> None:
        self.delivery.on_recoverable_drop(client, event)

    # -- derived metrics ---------------------------------------------------
    def overhead_per_handoff(self) -> Optional[float]:
        n = self.handoffs.handoff_count
        if n == 0:
            return None
        return self.traffic.overhead_hops() / n

    def mean_handoff_delay(self) -> Optional[float]:
        return self.handoffs.mean_delay()
