"""Traffic accounting.

"Network traffic is measured as the total hops that all messages traveled in
the network" (paper §5.1). The meter sums wired hops per message category;
the overhead metric adds up the categories in
:data:`repro.pubsub.messages.OVERHEAD_CATEGORIES` (rationale in DESIGN.md).
Wireless transmissions are tallied separately and excluded from overhead for
all protocols alike (final delivery over the air happens identically in each
protocol).

When wireless fault injection is on (:mod:`repro.network.faults`) the meter
also keeps per-category and per-link fault ledgers: dropped transmissions
(the send was accounted as a wireless message — the frame went out and was
lost) and duplicate copies handed to receivers (which are *not* extra
accounted transmissions — the copy is a link-layer retransmit of an already
counted frame). The conformance fuzzer reconciles these ledgers against the
delivery oracle's loss and duplicate counters.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from repro.pubsub.messages import OVERHEAD_CATEGORIES

__all__ = ["TrafficMeter"]


class TrafficMeter:
    """Sums wired hops per category; plugs into the link layer."""

    def __init__(self) -> None:
        self.wired_hops: defaultdict[str, int] = defaultdict(int)
        self.wireless_msgs: defaultdict[str, int] = defaultdict(int)
        # injected-fault ledgers (all zero unless fault injection is on)
        self.wireless_dropped: defaultdict[str, int] = defaultdict(int)
        self.wireless_duplicated: defaultdict[str, int] = defaultdict(int)
        #: (client, direction) -> counts, per fault kind
        self.faults_by_link: defaultdict[tuple[str, int, str], int] = (
            defaultdict(int)
        )
        # reliability-layer ledgers (all zero unless the layer is on):
        #: client -> retransmitted frames, per cause ("timeout" — RTO
        #: fired; "nack" — gap-triggered fast retransmit; "requeue" —
        #: detach safety-net requeue of an unacked window)
        self.retransmits_by_client: defaultdict[tuple[int, str], int] = (
            defaultdict(int)
        )
        #: client -> deliveries shed, per cause ("queue_cap" — bulkhead
        #: tail-drop; "breaker" — link breaker open; "retry_exhausted")
        self.shed_by_client: defaultdict[tuple[int, str], int] = (
            defaultdict(int)
        )
        #: (broker, client) -> times that link's circuit breaker tripped
        self.breaker_trips: defaultdict[tuple[int, int], int] = (
            defaultdict(int)
        )

    # Signature matches repro.network.links.AccountFn.
    def account(self, category: str, hops: int, wireless: bool) -> None:
        if wireless:
            self.wireless_msgs[category] += hops
        else:
            self.wired_hops[category] += hops

    # Signature matches repro.network.faults.LinkFaultInjector.account_fault.
    def account_fault(
        self, kind: str, category: str, client: int, direction: str
    ) -> None:
        """Record one injected fault (``kind`` is ``"drop"`` or ``"dup"``)."""
        if kind == "drop":
            self.wireless_dropped[category] += 1
        else:
            self.wireless_duplicated[category] += 1
        self.faults_by_link[(kind, client, direction)] += 1

    # Reliability-layer ledgers (repro.pubsub.reliability).
    def account_retransmit(self, client: int, cause: str) -> None:
        self.retransmits_by_client[(client, cause)] += 1

    def account_shed(self, cause: str, client: int) -> None:
        self.shed_by_client[(client, cause)] += 1

    def account_breaker_trip(self, broker: int, client: int) -> None:
        self.breaker_trips[(broker, client)] += 1

    # ------------------------------------------------------------------
    def total_wired(self) -> int:
        return sum(self.wired_hops.values())

    def total_dropped(self) -> int:
        """Total wireless transmissions discarded by fault injection."""
        return sum(self.wireless_dropped.values())

    def total_duplicated(self) -> int:
        """Total duplicate wireless copies injected by fault injection."""
        return sum(self.wireless_duplicated.values())

    def total_retransmits(self) -> int:
        """Total reliability-layer retransmissions (all causes)."""
        return sum(self.retransmits_by_client.values())

    def total_shed(self) -> int:
        """Total deliveries shed by the overload policy (all causes)."""
        return sum(self.shed_by_client.values())

    def total_breaker_trips(self) -> int:
        return sum(self.breaker_trips.values())

    def link_fault_counts(self, kind: str) -> dict[tuple[int, str], int]:
        """Per-(client, direction) counts of one fault kind."""
        return {
            (client, direction): n
            for (k, client, direction), n in self.faults_by_link.items()
            if k == kind
        }

    def overhead_hops(
        self, categories: Iterable[str] = OVERHEAD_CATEGORIES
    ) -> int:
        """Wired hops of mobility-caused traffic."""
        return sum(self.wired_hops.get(c, 0) for c in categories)

    def by_category(self) -> Mapping[str, int]:
        return dict(self.wired_hops)

    def reset(self) -> None:
        self.wired_hops.clear()
        self.wireless_msgs.clear()
        self.wireless_dropped.clear()
        self.wireless_duplicated.clear()
        self.faults_by_link.clear()
        self.retransmits_by_client.clear()
        self.shed_by_client.clear()
        self.breaker_trips.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cats = ", ".join(f"{k}={v}" for k, v in sorted(self.wired_hops.items()))
        return f"<TrafficMeter {cats}>"
