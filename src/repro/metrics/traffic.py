"""Traffic accounting.

"Network traffic is measured as the total hops that all messages traveled in
the network" (paper §5.1). The meter sums wired hops per message category;
the overhead metric adds up the categories in
:data:`repro.pubsub.messages.OVERHEAD_CATEGORIES` (rationale in DESIGN.md).
Wireless transmissions are tallied separately and excluded from overhead for
all protocols alike (final delivery over the air happens identically in each
protocol).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from repro.pubsub.messages import OVERHEAD_CATEGORIES

__all__ = ["TrafficMeter"]


class TrafficMeter:
    """Sums wired hops per category; plugs into the link layer."""

    def __init__(self) -> None:
        self.wired_hops: defaultdict[str, int] = defaultdict(int)
        self.wireless_msgs: defaultdict[str, int] = defaultdict(int)

    # Signature matches repro.network.links.AccountFn.
    def account(self, category: str, hops: int, wireless: bool) -> None:
        if wireless:
            self.wireless_msgs[category] += hops
        else:
            self.wired_hops[category] += hops

    # ------------------------------------------------------------------
    def total_wired(self) -> int:
        return sum(self.wired_hops.values())

    def overhead_hops(
        self, categories: Iterable[str] = OVERHEAD_CATEGORIES
    ) -> int:
        """Wired hops of mobility-caused traffic."""
        return sum(self.wired_hops.get(c, 0) for c in categories)

    def by_category(self) -> Mapping[str, int]:
        return dict(self.wired_hops)

    def reset(self) -> None:
        self.wired_hops.clear()
        self.wireless_msgs.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cats = ", ".join(f"{k}={v}" for k, v in sorted(self.wired_hops.items()))
        return f"<TrafficMeter {cats}>"
