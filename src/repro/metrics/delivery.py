"""Delivery checking: exactly-once, per-publisher order, loss.

Ground truth: at publish time every event is matched against the static set
of client subscriptions (vectorised over numpy arrays), yielding the exact
expected delivery count per client. At the end of a run (after the runner's
drain phase) the checker reconciles:

    expected == delivered_unique + explicitly_lost        (per client)

and reports duplicates (same event delivered twice to one client) and
per-publisher order violations (event with a lower sequence number delivered
after a higher one from the same publisher).

The paper claims MHH and sub-unsub are reliable and ordered while the
home-broker protocol loses in-transit events; the integration tests assert
exactly that against this checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.pubsub.events import Notification

__all__ = ["DeliveryChecker", "DeliveryStats"]


@dataclass
class DeliveryStats:
    """Aggregate reliability counters for one run."""

    published: int = 0
    expected: int = 0
    delivered: int = 0
    duplicates: int = 0
    order_violations: int = 0
    lost_explicit: int = 0
    #: deliveries lost to broker crashes / overlay partitions, reconciled
    #: from the at-risk pair marking (see ``DeliveryChecker.crash_lost``);
    #: always 0 for crash-free runs
    crash_lost: int = 0
    #: wireless drops the reliability layer retransmitted successfully —
    #: diagnostic only (recovered events also count in ``delivered``);
    #: always 0 without the reliability layer
    recovered: int = 0
    #: deliveries explicitly written off by the overload policy (bounded
    #: queue shed, breaker-open shed, retry-budget exhaustion); always 0
    #: without a queue cap / reliability layer
    shed: int = 0

    @property
    def missing(self) -> int:
        """Expected deliveries neither performed nor explicitly lost."""
        return (
            self.expected
            - (self.delivered - self.duplicates)
            - self.lost_explicit
            - self.crash_lost
            - self.shed
        )

    @property
    def write_offs(self) -> int:
        """Deliveries the system gave up on rather than lost on the wire.

        ``crash_lost`` (volatile state died with a broker) plus ``shed``
        (overload/exhaustion policy). The durable fuzzer lane and soak
        audit pin this at exactly 0: with the WAL and session handover
        active, every crash- or shed-prone delivery must be recovered,
        not reconciled away.
        """
        return self.crash_lost + self.shed


class DeliveryChecker:
    """Streaming reliability auditor.

    Register every subscription before the run starts (subscriptions are
    static in the paper's workload); feed it publishes and deliveries as
    they happen.
    """

    def __init__(self) -> None:
        self._sub_clients: list[int] = []
        self._sub_lo: list[float] = []
        self._sub_hi: list[float] = []
        self._arrays: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self.expected_per_client: dict[int, int] = {}
        self.delivered_per_client: dict[int, int] = {}
        # (client, publisher) -> set of delivered seqs (duplicate detection)
        self._seen: dict[tuple[int, int], set[int]] = {}
        # (client, publisher) -> highest seq delivered so far (order check)
        self._max_seq: dict[tuple[int, int], int] = {}
        self.stats = DeliveryStats()
        # optional sink recording (client, event_id, time) tuples
        self.record_log = False
        self.log: list[tuple[int, int, float]] = []
        # crash-loss accounting (inert unless a CrashPlan is active):
        # (client, event_id) -> (publisher, seq) for every delivery put at
        # risk by a crash/partition; reconciled in crash_lost()
        self._track_crash = False
        self._crash_marked: dict[tuple[int, int], tuple[int, int]] = {}
        # (client, event_id) pairs lost through the *fault* path while
        # crash tracking is on, so a marked pair that the wireless fault
        # injector happened to drop is not double-counted
        self._lost_pairs: set[tuple[int, int]] = set()
        # reliability-mode reconciliation (inert unless enable_reliability):
        # the retransmit/shed machinery makes the final fate of a dropped
        # frame unknowable at drop time, so every write-off candidate is
        # *marked* and the books are settled once, at end of run, with
        # precedence delivered > shed > lost > crash_lost
        self._rel_mode = False
        # drops covered by an active retransmit window at drop time
        self._recover_marked: dict[tuple[int, int], tuple[int, int]] = {}
        # explicit overload write-offs (queue shed / breaker / exhaustion)
        self._shed_marked: dict[tuple[int, int], tuple[int, int]] = {}
        # fault drops with no retry cover (counted lost if never delivered)
        self._loss_marked: dict[tuple[int, int], tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # crash-loss accounting (the accounted-loss crash model)
    # ------------------------------------------------------------------
    def enable_crash_tracking(self) -> None:
        self._track_crash = True

    def mark_crash_risk(self, client: int, event: Notification) -> None:
        """Record that ``client``'s delivery of ``event`` is crash-exposed.

        Over-marking is harmless: a marked pair that is delivered anyway
        (or lost through the fault path) reconciles to zero in
        :meth:`crash_lost`. Callers only mark pairs the subscription model
        actually expects, keeping the ledger exact.
        """
        self._crash_marked[(client, event.event_id)] = (
            event.publisher, event.seq
        )

    def delivered_pair(self, client: int, event: Notification) -> bool:
        """Was ``event`` (by publisher/seq identity) delivered to ``client``?"""
        seen = self._seen.get((client, event.publisher))
        return seen is not None and event.seq in seen

    def max_delivered_seq(self, client: int, publisher: int) -> int:
        """Highest seq from ``publisher`` delivered to ``client`` (-1 if none)."""
        return self._max_seq.get((client, publisher), -1)

    def crash_lost(self) -> int:
        """At-risk pairs that were neither delivered nor fault-lost."""
        lost = 0
        for (client, event_id), (publisher, seq) in self._crash_marked.items():
            seen = self._seen.get((client, publisher))
            if seen is not None and seq in seen:
                continue
            if (client, event_id) in self._lost_pairs:
                continue
            if self._rel_mode and (client, event_id) in self._shed_marked:
                continue  # already settled as an overload write-off
            lost += 1
        return lost

    # ------------------------------------------------------------------
    # reliability-mode reconciliation
    # ------------------------------------------------------------------
    def enable_reliability(self) -> None:
        """Switch loss accounting to end-of-run reconciliation (see above)."""
        self._rel_mode = True

    def _delivered_ps(self, client: int, publisher: int, seq: int) -> bool:
        seen = self._seen.get((client, publisher))
        return seen is not None and seq in seen

    def on_recoverable_drop(self, client: int, event: Notification) -> None:
        """A reliable frame was dropped while its retransmit window is
        live: no write-off yet — the retry either delivers it (counted
        ``recovered``) or the window is shed/exhausted (counted there)."""
        self._recover_marked[(client, event.event_id)] = (
            event.publisher, event.seq
        )

    def mark_shed(self, client: int, event: Notification) -> None:
        """The overload policy wrote this delivery off explicitly.

        Over-marking is harmless — a marked pair that is delivered anyway
        (e.g. a copy already on the air when the window was exhausted)
        reconciles to zero at finalize.
        """
        self._shed_marked[(client, event.event_id)] = (
            event.publisher, event.seq
        )

    def finalize_crash_accounting(self) -> None:
        """Settle all reconciled ledgers into :attr:`stats` (end of run).

        Idempotent: every reconciled counter is recomputed from the marked
        pairs, so the runner may call this at each quiescence point. The
        name predates the reliability layer; ``finalize_accounting`` is
        the alias new call sites use.
        """
        if self._rel_mode:
            recovered = 0
            lost = 0
            shed = 0
            for (client, eid), (pub, seq) in self._shed_marked.items():
                if not self._delivered_ps(client, pub, seq):
                    shed += 1
            for (client, eid), (pub, seq) in self._loss_marked.items():
                if self._delivered_ps(client, pub, seq):
                    continue  # a later retransmit of a retired window won
                if (client, eid) in self._shed_marked:
                    continue  # written off as shed, count once
                if (client, eid) in self._crash_marked:
                    continue  # settled by the crash ledger (crash > lost)
                lost += 1
            for (client, eid), (pub, seq) in self._recover_marked.items():
                if self._delivered_ps(client, pub, seq):
                    recovered += 1
                    continue
                if (client, eid) in self._shed_marked or (
                    (client, eid) in self._loss_marked
                ):
                    continue
                if (client, eid) in self._crash_marked:
                    continue  # settled by the crash ledger below
                # a drop the layer claimed retry cover for but never
                # redelivered nor wrote off: surface it as a loss so the
                # reliability invariant lane fails loudly instead of
                # hiding the hole in `missing`
                lost += 1
            self.stats.recovered = recovered
            self.stats.lost_explicit = lost
            self.stats.shed = shed
        if self._track_crash:
            self.stats.crash_lost = self.crash_lost()

    #: preferred name since the ledger grew beyond crash accounting
    finalize_accounting = finalize_crash_accounting

    # ------------------------------------------------------------------
    def register_subscription(self, client: int, lo: float, hi: float) -> None:
        """Declare that ``client`` subscribes to topics in [lo, hi]."""
        self._sub_clients.append(client)
        self._sub_lo.append(lo)
        self._sub_hi.append(hi)
        self._arrays = None
        self.expected_per_client.setdefault(client, 0)
        self.delivered_per_client.setdefault(client, 0)

    def _ensure_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._arrays is None:
            self._arrays = (
                np.asarray(self._sub_clients, dtype=np.int64),
                np.asarray(self._sub_lo, dtype=np.float64),
                np.asarray(self._sub_hi, dtype=np.float64),
            )
        return self._arrays

    def matching_clients(self, topic: float) -> np.ndarray:
        clients, lo, hi = self._ensure_arrays()
        mask = (lo <= topic) & (topic <= hi)
        return clients[mask]

    # ------------------------------------------------------------------
    def on_publish(self, event: Notification) -> None:
        self.stats.published += 1
        matched = self.matching_clients(event.topic)
        self.stats.expected += int(matched.size)
        for cid in matched:
            self.expected_per_client[int(cid)] += 1

    def on_delivery(self, client: int, event: Notification, time: float) -> None:
        self.stats.delivered += 1
        self.delivered_per_client[client] = (
            self.delivered_per_client.get(client, 0) + 1
        )
        pair = (client, event.publisher)
        seen = self._seen.get(pair)
        if seen is None:
            seen = set()
            self._seen[pair] = seen
        if event.seq in seen:
            self.stats.duplicates += 1
        else:
            seen.add(event.seq)
            prev = self._max_seq.get(pair, -1)
            if event.seq < prev:
                self.stats.order_violations += 1
            else:
                self._max_seq[pair] = event.seq
        if self.record_log:
            self.log.append((client, event.event_id, time))

    def on_loss(self, client: int, event: Notification) -> None:
        """An event for ``client`` was irrecoverably dropped (home-broker)."""
        if self._rel_mode:
            # under reliability "irrecoverable" is provisional: a straggler
            # copy of the same event may still deliver (retired-window
            # retransmit, reclaim redelivery) — mark and settle at finalize
            # (crash-marked pairs settle in the crash ledger instead, so
            # _lost_pairs stays untouched here)
            self._loss_marked[(client, event.event_id)] = (
                event.publisher, event.seq
            )
            return
        self.stats.lost_explicit += 1
        if self._track_crash:
            self._lost_pairs.add((client, event.event_id))

    # ------------------------------------------------------------------
    def per_client_missing(self) -> dict[int, int]:
        """Clients with expected deliveries unaccounted for (diagnostics)."""
        out = {}
        for cid, exp in self.expected_per_client.items():
            got = self.delivered_per_client.get(cid, 0)
            if exp != got:
                out[cid] = exp - got
        return out
