"""Delivery checking: exactly-once, per-publisher order, loss.

Ground truth: at publish time every event is matched against the static set
of client subscriptions (vectorised over numpy arrays), yielding the exact
expected delivery count per client. At the end of a run (after the runner's
drain phase) the checker reconciles:

    expected == delivered_unique + explicitly_lost        (per client)

and reports duplicates (same event delivered twice to one client) and
per-publisher order violations (event with a lower sequence number delivered
after a higher one from the same publisher).

The paper claims MHH and sub-unsub are reliable and ordered while the
home-broker protocol loses in-transit events; the integration tests assert
exactly that against this checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.pubsub.events import Notification

__all__ = ["DeliveryChecker", "DeliveryStats"]


@dataclass
class DeliveryStats:
    """Aggregate reliability counters for one run."""

    published: int = 0
    expected: int = 0
    delivered: int = 0
    duplicates: int = 0
    order_violations: int = 0
    lost_explicit: int = 0
    #: deliveries lost to broker crashes / overlay partitions, reconciled
    #: from the at-risk pair marking (see ``DeliveryChecker.crash_lost``);
    #: always 0 for crash-free runs
    crash_lost: int = 0

    @property
    def missing(self) -> int:
        """Expected deliveries neither performed nor explicitly lost."""
        return (
            self.expected
            - (self.delivered - self.duplicates)
            - self.lost_explicit
            - self.crash_lost
        )


class DeliveryChecker:
    """Streaming reliability auditor.

    Register every subscription before the run starts (subscriptions are
    static in the paper's workload); feed it publishes and deliveries as
    they happen.
    """

    def __init__(self) -> None:
        self._sub_clients: list[int] = []
        self._sub_lo: list[float] = []
        self._sub_hi: list[float] = []
        self._arrays: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self.expected_per_client: dict[int, int] = {}
        self.delivered_per_client: dict[int, int] = {}
        # (client, publisher) -> set of delivered seqs (duplicate detection)
        self._seen: dict[tuple[int, int], set[int]] = {}
        # (client, publisher) -> highest seq delivered so far (order check)
        self._max_seq: dict[tuple[int, int], int] = {}
        self.stats = DeliveryStats()
        # optional sink recording (client, event_id, time) tuples
        self.record_log = False
        self.log: list[tuple[int, int, float]] = []
        # crash-loss accounting (inert unless a CrashPlan is active):
        # (client, event_id) -> (publisher, seq) for every delivery put at
        # risk by a crash/partition; reconciled in crash_lost()
        self._track_crash = False
        self._crash_marked: dict[tuple[int, int], tuple[int, int]] = {}
        # (client, event_id) pairs lost through the *fault* path while
        # crash tracking is on, so a marked pair that the wireless fault
        # injector happened to drop is not double-counted
        self._lost_pairs: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # crash-loss accounting (the accounted-loss crash model)
    # ------------------------------------------------------------------
    def enable_crash_tracking(self) -> None:
        self._track_crash = True

    def mark_crash_risk(self, client: int, event: Notification) -> None:
        """Record that ``client``'s delivery of ``event`` is crash-exposed.

        Over-marking is harmless: a marked pair that is delivered anyway
        (or lost through the fault path) reconciles to zero in
        :meth:`crash_lost`. Callers only mark pairs the subscription model
        actually expects, keeping the ledger exact.
        """
        self._crash_marked[(client, event.event_id)] = (
            event.publisher, event.seq
        )

    def delivered_pair(self, client: int, event: Notification) -> bool:
        """Was ``event`` (by publisher/seq identity) delivered to ``client``?"""
        seen = self._seen.get((client, event.publisher))
        return seen is not None and event.seq in seen

    def max_delivered_seq(self, client: int, publisher: int) -> int:
        """Highest seq from ``publisher`` delivered to ``client`` (-1 if none)."""
        return self._max_seq.get((client, publisher), -1)

    def crash_lost(self) -> int:
        """At-risk pairs that were neither delivered nor fault-lost."""
        lost = 0
        for (client, event_id), (publisher, seq) in self._crash_marked.items():
            seen = self._seen.get((client, publisher))
            if seen is not None and seq in seen:
                continue
            if (client, event_id) in self._lost_pairs:
                continue
            lost += 1
        return lost

    def finalize_crash_accounting(self) -> None:
        """Fold the reconciled crash losses into :attr:`stats` (end of run)."""
        if self._track_crash:
            self.stats.crash_lost = self.crash_lost()

    # ------------------------------------------------------------------
    def register_subscription(self, client: int, lo: float, hi: float) -> None:
        """Declare that ``client`` subscribes to topics in [lo, hi]."""
        self._sub_clients.append(client)
        self._sub_lo.append(lo)
        self._sub_hi.append(hi)
        self._arrays = None
        self.expected_per_client.setdefault(client, 0)
        self.delivered_per_client.setdefault(client, 0)

    def _ensure_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._arrays is None:
            self._arrays = (
                np.asarray(self._sub_clients, dtype=np.int64),
                np.asarray(self._sub_lo, dtype=np.float64),
                np.asarray(self._sub_hi, dtype=np.float64),
            )
        return self._arrays

    def matching_clients(self, topic: float) -> np.ndarray:
        clients, lo, hi = self._ensure_arrays()
        mask = (lo <= topic) & (topic <= hi)
        return clients[mask]

    # ------------------------------------------------------------------
    def on_publish(self, event: Notification) -> None:
        self.stats.published += 1
        matched = self.matching_clients(event.topic)
        self.stats.expected += int(matched.size)
        for cid in matched:
            self.expected_per_client[int(cid)] += 1

    def on_delivery(self, client: int, event: Notification, time: float) -> None:
        self.stats.delivered += 1
        self.delivered_per_client[client] = (
            self.delivered_per_client.get(client, 0) + 1
        )
        pair = (client, event.publisher)
        seen = self._seen.get(pair)
        if seen is None:
            seen = set()
            self._seen[pair] = seen
        if event.seq in seen:
            self.stats.duplicates += 1
        else:
            seen.add(event.seq)
            prev = self._max_seq.get(pair, -1)
            if event.seq < prev:
                self.stats.order_violations += 1
            else:
                self._max_seq[pair] = event.seq
        if self.record_log:
            self.log.append((client, event.event_id, time))

    def on_loss(self, client: int, event: Notification) -> None:
        """An event for ``client`` was irrecoverably dropped (home-broker)."""
        self.stats.lost_explicit += 1
        if self._track_crash:
            self._lost_pairs.add((client, event.event_id))

    # ------------------------------------------------------------------
    def per_client_missing(self) -> dict[int, int]:
        """Clients with expected deliveries unaccounted for (diagnostics)."""
        out = {}
        for cid, exp in self.expected_per_client.items():
            got = self.delivered_per_client.get(cid, 0)
            if exp != got:
                out[cid] = exp - got
        return out
