"""Delivery checking: exactly-once, per-publisher order, loss.

Ground truth: at publish time every event is matched against the static set
of client subscriptions (vectorised over numpy arrays), yielding the exact
expected delivery count per client. At the end of a run (after the runner's
drain phase) the checker reconciles:

    expected == delivered_unique + explicitly_lost        (per client)

and reports duplicates (same event delivered twice to one client) and
per-publisher order violations (event with a lower sequence number delivered
after a higher one from the same publisher).

The paper claims MHH and sub-unsub are reliable and ordered while the
home-broker protocol loses in-transit events; the integration tests assert
exactly that against this checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.pubsub.events import Notification

__all__ = ["DeliveryChecker", "DeliveryStats"]


@dataclass
class DeliveryStats:
    """Aggregate reliability counters for one run."""

    published: int = 0
    expected: int = 0
    delivered: int = 0
    duplicates: int = 0
    order_violations: int = 0
    lost_explicit: int = 0

    @property
    def missing(self) -> int:
        """Expected deliveries neither performed nor explicitly lost."""
        return self.expected - (self.delivered - self.duplicates) - self.lost_explicit


class DeliveryChecker:
    """Streaming reliability auditor.

    Register every subscription before the run starts (subscriptions are
    static in the paper's workload); feed it publishes and deliveries as
    they happen.
    """

    def __init__(self) -> None:
        self._sub_clients: list[int] = []
        self._sub_lo: list[float] = []
        self._sub_hi: list[float] = []
        self._arrays: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self.expected_per_client: dict[int, int] = {}
        self.delivered_per_client: dict[int, int] = {}
        # (client, publisher) -> set of delivered seqs (duplicate detection)
        self._seen: dict[tuple[int, int], set[int]] = {}
        # (client, publisher) -> highest seq delivered so far (order check)
        self._max_seq: dict[tuple[int, int], int] = {}
        self.stats = DeliveryStats()
        # optional sink recording (client, event_id, time) tuples
        self.record_log = False
        self.log: list[tuple[int, int, float]] = []

    # ------------------------------------------------------------------
    def register_subscription(self, client: int, lo: float, hi: float) -> None:
        """Declare that ``client`` subscribes to topics in [lo, hi]."""
        self._sub_clients.append(client)
        self._sub_lo.append(lo)
        self._sub_hi.append(hi)
        self._arrays = None
        self.expected_per_client.setdefault(client, 0)
        self.delivered_per_client.setdefault(client, 0)

    def _ensure_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._arrays is None:
            self._arrays = (
                np.asarray(self._sub_clients, dtype=np.int64),
                np.asarray(self._sub_lo, dtype=np.float64),
                np.asarray(self._sub_hi, dtype=np.float64),
            )
        return self._arrays

    def matching_clients(self, topic: float) -> np.ndarray:
        clients, lo, hi = self._ensure_arrays()
        mask = (lo <= topic) & (topic <= hi)
        return clients[mask]

    # ------------------------------------------------------------------
    def on_publish(self, event: Notification) -> None:
        self.stats.published += 1
        matched = self.matching_clients(event.topic)
        self.stats.expected += int(matched.size)
        for cid in matched:
            self.expected_per_client[int(cid)] += 1

    def on_delivery(self, client: int, event: Notification, time: float) -> None:
        self.stats.delivered += 1
        self.delivered_per_client[client] = (
            self.delivered_per_client.get(client, 0) + 1
        )
        pair = (client, event.publisher)
        seen = self._seen.get(pair)
        if seen is None:
            seen = set()
            self._seen[pair] = seen
        if event.seq in seen:
            self.stats.duplicates += 1
        else:
            seen.add(event.seq)
            prev = self._max_seq.get(pair, -1)
            if event.seq < prev:
                self.stats.order_violations += 1
            else:
                self._max_seq[pair] = event.seq
        if self.record_log:
            self.log.append((client, event.event_id, time))

    def on_loss(self, client: int, event: Notification) -> None:
        """An event for ``client`` was irrecoverably dropped (home-broker)."""
        self.stats.lost_explicit += 1

    # ------------------------------------------------------------------
    def per_client_missing(self) -> dict[int, int]:
        """Clients with expected deliveries unaccounted for (diagnostics)."""
        out = {}
        for cid, exp in self.expected_per_client.items():
            got = self.delivered_per_client.get(cid, 0)
            if exp != got:
                out[cid] = exp - got
        return out
