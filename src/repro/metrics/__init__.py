"""Metrics: traffic accounting, delivery checking, handoff bookkeeping.

The two paper metrics (Section 5.1):

* **message overhead per handoff** — wired hops of mobility-caused traffic
  divided by the number of handoffs (:mod:`repro.metrics.traffic` +
  :mod:`repro.metrics.handoff`);
* **average handoff delay** — reconnection to first delivered event
  (:mod:`repro.metrics.handoff`).

Additionally the delivery checker (:mod:`repro.metrics.delivery`) audits the
paper's reliability claims: exactly-once and per-publisher-ordered delivery
for MHH and sub-unsub, quantified loss for home-broker.
"""

from repro.metrics.traffic import TrafficMeter
from repro.metrics.delivery import DeliveryChecker, DeliveryStats
from repro.metrics.handoff import HandoffLog, HandoffRecord
from repro.metrics.hub import MetricsHub
from repro.metrics.summary import ResultRow, summarize

__all__ = [
    "TrafficMeter",
    "DeliveryChecker",
    "DeliveryStats",
    "HandoffLog",
    "HandoffRecord",
    "MetricsHub",
    "ResultRow",
    "summarize",
]
