"""Result rows: the per-run summary used by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.hub import MetricsHub

__all__ = ["ResultRow", "summarize"]


@dataclass
class ResultRow:
    """One (protocol, parameter point) result — one point of a paper figure."""

    protocol: str
    params: dict[str, Any] = field(default_factory=dict)
    handoffs: int = 0
    overhead_per_handoff: Optional[float] = None
    mean_handoff_delay_ms: Optional[float] = None
    median_handoff_delay_ms: Optional[float] = None
    published: int = 0
    expected_deliveries: int = 0
    delivered: int = 0
    duplicates: int = 0
    order_violations: int = 0
    lost: int = 0
    missing: int = 0
    overhead_by_category: dict[str, int] = field(default_factory=dict)
    sim_events: int = 0
    wall_seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            **self.params,
            "handoffs": self.handoffs,
            "overhead_per_handoff": self.overhead_per_handoff,
            "mean_handoff_delay_ms": self.mean_handoff_delay_ms,
            "median_handoff_delay_ms": self.median_handoff_delay_ms,
            "published": self.published,
            "expected": self.expected_deliveries,
            "delivered": self.delivered,
            "duplicates": self.duplicates,
            "order_violations": self.order_violations,
            "lost": self.lost,
            "missing": self.missing,
        }


def summarize(
    protocol: str,
    metrics: "MetricsHub",
    params: Mapping[str, Any],
    sim_events: int = 0,
    wall_seconds: float = 0.0,
) -> ResultRow:
    """Condense a run's MetricsHub into a ResultRow."""
    stats = metrics.delivery.stats
    return ResultRow(
        protocol=protocol,
        params=dict(params),
        handoffs=metrics.handoffs.handoff_count,
        overhead_per_handoff=metrics.overhead_per_handoff(),
        mean_handoff_delay_ms=metrics.mean_handoff_delay(),
        median_handoff_delay_ms=metrics.handoffs.median_delay(),
        published=stats.published,
        expected_deliveries=stats.expected,
        delivered=stats.delivered,
        duplicates=stats.duplicates,
        order_violations=stats.order_violations,
        lost=stats.lost_explicit,
        missing=stats.missing,
        overhead_by_category=dict(metrics.traffic.by_category()),
        sim_events=sim_events,
        wall_seconds=wall_seconds,
    )
