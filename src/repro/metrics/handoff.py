"""Handoff bookkeeping: counts and delays.

"We call the period from a client's reconnection time to the time it
receives the first event as the handoff delay" (paper §5.1). A *handoff* is
a reconnection at a broker different from the last-visited one; same-broker
reconnects are not handoffs (no subscription or queue needs to move).

Reconnection time is the instant the client re-attaches (the wireless
uplink latency to inform the broker is part of the measured delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["HandoffRecord", "HandoffLog"]


@dataclass
class HandoffRecord:
    """One handoff process of one client."""

    client: int
    reconnect_time: float
    old_broker: Optional[int]
    new_broker: int
    first_delivery_time: Optional[float] = None

    @property
    def delay(self) -> Optional[float]:
        if self.first_delivery_time is None:
            return None
        return self.first_delivery_time - self.reconnect_time


class HandoffLog:
    """Tracks handoffs and their first-delivery delays."""

    def __init__(self) -> None:
        self.records: list[HandoffRecord] = []
        # client -> open record awaiting its first delivery
        self._open: dict[int, HandoffRecord] = {}
        self.reconnects_same_broker = 0

    # ------------------------------------------------------------------
    def on_connect(
        self,
        client: int,
        time: float,
        last_broker: Optional[int],
        new_broker: int,
    ) -> None:
        if last_broker is None:
            return  # first attach, not a handoff
        if last_broker == new_broker:
            self.reconnects_same_broker += 1
            self._open.pop(client, None)
            return
        rec = HandoffRecord(client, time, last_broker, new_broker)
        self.records.append(rec)
        self._open[client] = rec

    def on_disconnect(self, client: int, time: float) -> None:
        # A handoff whose client leaves before receiving anything never gets
        # a delay sample (there is no "first event" for it).
        self._open.pop(client, None)

    def on_delivery(self, client: int, time: float) -> None:
        rec = self._open.pop(client, None)
        if rec is not None:
            rec.first_delivery_time = time

    def discard_open(self) -> int:
        """Close the measurement window: forget handoffs still awaiting
        their first delivery, so later (e.g. drain-phase) deliveries cannot
        retroactively fill in delay samples. Returns how many were dropped
        (their records stay in :attr:`records` with ``delay is None``).
        """
        n = len(self._open)
        self._open.clear()
        return n

    # ------------------------------------------------------------------
    @property
    def handoff_count(self) -> int:
        return len(self.records)

    def delays(self) -> list[float]:
        return [r.delay for r in self.records if r.delay is not None]

    def mean_delay(self) -> Optional[float]:
        """The paper's metric: average over handoffs with a first delivery.

        At reduced scales the mean carries a heavy tail from handoffs whose
        backlog happened to be empty (the client then waits for the next
        matching publication — a workload property, identical across
        protocols under the shared seeds); :meth:`median_delay` isolates
        the protocol component.
        """
        d = self.delays()
        return sum(d) / len(d) if d else None

    def median_delay(self) -> Optional[float]:
        d = sorted(self.delays())
        if not d:
            return None
        mid = len(d) // 2
        if len(d) % 2:
            return d[mid]
        return (d[mid - 1] + d[mid]) / 2.0
