"""Tests for the two-phase handoff extension (models [12])."""

from repro.mobility.two_phase import TwoPhaseProtocol
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem


def build(k=4, seed=1):
    return PubSubSystem(grid_k=k, protocol="two-phase", seed=seed)


def test_single_handoff_behaves_like_mhh():
    system = build()
    sub = system.add_client(RangeFilter(0.0, 0.5), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=5)
    sub.connect(0)
    pub.connect(5)
    system.run(until=2000.0)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(4):
        pub.publish(0.2)
    system.run(until=6000.0)
    sub.connect(15)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.delivered == 4
    assert stats.duplicates == 0
    assert stats.missing == 0
    assert isinstance(system.protocol, TwoPhaseProtocol)
    assert system.protocol.conflicts == 0


def test_concurrent_handoffs_conflict_but_stay_correct():
    """Crossing migrations must serialize on shared path brokers, yet
    deliver everything exactly once."""
    system = build(k=4)
    a = system.add_client(RangeFilter(0.0, 0.5), broker=0, mobile=True)
    b = system.add_client(RangeFilter(0.0, 0.5), broker=15, mobile=True)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=5)
    for c, where in ((a, 0), (b, 15), (pub, 5)):
        c.connect(where)
    system.run(until=2000.0)
    a.disconnect()
    b.disconnect()
    system.run(until=3000.0)
    for _ in range(6):
        pub.publish(0.2)
    system.run(until=6000.0)
    # swap corners: the migrations cross the same region simultaneously
    a.connect(15)
    b.connect(0)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert system.protocol.quiescent()
    assert stats.delivered == 12
    assert stats.duplicates == 0
    assert stats.missing == 0


def test_conflicts_counted_under_heavy_concurrency():
    system = build(k=4)
    movers = []
    for broker in range(8):
        c = system.add_client(RangeFilter(0.0, 0.5), broker=broker, mobile=True)
        c.connect(broker)
        movers.append(c)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=10)
    pub.connect(10)
    system.run(until=2000.0)
    for c in movers:
        c.disconnect()
    system.run(until=3000.0)
    for _ in range(4):
        pub.publish(0.2)
    system.run(until=5000.0)
    for i, c in enumerate(movers):
        c.connect(15 - i)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.missing == 0
    assert stats.duplicates == 0
    # with 8 simultaneous migrations on a 4x4 grid, some paths must overlap
    assert system.protocol.conflicts > 0
