"""The end-to-end reliability layer: ACK/retransmit, breakers, shedding.

Property tests for the PR's headline guarantees:

* **Backoff determinism** — the retry schedule (every retransmit's firing
  time, link, sequence number, attempt count and trigger) derives solely
  from the seed, so the same config replays an identical
  ``ReliabilityManager.retry_log`` run-over-run *and across drivers*
  (discrete-event simulator vs the live driver's VirtualClock).
* **Loss recovery** — under seeded partial loss every injected drop is
  retransmitted away: ``lost == 0``, ``missing == 0``, the recovered
  ledger reconciles the drops.
* **Circuit breaker** — the closed/open/half-open state machine, probe
  accounting and trip counting, exercised exhaustively at the unit level
  and end-to-end under total loss (retry exhaustion -> shed write-offs).
* **Bounded queues** — a capped downlink sheds data explicitly but the
  retransmit window redelivers it, and control traffic never sheds, so
  the run still reconciles exactly.
* **App-level dedup** — the client hands each (publisher, seq) event to
  the application callback at most once even when the link duplicates or
  the broker retransmits, while the metrics layer keeps counting the raw
  duplicate deliveries.
"""

from __future__ import annotations

import pytest

from repro.drivers.live import run_virtual_scenario
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_system, drain_to_quiescence
from repro.network.faults import FaultProfile
from repro.pubsub.filters import RangeFilter
from repro.pubsub.reliability import CircuitBreaker
from repro.pubsub.system import PubSubSystem
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(
    clients_per_broker=3,
    mobile_fraction=0.5,
    mean_connected_s=10.0,
    mean_disconnected_s=5.0,
    publish_interval_s=15.0,
    duration_s=120.0,
)

LOSSY = FaultProfile(deliver_loss=0.2, deliver_duplicate=0.05)


def _rel_cfg(protocol="mhh", seed=7, **kw):
    return ExperimentConfig(
        protocol=protocol, grid_k=3, seed=seed, workload=SPEC,
        faults=LOSSY, reliable=True, **kw,
    )


def _run_simulated(cfg):
    system, workload = build_system(cfg)
    system.metrics.delivery.record_log = True
    system.run(until=cfg.workload.duration_ms)
    workload.stop()
    drain_to_quiescence(system, workload)
    return system


def _outcome(system):
    st = system.metrics.delivery.stats
    return (
        st.published, st.expected, st.delivered, st.duplicates,
        st.order_violations, st.lost_explicit, st.missing, st.recovered,
        st.shed, tuple(system.metrics.delivery.log),
    )


# ---------------------------------------------------------------------------
# backoff determinism (the retry schedule is a pure function of the seed)
# ---------------------------------------------------------------------------
def test_retry_schedule_replays_identically():
    a = _run_simulated(_rel_cfg())
    b = _run_simulated(_rel_cfg())
    assert a.reliability.retry_log, "lossy run produced no retransmits"
    assert a.reliability.retry_log == b.reliability.retry_log
    assert _outcome(a) == _outcome(b)


@pytest.mark.parametrize("protocol", ["mhh", "sub-unsub", "two-phase"])
def test_retry_schedule_identical_across_drivers(protocol):
    """Same seed => same retransmit schedule (times, links, seqs, attempt
    counts, triggers) under the simulator and the live VirtualClock driver
    — the backoff jitter draws ride a dedicated seeded stream through the
    sans-IO clock facade, so neither driver perturbs the other's order."""
    cfg = _rel_cfg(protocol=protocol)
    sim = _run_simulated(cfg)
    live = run_virtual_scenario(cfg)
    assert sim.reliability.retry_log, "lossy run produced no retransmits"
    assert sim.reliability.retry_log == live.reliability.retry_log
    assert _outcome(sim) == _outcome(live)


def test_retry_schedules_diverge_across_seeds():
    a = _run_simulated(_rel_cfg(seed=7))
    b = _run_simulated(_rel_cfg(seed=8))
    assert a.reliability.retry_log != b.reliability.retry_log


# ---------------------------------------------------------------------------
# loss recovery end-to-end
# ---------------------------------------------------------------------------
def test_partial_loss_fully_recovered():
    system = _run_simulated(_rel_cfg())
    st = system.metrics.delivery.stats
    assert system.fault_injector.drops > 0
    assert st.lost_explicit == 0
    assert st.missing == 0
    assert st.shed == 0
    assert st.recovered > 0
    assert st.recovered <= system.fault_injector.drops
    assert system.metrics.traffic.total_retransmits() > 0


def rel_system(seed=3, retry_budget=8, queue_cap=None, **fault_kw):
    system = PubSubSystem(
        grid_k=2, protocol="mhh", seed=seed,
        faults=FaultProfile(**fault_kw) if fault_kw else None,
        reliable=True, retry_budget=retry_budget, queue_cap=queue_cap,
    )
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=3)
    sub.connect(0)
    pub.connect(3)
    system.run(until=500.0)
    return system, sub, pub


def test_total_loss_exhausts_budget_and_sheds():
    """Under 100% loss no retry can succeed: the budget runs dry, the
    window is written off as shed (never silently missing, never counted
    as a link loss — the ledger knows the layer gave up)."""
    system, sub, pub = rel_system(retry_budget=2, deliver_loss=1.0)
    pub.publish(topic=0.5)
    system.run()
    system.metrics.delivery.finalize_accounting()
    st = system.metrics.delivery.stats
    assert st.expected == 1
    assert st.delivered == 0
    assert st.lost_explicit == 0
    assert st.shed == 1
    assert st.missing == 0
    assert system.metrics.traffic.total_shed() >= 1
    assert system.metrics.traffic.total_retransmits() == 2


def test_breaker_trips_after_consecutive_exhaustions_end_to_end():
    system, sub, pub = rel_system(retry_budget=1, deliver_loss=1.0)
    # each publish round exhausts its one-retry window before the next
    # starts: three consecutive exhaustions on the (0, sub) link
    for _ in range(3):
        pub.publish(topic=0.5)
        system.run()
    breaker = system.reliability.breaker_for(0, sub.id)
    assert breaker.state == "open"
    assert breaker.trips == 1
    assert system.metrics.traffic.total_breaker_trips() == 1
    # while open, new sends shed immediately instead of arming timers
    pub.publish(topic=0.5)
    system.run()
    assert system.metrics.traffic.shed_by_client[(sub.id, "breaker")] >= 1
    system.metrics.delivery.finalize_accounting()
    st = system.metrics.delivery.stats
    assert st.expected == 4
    assert st.shed == 4
    assert st.missing == 0
    assert st.lost_explicit == 0


# ---------------------------------------------------------------------------
# circuit breaker unit state machine
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        br = CircuitBreaker(threshold=3, cooloff_ms=100.0)
        assert not br.on_exhaust(now=0.0)
        assert not br.on_exhaust(now=1.0)
        assert br.state == "closed"
        assert br.allows(now=2.0)
        assert br.trips == 0

    def test_trips_at_threshold_and_blocks_until_cooloff(self):
        br = CircuitBreaker(threshold=2, cooloff_ms=100.0)
        assert not br.on_exhaust(now=0.0)
        assert br.on_exhaust(now=10.0)
        assert br.state == "open"
        assert br.trips == 1
        assert not br.allows(now=50.0)
        assert not br.allows(now=109.9)
        # cooloff elapsed: lazily transitions to half-open, one probe only
        assert br.allows(now=110.0)
        assert br.state == "half_open"
        br.on_probe_sent()
        assert not br.allows(now=111.0)

    def test_progress_resets_failures_and_closes(self):
        br = CircuitBreaker(threshold=2, cooloff_ms=100.0)
        br.on_exhaust(now=0.0)
        br.on_progress()
        assert br.failures == 0
        # the consecutive-failure count restarted: one more exhaust is
        # below threshold again
        assert not br.on_exhaust(now=1.0)
        assert br.state == "closed"

    def test_acked_probe_closes_the_breaker(self):
        br = CircuitBreaker(threshold=1, cooloff_ms=100.0)
        assert br.on_exhaust(now=0.0)
        assert br.allows(now=200.0)
        br.on_probe_sent()
        br.on_progress()
        assert br.state == "closed"
        assert not br.probe_inflight
        assert br.allows(now=201.0)

    def test_exhausted_probe_reopens_immediately(self):
        br = CircuitBreaker(threshold=3, cooloff_ms=100.0)
        for t in (0.0, 1.0, 2.0):
            br.on_exhaust(now=t)
        assert br.state == "open"
        assert br.allows(now=200.0)  # half-open
        br.on_probe_sent()
        # a half-open exhaust reopens regardless of the threshold count
        assert br.on_exhaust(now=201.0)
        assert br.state == "open"
        assert br.open_until == 301.0
        assert br.trips == 2

    def test_link_retirement_unwedges_a_lost_probe(self):
        br = CircuitBreaker(threshold=1, cooloff_ms=100.0)
        br.on_exhaust(now=0.0)
        assert br.allows(now=200.0)
        br.on_probe_sent()
        assert not br.allows(now=201.0)
        # the probe's link was reclaimed (client detached): without this
        # hook no ack can ever arrive and the breaker would wedge
        br.on_link_retired()
        assert br.allows(now=202.0)


# ---------------------------------------------------------------------------
# bounded queues (bulkhead) under reliability
# ---------------------------------------------------------------------------
def test_capped_queue_sheds_but_retransmission_redelivers():
    system, sub, pub = rel_system(queue_cap=1)
    # build a backlog while away: the reconnect flushes it downlink
    # back-to-back, far past the cap within one service window
    sub.disconnect()
    for _ in range(8):
        pub.publish(topic=0.5)
        system.run(until=system.sim.now + 100.0)
    sub.connect(0)
    system.run()
    system.metrics.delivery.finalize_accounting()
    st = system.metrics.delivery.stats
    meter = system.metrics.traffic
    # the bulkhead fired on the burst...
    assert meter.shed_by_client[(sub.id, "queue_cap")] > 0
    # ...but every shed frame was still covered by the retransmit window,
    # so nothing is written off and the run reconciles exactly
    assert st.expected == 8
    assert st.shed == 0
    assert st.lost_explicit == 0
    assert st.missing == 0
    assert meter.total_retransmits() > 0


def test_queue_cap_without_reliability_writes_sheds_off():
    system = PubSubSystem(grid_k=2, protocol="mhh", seed=3, queue_cap=1)
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=3)
    sub.connect(0)
    pub.connect(3)
    system.run(until=500.0)
    sub.disconnect()
    for _ in range(8):
        pub.publish(topic=0.5)
        system.run(until=system.sim.now + 100.0)
    sub.connect(0)  # the reconnect flush overruns the cap
    system.run()
    system.metrics.delivery.finalize_accounting()
    st = system.metrics.delivery.stats
    assert st.expected == 8
    assert st.shed > 0
    assert st.delivered == 8 - st.shed
    assert st.missing == 0
    # control traffic was never shed: the protocol stayed live enough to
    # deliver everything that survived the bulkhead
    assert all(
        cause == "queue_cap"
        for _cid, cause in system.metrics.traffic.shed_by_client
    )


# ---------------------------------------------------------------------------
# client-side app callback dedup
# ---------------------------------------------------------------------------
def _collect(client):
    seen = []
    client.on_event = seen.append
    return seen


@pytest.mark.parametrize("reliable", [False, True])
def test_app_callback_sees_each_event_once_despite_link_duplicates(reliable):
    system = PubSubSystem(
        grid_k=2, protocol="mhh", seed=3,
        faults=FaultProfile(deliver_duplicate=1.0), reliable=reliable,
    )
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=3)
    sub.connect(0)
    pub.connect(3)
    system.run(until=500.0)
    seen = _collect(sub)
    for _ in range(4):
        pub.publish(topic=0.5)
        system.run(until=system.sim.now + 500.0)
    system.run()
    st = system.metrics.delivery.stats
    keys = [(e.publisher, e.seq) for e in seen]
    assert len(keys) == len(set(keys)) == 4
    if not reliable:
        # the metrics layer still audits the raw duplicate deliveries the
        # app never saw (under reliability the rx window may absorb some
        # injected copies before they reach the meter, so no exact count)
        assert st.duplicates == 4


# ---------------------------------------------------------------------------
# default-off construction
# ---------------------------------------------------------------------------
def test_default_system_builds_no_reliability_machinery():
    system = PubSubSystem(grid_k=2, protocol="mhh", seed=1)
    assert system.reliability is None
    assert system.queue_cap is None
    assert system.metrics.traffic.total_retransmits() == 0


def test_config_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=2, protocol="mhh", seed=1, reliable=True,
                     retry_budget=0)
    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=2, protocol="mhh", seed=1, queue_cap=0)
