"""Unit tests for the tracer and the notification model."""

from repro.pubsub.events import Notification
from repro.sim.trace import Tracer, TraceRecord


class TestTracer:
    def test_disabled_by_default(self):
        t = Tracer(lambda: 1.0)
        t.emit("anything", x=1)
        assert t.records == []
        assert not t.wants("anything")

    def test_category_filtering(self):
        t = Tracer(lambda: 2.0, enabled=["a"])
        t.emit("a", v=1)
        t.emit("b", v=2)
        assert len(t.records) == 1
        assert t.wants("a") and not t.wants("b")

    def test_wildcard_records_all(self):
        t = Tracer(lambda: 3.0, enabled="*")
        t.emit("x")
        t.emit("y")
        assert len(t.records) == 2

    def test_record_fields_and_time(self):
        now = [0.0]
        t = Tracer(lambda: now[0], enabled="*")
        now[0] = 42.0
        t.emit("evt", broker=3, client=7)
        rec = t.records[0]
        assert rec.time == 42.0
        assert rec.get("broker") == 3
        assert rec.get("missing", "dflt") == "dflt"
        assert rec.as_dict() == {"broker": 3, "client": 7}

    def test_select_and_format(self):
        t = Tracer(lambda: 1.0, enabled="*")
        t.emit("a", x=1)
        t.emit("b", y=2)
        t.emit("a", x=3)
        assert [r.get("x") for r in t.select("a")] == [1, 3]
        text = t.format()
        assert "a" in text and "y=2" in text
        assert len(t.format(limit=1).splitlines()) == 1

    def test_clear(self):
        t = Tracer(lambda: 1.0, enabled="*")
        t.emit("a")
        t.clear()
        assert t.records == []


class TestNotification:
    def test_get_topic_and_publisher(self):
        e = Notification(1, 7, 3, 100.0, 0.25)
        assert e.get("topic") == 0.25
        assert e.get("publisher") == 7
        assert e.get("other") is None

    def test_get_custom_attrs(self):
        e = Notification(1, 7, 3, 100.0, 0.25, {"kind": "alert"})
        assert e.get("kind") == "alert"
        assert e.get("nope", 0) == 0

    def test_order_key_sorts_by_publish_time(self):
        a = Notification(1, 7, 0, 100.0, 0.1)
        b = Notification(2, 7, 1, 200.0, 0.1)
        c = Notification(3, 8, 0, 150.0, 0.1)
        assert sorted([b, c, a], key=lambda e: e.order_key()) == [a, c, b]

    def test_equality_and_hash_by_event_id(self):
        a = Notification(5, 7, 0, 100.0, 0.1)
        b = Notification(5, 8, 9, 999.0, 0.9)
        assert a == b
        assert len({a, b}) == 1

    def test_attrs_copied(self):
        attrs = {"x": 1}
        e = Notification(1, 7, 0, 0.0, 0.5, attrs)
        attrs["x"] = 2
        assert e.get("x") == 1


class TestTracerEdgeCases:
    def test_wants_is_true_for_everything_under_wildcard(self):
        t = Tracer(lambda: 0.0, enabled="*")
        assert t.wants("anything") and t.wants("")

    def test_empty_enabled_iterable_records_nothing(self):
        t = Tracer(lambda: 0.0, enabled=())
        t.emit("a", x=1)
        assert t.records == []
        assert not t.wants("a")

    def test_select_unknown_category_is_empty(self):
        t = Tracer(lambda: 0.0, enabled="*")
        t.emit("a")
        assert t.select("zzz") == []

    def test_format_limit_zero_and_empty(self):
        t = Tracer(lambda: 0.0, enabled="*")
        assert t.format() == ""
        t.emit("a", x=1)
        t.emit("b", y=2)
        assert t.format(limit=0) == ""
        assert len(t.format(limit=5).splitlines()) == 2

    def test_clear_resets_but_keeps_category_filter(self):
        t = Tracer(lambda: 0.0, enabled=["a"])
        t.emit("a")
        t.clear()
        assert t.records == []
        t.emit("a")
        t.emit("b")
        assert len(t.records) == 1 and t.wants("a") and not t.wants("b")

    def test_records_carry_emission_time_order(self):
        now = [0.0]
        t = Tracer(lambda: now[0], enabled="*")
        for i in range(3):
            now[0] = 10.0 * i
            t.emit("tick", i=i)
        assert [r.time for r in t.records] == [0.0, 10.0, 20.0]

    def test_record_get_returns_first_match(self):
        rec = TraceRecord(1.0, "c", (("k", 1), ("k", 2)))
        assert rec.get("k") == 1
