"""Batched hot path: match_batch parity, lane-drain batching, trace identity.

Three layers of evidence that batching is a pure optimisation:

* **kernel parity** — a hypothesis battery asserts
  :meth:`FilterTable.match_batch` equals a loop of :meth:`FilterTable.match`
  element-for-element (neighbour order, entry order, MHH label handling)
  for every engine x covering_index combination, over adversarial filter
  sets (groups, labels, NaN topics, string/bool attribute values);
* **scheduler batching** — unit tests pin the lane-drain semantics of
  :meth:`Simulator.register_fifo_batch`: same-instant same-callback runs
  coalesce, any interleaved event in global ``(time, seq)`` order is a
  batch boundary, and the heap engine degrades to per-event delivery with
  the same effective sequence;
* **trace identity** — fixed-seed conformance scenarios must produce
  byte-identical outcomes with the batched data plane on vs off
  (``ENGINE_BUNDLES[2]`` vs ``ENGINE_BUNDLES[0]``), and — where the
  optional mypyc build is present — with the compiled engines too.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import compiled_status
from repro.conformance.fuzzer import compare_outcomes, run_scenario
from repro.conformance.scenarios import ENGINE_BUNDLES, Scenario
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_system
from repro.pubsub.events import Notification
from repro.pubsub.filter_table import ClientEntry, FilterTable
from repro.pubsub.filters import (
    AttributeConstraint,
    ConjunctionFilter,
    Op,
    RangeFilter,
)
from repro.sim.core import Simulator
from repro.workload.spec import WorkloadSpec

NEIGHBORS = (1, 2, 3)


# ---------------------------------------------------------------------------
# kernel parity: match_batch == [match(e, f) for ...] on every engine
# ---------------------------------------------------------------------------
_attrs = st.sampled_from(("topic", "x", "kind"))
_bounds = st.tuples(
    st.floats(-1.0, 2.0, allow_nan=False), st.floats(-1.0, 2.0, allow_nan=False)
).map(sorted)


@st.composite
def _constraints(draw):
    attr = draw(_attrs)
    op = draw(st.sampled_from(
        (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE, Op.RANGE, Op.EXISTS,
         Op.PREFIX)
    ))
    if op is Op.RANGE:
        value = tuple(draw(_bounds))
    elif op is Op.PREFIX:
        value = draw(st.sampled_from(("", "a", "ab", "b")))
    elif op in (Op.EQ, Op.NE):
        value = draw(st.one_of(
            st.floats(-1.0, 2.0, allow_nan=False), st.integers(-2, 2),
            st.booleans(), st.sampled_from(("a", "ab", "b")),
        ))
    else:
        value = draw(st.floats(-1.0, 2.0, allow_nan=False))
    return AttributeConstraint(attr, op, value)


@st.composite
def _filters(draw):
    if draw(st.booleans()):
        lo, hi = draw(_bounds)
        return RangeFilter(lo, hi, attr=draw(st.sampled_from(("topic", "x"))))
    return ConjunctionFilter(draw(st.lists(_constraints(), max_size=3)))


_events = st.builds(
    Notification,
    event_id=st.integers(0, 10_000),
    publisher=st.integers(0, 3),
    seq=st.integers(0, 5),
    publish_time=st.just(0.0),
    topic=st.one_of(
        st.floats(-1.0, 2.0, allow_nan=False), st.just(float("nan"))
    ),
    attrs=st.one_of(
        st.none(),
        st.dictionaries(
            st.sampled_from(("x", "kind")),
            st.one_of(
                st.floats(-1.0, 2.0, allow_nan=False), st.just(float("nan")),
                st.integers(-2, 2), st.booleans(),
                st.sampled_from(("a", "ab", "b")), st.none(),
            ),
            max_size=2,
        ),
    ),
)


@settings(max_examples=60, deadline=None)
@given(
    client_filters=st.lists(
        st.tuples(_filters(), st.sampled_from((None, 1, 2, 9))), max_size=10
    ),
    broker_filters=st.lists(
        st.tuples(st.sampled_from(NEIGHBORS), _filters()), max_size=8
    ),
    items=st.lists(
        st.tuples(_events, st.sampled_from((None, 1, 2))), max_size=12
    ),
)
def test_match_batch_equals_match_loop(client_filters, broker_filters, items):
    for engine in ("counting", "scan"):
        for covering_index in (False, True):
            table = FilterTable(
                0, NEIGHBORS, engine=engine, covering_index=covering_index
            )
            for nbr, f in broker_filters:
                table.add_broker_filter(nbr, ("k", nbr, id(f)), f)
            for i, (f, label) in enumerate(client_filters):
                table.set_client_entry(
                    ClientEntry(i, ("c", i), f, label=label)
                )
            expected = [table.match(ev, frm) for ev, frm in items]
            assert table.match_batch(items) == expected


def test_match_batch_after_churn_matches_loop():
    """Discard/re-add churn exercises the engine's sid free-list reuse."""
    table = FilterTable(0, NEIGHBORS, engine="counting")
    for i in range(40):
        lo = (i % 10) / 10.0
        table.set_client_entry(
            ClientEntry(i, ("c", i), RangeFilter(lo, lo + 0.15))
        )
    for nbr in NEIGHBORS:
        table.add_broker_filter(nbr, ("n", nbr), RangeFilter(0.2, 0.4 + nbr / 10))
    events = [
        Notification(i, 0, i, 0.0, (i % 23) / 22.0) for i in range(23)
    ]
    items = [(ev, None if ev.event_id % 3 else 1) for ev in events]
    baseline = [table.match(ev, frm) for ev, frm in items]
    assert table.match_batch(items) == baseline
    for i in range(0, 40, 3):  # churn: discard a third, re-add shifted
        table.remove_entry_by_key(("c", i))
    for i in range(0, 40, 3):
        lo = ((i + 5) % 10) / 10.0
        table.set_client_entry(
            ClientEntry(i, ("c", i), RangeFilter(lo, lo + 0.05))
        )
    table.remove_broker_filter(1, ("n", 1))
    assert table.match_batch(items) == [table.match(ev, frm) for ev, frm in items]


# ---------------------------------------------------------------------------
# scheduler: register_fifo_batch lane-drain semantics
# ---------------------------------------------------------------------------
def _flatten(log):
    """Expand batch records to per-item records (the semantic sequence)."""
    out = []
    for kind, t, payload in log:
        if kind == "batch":
            out.extend(("one", t, item) for item in payload)
        else:
            out.append((kind, t, payload))
    return out


def _drive(engine):
    sim = Simulator(engine=engine)
    log = []

    def rx(tag):
        log.append(("one", sim.now, tag))

    def rx_batch(items):
        log.append(("batch", sim.now, [args[0] for args in items]))

    def other():
        log.append(("other", sim.now, None))

    sim.register_fifo_batch(rx, rx_batch)
    sim.schedule_fifo(1.0, rx, "a")
    sim.schedule_fifo(1.0, rx, "b")
    sim.schedule(1.0, other)  # global-order boundary inside the instant
    sim.schedule_fifo(1.0, rx, "c")
    sim.schedule_fifo(2.0, rx, "d")  # later instant: separate batch
    sim.run()
    return log


def test_lane_batching_coalesces_and_respects_boundaries():
    log = _drive("lanes")
    batches = [payload for kind, _t, payload in log if kind == "batch"]
    # a+b coalesce; the interleaved heap event fences c off; d is alone
    assert batches == [["a", "b"], ["c"], ["d"]]
    assert _flatten(log) == [
        ("one", 1.0, "a"), ("one", 1.0, "b"), ("other", 1.0, None),
        ("one", 1.0, "c"), ("one", 2.0, "d"),
    ]


def test_heap_engine_ignores_batch_registration_with_same_sequence():
    lanes, heap = _drive("lanes"), _drive("heap")
    assert all(kind != "batch" for kind, _t, _p in heap)
    assert _flatten(heap) == _flatten(lanes)


def test_lane_batching_counts_each_event():
    sim = Simulator(engine="lanes")
    seen = []
    rx = seen.append
    # the batch handler receives the argument *tuples* in firing order
    sim.register_fifo_batch(rx, lambda items: seen.extend(a[0] for a in items))
    for tag in range(5):
        sim.schedule_fifo(1.0, rx, tag)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]
    assert sim.events_processed == 5  # batching must not hide events


# ---------------------------------------------------------------------------
# system wiring + compiled-engine gating
# ---------------------------------------------------------------------------
def _tiny_config(**kw):
    return ExperimentConfig(
        protocol="mhh", grid_k=2, seed=3,
        workload=WorkloadSpec(
            clients_per_broker=2, mobile_fraction=0.5,
            mean_connected_s=10.0, mean_disconnected_s=5.0,
            publish_interval_s=15.0, duration_s=60.0,
        ),
        **kw,
    )


def test_event_batching_toggle_wires_the_batch_path():
    system, _wl = build_system(_tiny_config(event_batching=True))
    assert system.event_batching
    # every broker's batch receiver is registered with the link layer and
    # the pinned delivery callback is registered with the lane scheduler
    assert set(system.net._broker_rx_batch) == set(system.brokers)
    clock = system.net.clock
    assert system.net._deliver_broker in clock._fifo_batch
    off, _wl = build_system(_tiny_config())
    assert not off.event_batching
    assert not off.net._broker_rx_batch


def test_compiled_toggles_fail_loudly_when_extension_absent():
    status = compiled_status()
    if status["matching"]:
        pytest.skip("compiled matching extension present")
    with pytest.raises(ConfigurationError, match="build_compiled"):
        FilterTable(0, NEIGHBORS, engine="counting-compiled")
    with pytest.raises(ConfigurationError, match="build_compiled"):
        build_system(_tiny_config(sim_engine="lanes-compiled"))


# ---------------------------------------------------------------------------
# trace identity: batched data plane on vs off, fixed seeds
# ---------------------------------------------------------------------------
def _small_seed(predicate=lambda s: True, start=0):
    for seed in range(start, start + 5000):
        s = Scenario.from_seed(seed)
        if (s.grid_k == 2 and s.clients_per_broker == 3
                and s.duration_s == 180.0 and predicate(s)):
            return seed
    raise AssertionError("no matching scenario seed found")


@pytest.mark.parametrize("seed_pick", [
    ("mhh-faulty", lambda s: s.protocol == "mhh" and s.faults.active),
    ("sub-unsub", lambda s: s.protocol == "sub-unsub"),
], ids=lambda p: p[0])
def test_event_batching_traces_byte_identical(seed_pick):
    _name, predicate = seed_pick
    scenario = Scenario.from_seed(_small_seed(predicate))
    base = run_scenario(scenario, *ENGINE_BUNDLES[0])
    batched = run_scenario(scenario, *ENGINE_BUNDLES[2])
    assert ENGINE_BUNDLES[2][3] is True  # the bundle under test batches
    assert compare_outcomes(base, batched) == []
    assert base.delivery_log  # the scenario actually delivered traffic


@pytest.mark.skipif(
    not all(compiled_status().values()),
    reason="mypyc extensions not built (python tools/build_compiled.py)",
)
def test_compiled_engines_trace_byte_identical():
    scenario = Scenario.from_seed(
        _small_seed(lambda s: s.protocol == "mhh")
    )
    base = run_scenario(scenario, *ENGINE_BUNDLES[0])
    compiled = run_scenario(
        scenario, "lanes-compiled", "counting-compiled", True, True
    )
    assert compare_outcomes(base, compiled) == []
