"""Scenario tests for the MHH protocol (paper §4).

Each test drives a specific situation from the paper — silent move,
proclaimed move, same-broker reconnect, frequent moving with stop +
relinked PQlist — and asserts the externally observable guarantees:
exactly-once, per-publisher order, no loss, and a clean (quiescent) system.
"""

import pytest

from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem


def build(k=3, seed=1, trace=None):
    return PubSubSystem(grid_k=k, protocol="mhh", seed=seed, trace=trace)


def pair(system, sub_broker, pub_broker):
    sub = system.add_client(RangeFilter(0.0, 0.5), broker=sub_broker, mobile=True)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=pub_broker)
    sub.connect(sub_broker)
    pub.connect(pub_broker)
    system.run(until=2000.0)
    return sub, pub


def finish(system):
    system.sim.run()
    assert system.sim.peek() is None
    assert system.protocol.quiescent()


def assert_clean(system):
    stats = system.metrics.delivery.stats
    assert stats.duplicates == 0
    assert stats.order_violations == 0
    assert stats.lost_explicit == 0
    assert stats.missing == 0
    assert stats.delivered == stats.expected


def test_silent_move_delivers_stored_backlog(caplog=None):
    system = build()
    sub, pub = pair(system, 0, 8)
    sub.disconnect()
    system.run(until=4000.0)
    for _ in range(5):
        pub.publish(0.25)
    system.run(until=8000.0)
    sub.connect(4)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 5
    assert system.metrics.handoffs.handoff_count == 1


def test_silent_move_handoff_delay_is_short():
    system = build(k=5)
    sub, pub = pair(system, 0, 24)
    sub.disconnect()
    system.run(until=4000.0)
    pub.publish(0.25)
    system.run(until=8000.0)
    sub.connect(24)
    finish(system)
    delay = system.metrics.handoffs.mean_delay()
    # one control round between new and old broker + first event flight +
    # wireless; far below the sub-unsub safety-interval regime
    assert delay is not None
    assert delay < 500.0


def test_same_broker_reconnect_is_not_a_handoff():
    system = build()
    sub, pub = pair(system, 0, 8)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(3):
        pub.publish(0.3)
    system.run(until=6000.0)
    sub.connect(0)
    finish(system)
    assert_clean(system)
    assert system.metrics.handoffs.handoff_count == 0
    assert system.metrics.handoffs.reconnects_same_broker == 1
    assert system.metrics.delivery.stats.delivered == 3


def test_events_published_during_migration_are_not_lost():
    system = build(k=5)
    sub, pub = pair(system, 0, 12)
    sub.disconnect()
    system.run(until=3000.0)
    sub.connect(24)
    # publish while the handoff is in full flight
    for _ in range(10):
        pub.publish(0.1)
        system.run(until=system.sim.now + 7.0)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 10


def test_proclaimed_move_pre_stages_subscription():
    system = build(k=4, trace=["proclaimed_move", "anchor_formed"])
    sub, pub = pair(system, 0, 5)
    sub.proclaim_and_disconnect(15)
    system.run(until=4000.0)
    # events published while the client is off the air route to the new
    # broker already
    for _ in range(4):
        pub.publish(0.2)
    system.run(until=8000.0)
    sub.connect(15)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 4
    assert len(system.tracer.select("proclaimed_move")) == 1
    anchors = system.tracer.select("anchor_formed")
    assert [r.get("broker") for r in anchors] == [15]


def test_proclaimed_move_to_current_broker_degenerates_to_silent():
    system = build()
    sub, pub = pair(system, 3, 8)
    sub.proclaim_and_disconnect(3)
    system.run(until=3000.0)
    pub.publish(0.4)
    system.run(until=5000.0)
    sub.connect(3)
    finish(system)
    assert_clean(system)
    assert system.metrics.handoffs.handoff_count == 0


def test_proclaimed_move_but_reconnect_elsewhere():
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    sub.proclaim_and_disconnect(15)
    system.run(until=4000.0)
    pub.publish(0.2)
    system.run(until=8000.0)
    sub.connect(9)  # changed its mind
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 1


def test_two_consecutive_moves():
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    for target in (15, 3):
        sub.disconnect()
        system.run(until=system.sim.now + 2000.0)
        pub.publish(0.1)
        system.run(until=system.sim.now + 2000.0)
        sub.connect(target)
        system.run(until=system.sim.now + 3000.0)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 2
    assert system.metrics.handoffs.handoff_count == 2


def test_rapid_move_mid_migration_stops_and_relinks():
    """The §4.3 case: disconnect before the event migration completes."""
    system = build(k=5, trace=["stopped_migration", "migration_complete"])
    sub, pub = pair(system, 0, 12)
    sub.disconnect()
    system.run(until=3000.0)
    # large backlog so the stream cannot finish instantly
    for _ in range(40):
        pub.publish(0.2)
    system.run(until=9000.0)
    sub.connect(24)
    # yank the client away immediately: the wireless drain of 40 events
    # takes 800 ms; leave after 100 ms
    system.run(until=system.sim.now + 100.0)
    sub.disconnect()
    system.run(until=system.sim.now + 5000.0)
    # reconnect somewhere else: the relinked, distributed PQlist must drain
    sub.connect(7)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 40


def test_bounce_back_to_old_broker_mid_migration():
    system = build(k=5)
    sub, pub = pair(system, 0, 12)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(30):
        pub.publish(0.2)
    system.run(until=9000.0)
    sub.connect(24)
    system.run(until=system.sim.now + 60.0)
    sub.disconnect()
    system.run(until=system.sim.now + 50.0)
    sub.connect(0)  # back to the original broker
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 30


def test_pingpong_many_rapid_moves():
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(25):
        pub.publish(0.3)
    system.run(until=8000.0)
    # ping-pong between brokers faster than any migration can finish
    for target in (15, 2, 13, 4, 11):
        sub.connect(target)
        system.run(until=system.sim.now + 45.0)
        sub.disconnect()
        system.run(until=system.sim.now + 30.0)
    sub.connect(8)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 25


def test_publish_while_moving_self_subscription():
    """A mobile client that also publishes events matching itself."""
    system = build(k=4)
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    sub.connect(0)
    system.run(until=2000.0)
    sub.publish(0.5)
    system.run(until=4000.0)
    sub.disconnect()
    system.run(until=5000.0)
    sub.connect(15)
    system.run(until=7000.0)
    sub.publish(0.6)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 2


def test_mirror_invariant_after_many_migrations():
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    for target in (15, 3, 12, 7):
        sub.disconnect()
        system.run(until=system.sim.now + 1500.0)
        pub.publish(0.2)
        system.run(until=system.sim.now + 1500.0)
        sub.connect(target)
        system.run(until=system.sim.now + 2500.0)
    finish(system)
    system.check_mirror_invariant()
    assert_clean(system)


def test_queues_cleaned_up_after_settling():
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    for target in (15, 3):
        sub.disconnect()
        system.run(until=system.sim.now + 1500.0)
        pub.publish(0.2)
        system.run(until=system.sim.now + 1500.0)
        sub.connect(target)
        system.run(until=system.sim.now + 2500.0)
    finish(system)
    # the client is connected and live: no queues should remain anywhere
    leftover = [
        (b.id, q)
        for b in system.brokers.values()
        for q in b.queues.values()
        if q.client == sub.id
    ]
    assert leftover == []


def test_concurrent_clients_do_not_interfere():
    """The paper's §2 claim: MHH handoffs are independent across clients."""
    system = build(k=4)
    movers = []
    for b in range(8):
        c = system.add_client(RangeFilter(0.0, 0.6), broker=b, mobile=True)
        c.connect(b)
        movers.append(c)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=15)
    pub.connect(15)
    system.run(until=3000.0)
    for c in movers:
        c.disconnect()
    system.run(until=4000.0)
    for _ in range(6):
        pub.publish(0.3)
    system.run(until=6000.0)
    # all reconnect at once at shuffled targets
    for i, c in enumerate(movers):
        c.connect((i * 5 + 3) % 16)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 6 * 8
    assert system.metrics.handoffs.handoff_count == 8
