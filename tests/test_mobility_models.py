"""The mobility-model registry, the models, and topic-popularity skew."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem
from repro.sim.rng import RandomStreams
from repro.workload.models import (
    MOBILITY_MODELS,
    HotspotMobility,
    MobilityModel,
    PingPongMobility,
    TopicSampler,
    TraceReplayMobility,
    UniformMobility,
    make_mobility_model,
    register_mobility_model,
    zipf_weights,
)
from repro.workload.mobility_model import Workload
from repro.workload.spec import WorkloadSpec


def small_system(k=3, protocol="mhh", seed=5):
    return PubSubSystem(grid_k=k, protocol=protocol, seed=seed)


class FakeClient:
    def __init__(self, cid=0, home=0, last=None):
        self.id = cid
        self.home_broker = home
        self.last_broker = last


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_registry_holds_all_builtin_models():
    assert {"uniform", "hotspot", "ping-pong", "trace"} <= set(MOBILITY_MODELS)


def test_make_unknown_model_raises():
    with pytest.raises(ConfigurationError, match="unknown mobility model"):
        make_mobility_model("teleport")


def test_register_rejects_duplicates_and_anonymous():
    with pytest.raises(ConfigurationError, match="already registered"):

        @register_mobility_model
        class Clash(MobilityModel):
            name = "uniform"

    with pytest.raises(ConfigurationError, match="non-empty name"):

        @register_mobility_model
        class NoName(MobilityModel):
            pass


def test_spec_validates_model_name():
    with pytest.raises(ConfigurationError, match="unknown mobility model"):
        WorkloadSpec(mobility_model="teleport")
    with pytest.raises(ConfigurationError):
        WorkloadSpec(topic_skew=-0.5)


# ---------------------------------------------------------------------------
# the models
# ---------------------------------------------------------------------------
def test_uniform_matches_seed_draw_sequence():
    """The default model must make exactly the paper code path's draws
    (``rng.integers(n)``) so default runs stay bit-identical."""
    system = small_system()
    model = make_mobility_model("uniform")
    assert isinstance(model, UniformMobility)
    model.bind(system)
    rng = RandomStreams(9).stream("workload/mobility/0")
    got = [model.next_broker(rng, FakeClient()) for _ in range(8)]
    ref_rng = RandomStreams(9).stream("workload/mobility/0")
    want = [int(ref_rng.integers(system.broker_count)) for _ in range(8)]
    assert got == want


def test_hotspot_concentrates_on_low_ids():
    system = small_system()
    model = HotspotMobility(exponent=1.4)
    model.bind(system)
    rng = np.random.default_rng(0)
    draws = [model.next_broker(rng, FakeClient()) for _ in range(3000)]
    counts = np.bincount(draws, minlength=system.broker_count)
    assert counts[0] > counts[-1]
    assert counts[0] > len(draws) / system.broker_count  # beats uniform share
    assert model.weights.sum() == pytest.approx(1.0)


def test_ping_pong_oscillates_between_adjacent_brokers():
    system = small_system()
    model = PingPongMobility()
    model.bind(system)
    rng = np.random.default_rng(0)
    client = FakeClient(home=4, last=4)
    partner = model.next_broker(rng, client)
    assert system.topology.has_edge(4, partner)
    client.last_broker = partner
    assert model.next_broker(rng, client) == 4


def test_ping_pong_handoffs_stay_on_grid_edges():
    system = small_system(protocol="sub-unsub")
    spec = WorkloadSpec(
        clients_per_broker=3,
        mobile_fraction=0.5,
        mean_connected_s=10.0,
        mean_disconnected_s=5.0,
        publish_interval_s=30.0,
        duration_s=200.0,
        mobility_model="ping-pong",
    )
    workload = Workload(system, spec)
    system.run(until=spec.duration_ms)
    workload.stop()
    records = system.metrics.handoffs.records
    assert records, "ping-pong produced no handoffs"
    for rec in records:
        assert system.topology.has_edge(rec.old_broker, rec.new_broker)


def test_trace_replay_cycles_and_falls_back():
    system = small_system()
    model = TraceReplayMobility(trace={3: (7, 2)})
    model.bind(system)
    rng = np.random.default_rng(0)
    traced = FakeClient(cid=3, home=0)
    assert [model.next_broker(rng, traced) for _ in range(5)] == [7, 2, 7, 2, 7]
    untraced = FakeClient(cid=4, home=5)
    n = system.broker_count
    assert [model.next_broker(rng, untraced) for _ in range(3)] == [
        6 % n, 7 % n, 8 % n
    ]


def test_trace_replay_validates_broker_range():
    model = TraceReplayMobility(trace={0: (99,)})
    with pytest.raises(ConfigurationError, match="names broker 99"):
        model.bind(small_system())


# ---------------------------------------------------------------------------
# topic popularity
# ---------------------------------------------------------------------------
def test_topic_sampler_uniform_is_draw_identical():
    sampler = TopicSampler(skew=0.0)
    a = RandomStreams(4).stream("workload/publish/0")
    b = RandomStreams(4).stream("workload/publish/0")
    assert [sampler.draw(a) for _ in range(16)] == [
        float(b.uniform()) for _ in range(16)
    ]


def test_topic_sampler_skew_prefers_low_topics():
    sampler = TopicSampler(skew=1.3, bins=10)
    rng = np.random.default_rng(1)
    draws = [sampler.draw(rng) for _ in range(4000)]
    assert all(0.0 <= t < 1.0 for t in draws)
    hottest = sum(1 for t in draws if t < 0.1)
    coldest = sum(1 for t in draws if t >= 0.9)
    assert hottest > 3 * max(coldest, 1)


def test_zipf_weights_shape():
    w = zipf_weights(5, 1.0)
    assert w.sum() == pytest.approx(1.0)
    assert list(w) == sorted(w, reverse=True)
    flat = zipf_weights(5, 0.0)
    assert flat[0] == pytest.approx(flat[-1])


# ---------------------------------------------------------------------------
# end-to-end: adversarial models keep reliable protocols reliable
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("model,params", [
    ("hotspot", {"exponent": 1.5}),
    ("ping-pong", {}),
])
def test_mhh_stays_reliable_under_adversarial_movement(model, params):
    system = small_system()
    spec = WorkloadSpec(
        clients_per_broker=3,
        mobile_fraction=0.5,
        mean_connected_s=8.0,
        mean_disconnected_s=6.0,
        publish_interval_s=25.0,
        duration_s=200.0,
        mobility_model=model,
        mobility_params=params,
        topic_skew=1.1,
    )
    workload = Workload(system, spec)
    system.run(until=spec.duration_ms)
    workload.stop()
    for client in workload.all_clients:
        if not client.connected:
            client.connect(
                client.last_broker
                if client.last_broker is not None
                else client.home_broker
            )
    system.run()
    stats = system.metrics.delivery.stats
    assert stats.missing == 0
    assert stats.duplicates == 0
    assert stats.order_violations == 0
