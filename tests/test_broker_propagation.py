"""Unit tests for subscription propagation at the broker level.

Covers the covering-pruned flood, the re-advertisement logic on
withdrawal, and the direct table surgery used by MHH migrations.
"""

import pytest

from repro.errors import ProtocolError
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem
from repro.pubsub import messages as m


def build(covering, k=3, seed=1):
    return PubSubSystem(
        grid_k=k, protocol="mhh", seed=seed, covering_enabled=covering
    )


def sub_hops(system):
    return system.metrics.traffic.wired_hops.get(m.CAT_SUB_INITIAL, 0)


def test_flood_reaches_every_broker_without_covering():
    system = build(covering=False)
    c = system.add_client(RangeFilter(0.2, 0.4), broker=4)
    c.connect(4)
    system.run(until=3000.0)
    # every broker must know the subscription via exactly one neighbour
    for b in system.brokers.values():
        if b.id == 4:
            assert b.table.entries_for_client(c.id)
            continue
        holders = [
            n for n in b.table.neighbors
            if b.table.has_broker_filter(n, ("sub", c.id))
        ]
        assert len(holders) == 1
    # flood cost: one message per tree edge
    assert sub_hops(system) == 8


def test_identical_filter_suppressed_by_covering():
    system = build(covering=True)
    a = system.add_client(RangeFilter(0.2, 0.4), broker=4)
    a.connect(4)
    system.run(until=3000.0)
    before = sub_hops(system)
    b = system.add_client(RangeFilter(0.2, 0.4), broker=4)
    b.connect(4)
    system.run(until=6000.0)
    assert sub_hops(system) == before  # second sub fully covered


def test_narrower_filter_suppressed_wider_not():
    system = build(covering=True)
    wide = system.add_client(RangeFilter(0.1, 0.9), broker=4)
    wide.connect(4)
    system.run(until=3000.0)
    at_wide = sub_hops(system)
    narrow = system.add_client(RangeFilter(0.3, 0.5), broker=4)
    narrow.connect(4)
    system.run(until=6000.0)
    assert sub_hops(system) == at_wide  # narrow covered by wide
    wider = system.add_client(RangeFilter(0.0, 1.0), broker=4)
    wider.connect(4)
    system.run(until=9000.0)
    assert sub_hops(system) > at_wide  # wider must propagate


def test_unsubscribe_re_advertises_suppressed_filter():
    """Removing a covering filter must resurrect the covered one."""
    system = build(covering=True)
    wide = system.add_client(RangeFilter(0.0, 1.0), broker=4)
    narrow = system.add_client(RangeFilter(0.3, 0.5), broker=4)
    wide.connect(4)
    system.run(until=2000.0)
    narrow.connect(4)
    pub = system.add_client(RangeFilter(2.0, 2.0), broker=0)
    pub.connect(0)
    system.run(until=4000.0)
    # withdraw the wide subscription entirely
    system.brokers[4].local_unsubscribe(wide.id, m.CAT_SUB_HANDOFF)
    system.run(until=8000.0)
    system.check_mirror_invariant()
    # the narrow subscription must still route events
    pub.publish(0.4)
    system.run(until=12000.0)
    stats = system.metrics.delivery.stats
    assert stats.delivered == 1  # narrow got it, wide is gone
    # and out-of-range events reach nobody
    pub.publish(0.05)
    system.run()
    assert system.metrics.delivery.stats.delivered == 1


def test_unsubscribe_propagates_when_no_cover_remains():
    system = build(covering=True)
    c = system.add_client(RangeFilter(0.2, 0.4), broker=4)
    c.connect(4)
    system.run(until=3000.0)
    system.brokers[4].local_unsubscribe(c.id, m.CAT_SUB_HANDOFF)
    system.run(until=6000.0)
    key = ("sub", c.id)
    for b in system.brokers.values():
        for n in b.table.neighbors:
            assert not b.table.has_broker_filter(n, key)
    system.check_mirror_invariant()


def test_migration_remove_missing_filter_raises():
    system = build(covering=False)
    broker = system.brokers[4]
    with pytest.raises(ProtocolError):
        broker.migration_remove_from(1, "nonexistent-key")


def test_unknown_protocol_name_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=3, protocol="definitely-not-a-protocol")


def test_system_config_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=0)
    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=3, migration_batch_size=0)
    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=3, unicast_routing="carrier-pigeon")
    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=3, stream_pacing_ms=-1.0)


def test_callable_protocol_factory():
    from repro.mobility.mhh import MHHProtocol

    created = []

    def factory(system):
        proto = MHHProtocol(system)
        created.append(proto)
        return proto

    system = PubSubSystem(grid_k=3, protocol=factory)
    assert system.protocol is created[0]
