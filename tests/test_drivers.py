"""Driver parity: the sans-IO kernel under the live driver vs the simulator.

The tentpole guarantee of the driver refactor is that the protocol core is
genuinely engine-agnostic: running the same seeded scenario through the
live driver (on a deterministic :class:`VirtualClock`, the stand-in for
the asyncio loop with asyncio's ordering semantics — one flat
``(when, seq)`` heap, no lanes, no ``schedule_fifo`` machinery) must
produce the same :class:`DeliveryChecker` outcome as the simulated driver,
for every protocol, with and without fault injection. The tests here
assert the *full delivery log*, which subsumes the per-client counters.

Also covered: VirtualClock ordering/cancellation semantics, the
AsyncioClock-based live soak end-to-end, and the Broker dispatch table.
"""

from __future__ import annotations

import pytest

from repro.drivers.base import Driver
from repro.drivers.live import LiveDriver, VirtualClock, run_soak, run_virtual_scenario
from repro.drivers.simulated import SimulatedDriver
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_system, drain_to_quiescence
from repro.network.faults import FaultProfile
from repro.network.recovery import CrashEvent, CrashPlan
from repro.pubsub import messages as m
from repro.pubsub.broker import Broker
from repro.pubsub.system import PubSubSystem
from repro.workload.spec import WorkloadSpec

PROTOCOLS = ("mhh", "sub-unsub", "two-phase", "home-broker")

SPEC = WorkloadSpec(
    clients_per_broker=3,
    mobile_fraction=0.5,
    mean_connected_s=10.0,
    mean_disconnected_s=5.0,
    publish_interval_s=15.0,
    duration_s=120.0,
)

FAULTS = FaultProfile(
    deliver_loss=0.1, deliver_duplicate=0.05, wireless_jitter_ms=5.0
)

# one mid-run broker crash + a late restart: both repair rounds land inside
# the measurement window, so post-recovery deliveries dominate the log
CRASHES = CrashPlan(
    events=(
        CrashEvent("crash", 40_000.0, broker=4),
        CrashEvent("restart", 90_000.0, broker=4),
    )
)


def _outcome(system: PubSubSystem):
    st = system.metrics.delivery.stats
    return (
        st.published,
        st.expected,
        st.delivered,
        st.duplicates,
        st.order_violations,
        st.lost_explicit,
        st.missing,
        st.crash_lost,
        system.metrics.handoffs.handoff_count,
        tuple(system.metrics.delivery.log),
    )


def _run_simulated(cfg: ExperimentConfig):
    system, workload = build_system(cfg)
    system.metrics.delivery.record_log = True
    system.run(until=cfg.workload.duration_ms)
    workload.stop()
    drain_to_quiescence(system, workload)
    return _outcome(system)


# ---------------------------------------------------------------------------
# the parity gate
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_live_driver_matches_simulated_driver(protocol):
    cfg = ExperimentConfig(protocol=protocol, grid_k=3, seed=7, workload=SPEC)
    assert _run_simulated(cfg) == _outcome(run_virtual_scenario(cfg))


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_live_driver_matches_simulated_driver_under_faults(protocol):
    cfg = ExperimentConfig(
        protocol=protocol, grid_k=3, seed=11, workload=SPEC, faults=FAULTS
    )
    assert _run_simulated(cfg) == _outcome(run_virtual_scenario(cfg))


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_live_driver_matches_simulated_driver_under_broker_crash(protocol):
    """Crash events are scheduled through the sans-IO clock facade, so a
    mid-run broker crash + restart must leave the *identical* post-recovery
    delivery log (and crash-loss ledger) under both drivers."""
    cfg = ExperimentConfig(
        protocol=protocol, grid_k=3, seed=13, workload=SPEC, crashes=CRASHES
    )
    simulated = _run_simulated(cfg)
    live = _outcome(run_virtual_scenario(cfg))
    assert simulated == live
    assert simulated[6] == 0  # missing: every crash loss accounted
    assert simulated[-1], "degenerate run: no deliveries at all"


# The VirtualClock/AsyncioClock ordering, cancellation and run-until
# semantics are pinned by the shared clock-contract suite in
# tests/test_clock_contract.py, which runs every case against BOTH
# clock implementations.


# ---------------------------------------------------------------------------
# system plumbing
# ---------------------------------------------------------------------------
def test_system_rejects_unknown_driver_spec():
    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=2, driver="warp")


def test_live_system_has_no_simulator_and_refuses_run():
    system = PubSubSystem(grid_k=2, driver=LiveDriver(VirtualClock()))
    assert system.sim is None
    assert system.driver.name == "live"
    with pytest.raises(ConfigurationError):
        system.run(until=10.0)


def test_simulated_driver_is_the_default_and_exposes_sim():
    system = PubSubSystem(grid_k=2)
    assert isinstance(system.driver, SimulatedDriver)
    assert isinstance(system.driver, Driver)
    assert system.sim is system.clock
    assert system.links is system.net


def test_broker_dispatch_table_covers_exactly_the_core_types():
    assert set(Broker._CORE_DISPATCH) == {
        m.EventMessage,
        m.PublishMessage,
        m.SubscribeMessage,
        m.UnsubscribeMessage,
        m.ConnectMessage,
        m.AckMessage,
        m.SessionTransfer,
    }


def test_unknown_message_falls_through_to_protocol_control():
    system = PubSubSystem(grid_k=2)
    seen = []
    system.protocol.on_control = lambda broker, msg, frm: seen.append(
        (broker.id, msg, frm)
    )
    probe = m.StreamDone(client=0)
    system.brokers[0].receive(probe, 1)
    assert seen == [(0, probe, 1)]


# ---------------------------------------------------------------------------
# the asyncio soak (real wall-clock, kept tiny)
# ---------------------------------------------------------------------------
def test_asyncio_soak_mhh_with_faults_passes():
    result = run_soak(
        "mhh",
        duration_s=0.6,
        time_scale=10.0,
        faults=FaultProfile(deliver_loss=0.1, deliver_duplicate=0.05),
    )
    assert result.drained, "live drain did not reach quiescence"
    assert result.violations == []
    assert result.stats.published > 0
    assert result.stats.missing == 0


def test_cli_soak_command(capsys):
    from repro.experiments.cli import main

    rc = main(
        ["soak", "--protocol", "sub-unsub", "--duration", "0.4",
         "--time-scale", "10", "--loss", "0.1"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "PASS sub-unsub" in out


def test_cli_rejects_cross_mode_flags():
    from repro.experiments.cli import main

    with pytest.raises(SystemExit):
        main(["fig5a", "--duration", "1"])
    with pytest.raises(SystemExit):
        main(["soak", "--scale", "paper"])
