"""Integration tests: reverse-path-forwarding correctness for static clients.

Invariant 4 of DESIGN.md: every published event is delivered exactly once to
every connected client whose filter matches, and never to others — across
topologies, subscription patterns, and covering on/off.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem


def build(k=3, covering=False, seed=1):
    return PubSubSystem(
        grid_k=k, protocol="mhh", seed=seed, covering_enabled=covering
    )


def settle(system, ms=3000.0):
    system.run(until=system.sim.now + ms)


def test_single_publisher_single_subscriber():
    system = build()
    sub = system.add_client(RangeFilter(0.4, 0.6), broker=0)
    pub = system.add_client(RangeFilter(0.0, 0.0), broker=8)
    sub.connect(0)
    pub.connect(8)
    settle(system)
    pub.publish(0.5)
    pub.publish(0.7)  # no match
    settle(system)
    assert system.metrics.delivery.stats.delivered == 1
    assert system.metrics.delivery.stats.expected == 1


def test_fanout_to_all_matching_subscribers():
    system = build(k=4)
    subs = []
    for b in range(16):
        c = system.add_client(RangeFilter(0.0, (b + 1) / 16.0), broker=b)
        c.connect(b)
        subs.append(c)
    pub = system.add_client(RangeFilter(0.0, 0.0), broker=0)
    pub.connect(0)
    settle(system)
    pub.publish(0.5)
    settle(system)
    stats = system.metrics.delivery.stats
    # subscribers with hi >= 0.5: b+1 >= 8 -> 9 of them, publisher's own
    # filter [0,0] does not match
    assert stats.expected == 9
    assert stats.delivered == 9
    assert stats.duplicates == 0


def test_publisher_receives_own_matching_event():
    system = build()
    c = system.add_client(RangeFilter(0.0, 1.0), broker=4)
    c.connect(4)
    settle(system)
    c.publish(0.5)
    settle(system)
    assert system.metrics.delivery.stats.delivered == 1


def test_publish_before_subscription_settles_may_split_but_never_duplicates():
    system = build()
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0)
    pub = system.add_client(RangeFilter(0.0, 0.0), broker=8)
    sub.connect(0)
    pub.connect(8)
    settle(system)
    for i in range(20):
        pub.publish(i / 20.0)
    settle(system)
    stats = system.metrics.delivery.stats
    assert stats.duplicates == 0
    assert stats.delivered == stats.expected


def test_per_publisher_order_preserved_static():
    system = build(k=4)
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0)
    pub = system.add_client(RangeFilter(0.0, 0.0), broker=15)
    sub.connect(0)
    pub.connect(15)
    settle(system)
    for i in range(30):
        pub.publish(0.5)
    settle(system)
    stats = system.metrics.delivery.stats
    assert stats.order_violations == 0
    assert stats.delivered == 30


@pytest.mark.parametrize("covering", [False, True])
def test_covering_does_not_change_delivery_semantics(covering):
    system = build(k=3, covering=covering, seed=5)
    rng_points = [0.05, 0.25, 0.45, 0.65, 0.85]
    for b in range(9):
        c = system.add_client(
            RangeFilter(0.1 * b / 9, 0.1 * b / 9 + 0.5), broker=b
        )
        c.connect(b)
    pub = system.add_client(RangeFilter(0.0, 0.0), broker=4)
    pub.connect(4)
    settle(system)
    for x in rng_points:
        pub.publish(x)
    settle(system)
    stats = system.metrics.delivery.stats
    assert stats.delivered == stats.expected
    assert stats.duplicates == 0
    system.check_mirror_invariant()


def test_covering_reduces_subscription_traffic():
    def setup(covering):
        system = PubSubSystem(
            grid_k=4, protocol="mhh", seed=2, covering_enabled=covering
        )
        # one broad subscription, then many narrow ones it covers
        broad = system.add_client(RangeFilter(0.0, 1.0), broker=0)
        broad.connect(0)
        system.run(until=2000.0)
        for b in range(1, 16):
            c = system.add_client(RangeFilter(0.4, 0.5), broker=0)
            c.connect(0)
        system.run(until=5000.0)
        return system.metrics.traffic.wired_hops.get("sub_initial", 0)

    assert setup(True) < setup(False)


def test_mirror_invariant_after_static_setup():
    system = build(k=4, covering=True, seed=3)
    for b in range(16):
        c = system.add_client(RangeFilter(0.0, (b + 1) / 16), broker=b)
        c.connect(b)
    settle(system)
    system.check_mirror_invariant()


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 100),
    covering=st.booleans(),
    subs=st.lists(
        st.tuples(
            st.integers(0, 8),  # broker
            st.floats(0, 1, allow_nan=False),
            st.floats(0, 1, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    ),
    topics=st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=6),
)
def test_property_static_exactly_once(seed, covering, subs, topics):
    system = PubSubSystem(
        grid_k=3, protocol="mhh", seed=seed, covering_enabled=covering
    )
    for broker, a, b in subs:
        c = system.add_client(RangeFilter(min(a, b), max(a, b)), broker=broker)
        c.connect(broker)
    pub = system.add_client(RangeFilter(0.0, 0.0), broker=4)
    pub.connect(4)
    system.run(until=3000.0)
    for x in topics:
        pub.publish(x)
    system.run()
    stats = system.metrics.delivery.stats
    assert stats.delivered == stats.expected
    assert stats.duplicates == 0
    assert stats.order_violations == 0
