"""The examples are part of the public surface: they must keep running."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "stock_ticker.py",
        "fleet_tracking.py",
        "frequent_mobility.py",
        "protocol_comparison.py",
        "lossy_hotspot.py",
        "reliable_lossy.py",
    ],
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout
