"""Unit tests for persistent queues."""

import pytest

from repro.mobility.queues import PersistentQueue
from repro.pubsub.events import Notification
from repro.util.ids import QueueRef


def ev(i):
    return Notification(i, 0, i, 0.0, 0.5)


@pytest.fixture
def q():
    return PersistentQueue(QueueRef(3, 7), client=42)


def test_fifo_order(q):
    for i in range(5):
        q.append(ev(i))
    assert [e.event_id for e in q.drain()] == [0, 1, 2, 3, 4]
    assert len(q) == 0


def test_popleft(q):
    q.append(ev(1))
    q.append(ev(2))
    assert q.popleft().event_id == 1
    assert len(q) == 1


def test_extend_front_preserves_order(q):
    q.append(ev(10))
    q.extend_front([ev(1), ev(2), ev(3)])
    assert [e.event_id for e in q] == [1, 2, 3, 10]


def test_frozen_queue_rejects_append(q):
    q.append(ev(1))
    q.freeze()
    with pytest.raises(RuntimeError):
        q.append(ev(2))
    # drain still allowed
    assert [e.event_id for e in q.drain()] == [1]


def test_frozen_queue_rejects_extend_front(q):
    """A frozen (migrating) queue must refuse requeues at the head just
    like appends at the tail — a reclaimed downlink window that raced a
    migration would otherwise be silently dropped by the handover."""
    q.append(ev(1))
    q.freeze()
    with pytest.raises(RuntimeError):
        q.extend_front([ev(2)])
    assert [e.event_id for e in q.drain()] == [1]


def test_bool_and_len(q):
    assert not q
    q.append(ev(1))
    assert q
    assert len(q) == 1


def test_ref_identity(q):
    assert q.ref == QueueRef(3, 7)
    assert q.ref.broker == 3 and q.ref.qid == 7
    assert q.client == 42


def test_queue_ref_hashable_and_distinct():
    assert QueueRef(1, 2) == QueueRef(1, 2)
    assert QueueRef(1, 2) != QueueRef(1, 3)
    assert len({QueueRef(1, 2), QueueRef(1, 2), QueueRef(2, 2)}) == 2
