"""Tests for the experiment harness: configs, runner, figure drivers."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig, SCALES, bench_scale
from repro.experiments.figures import (
    fig5a,
    fig5b,
    fig6a,
    fig6b,
    run_fig5,
    run_fig6,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import run_experiment
from repro.workload.spec import WorkloadSpec


FAST = WorkloadSpec(
    clients_per_broker=3,
    mean_connected_s=20.0,
    mean_disconnected_s=20.0,
    publish_interval_s=15.0,
    duration_s=300.0,
    warmup_s=1.0,
)


@pytest.mark.parametrize("protocol", ["mhh", "sub-unsub", "home-broker"])
def test_runner_end_to_end_reliability(protocol):
    row = run_experiment(
        ExperimentConfig(protocol=protocol, grid_k=3, seed=4, workload=FAST)
    )
    assert row.protocol == protocol
    assert row.published > 0
    assert row.duplicates == 0
    assert row.order_violations == 0
    assert row.missing == 0
    if protocol != "home-broker":
        assert row.lost == 0


def test_runner_snapshot_excludes_drain_traffic():
    # a run whose clients are all disconnected at the end: the drain phase
    # must not add to the snapshot overhead
    cfg = ExperimentConfig(protocol="mhh", grid_k=3, seed=4, workload=FAST)
    row = run_experiment(cfg)
    assert row.overhead_per_handoff is not None
    assert row.handoffs > 0


def test_runner_same_seed_reproducible():
    cfg = ExperimentConfig(protocol="mhh", grid_k=3, seed=11, workload=FAST)
    a = run_experiment(cfg)
    b = run_experiment(cfg)
    assert a.handoffs == b.handoffs
    assert a.overhead_per_handoff == b.overhead_per_handoff
    assert a.delivered == b.delivered


def test_workloads_identical_across_protocols():
    rows = [
        run_experiment(
            ExperimentConfig(protocol=p, grid_k=3, seed=4, workload=FAST)
        )
        for p in ("mhh", "sub-unsub")
    ]
    assert rows[0].published == rows[1].published
    assert rows[0].handoffs == rows[1].handoffs
    assert rows[0].expected_deliveries == rows[1].expected_deliveries


def test_config_with_workload_override():
    cfg = ExperimentConfig(protocol="mhh", workload=FAST)
    cfg2 = cfg.with_workload(mean_connected_s=99.0)
    assert cfg2.workload.mean_connected_s == 99.0
    assert cfg.workload.mean_connected_s == 20.0
    assert "mhh" in cfg2.label()


def test_scales_registry_complete():
    assert set(SCALES) == {"smoke", "small", "paper"}
    for preset in SCALES.values():
        assert {"grid_k", "clients_per_broker", "duration_s"} <= set(preset)


def test_bench_scale_env(monkeypatch):
    monkeypatch.delenv("MHH_BENCH_SCALE", raising=False)
    assert bench_scale() == "smoke"
    monkeypatch.setenv("MHH_BENCH_SCALE", "paper")
    assert bench_scale() == "paper"
    monkeypatch.setenv("MHH_BENCH_SCALE", "bogus")
    with pytest.raises(ConfigurationError):
        bench_scale()


def test_fig5_sweep_smoke_shapes():
    rows = run_fig5(
        scale="smoke",
        protocols=("mhh", "home-broker"),
        conn_periods_s=(10.0, 5000.0),
        seed=2,
    )
    assert len(rows) == 4
    a = fig5a(rows)
    b = fig5b(rows)
    assert set(a) == {"mhh", "home-broker"}
    assert [x for x, _y in a["mhh"]] == [10.0, 5000.0]
    # HB overhead grows with connection period (triangle routing amortised
    # over ever fewer handoffs); MHH stays flat and ends up far below
    hb = dict(a["home-broker"])
    mhh = dict(a["mhh"])
    assert hb[5000.0] > 3 * hb[10.0]
    assert mhh[5000.0] < hb[5000.0]
    assert mhh[5000.0] < 3 * mhh[10.0] + 10
    assert all(y is not None for _x, y in b["mhh"])


def test_fig6_sweep_smoke_shapes():
    rows = run_fig6(
        scale="smoke",
        protocols=("mhh", "home-broker"),
        grid_sizes=(3, 5),
        seed=2,
    )
    assert len(rows) == 4
    a = fig6a(rows)
    b = fig6b(rows)
    hb = dict(a["home-broker"])
    # triangle routing cost grows with network size
    assert hb[25] > hb[9]
    assert set(x for x, _ in b["mhh"]) == {9, 25}


def test_parallel_sweep_matches_serial():
    """workers=N fans runs out over processes; rows (and their order) are
    identical to the serial loop."""
    kwargs = dict(
        scale="smoke",
        protocols=("mhh", "home-broker"),
        conn_periods_s=(10.0, 100.0),
        seed=2,
    )
    serial = run_fig5(**kwargs)
    parallel = run_fig5(workers=2, **kwargs)
    assert len(parallel) == len(serial) == 4
    for a, b in zip(serial, parallel):
        assert a.protocol == b.protocol
        assert a.params == b.params
        assert a.as_dict() == b.as_dict()
        assert a.sim_events == b.sim_events


def test_covering_index_config_plumbs_through():
    cfg = ExperimentConfig(protocol="sub-unsub", grid_k=3, seed=4,
                           workload=FAST, covering_enabled=True)
    legacy = run_experiment(
        ExperimentConfig(protocol="sub-unsub", grid_k=3, seed=4,
                         workload=FAST, covering_enabled=True,
                         covering_index=False)
    )
    indexed = run_experiment(cfg)
    assert cfg.covering_index is True
    assert indexed.as_dict() == legacy.as_dict()
    assert indexed.sim_events == legacy.sim_events


def test_format_table_and_series_render():
    rows = run_fig5(
        scale="smoke", protocols=("mhh",), conn_periods_s=(10.0,), seed=2
    )
    table = format_table(rows, title="t")
    assert "protocol" in table and "mhh" in table
    series = format_series(
        fig5a(rows), "conn_s", "overhead", title="Figure 5(a)"
    )
    assert "Figure 5(a)" in series
    assert "mhh" in series


def test_cli_runs_smoke(capsys):
    from repro.experiments.cli import main

    rc = main(["fig6a", "--scale", "smoke", "--seed", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 6(a)" in out
    assert "mhh" in out


def test_workload_overrides_reject_sweep_owned_fields():
    import pytest as _pytest

    from repro.errors import ConfigurationError
    from repro.experiments import figures

    with _pytest.raises(ConfigurationError, match="sweep-owned"):
        figures.run_fig5(scale="smoke", conn_periods_s=(10.0,),
                         workload_overrides={"mean_connected_s": 5.0})
    with _pytest.raises(ConfigurationError, match="sweep-owned"):
        figures.run_fig6(scale="smoke", grid_sizes=(3,),
                         workload_overrides={"duration_s": 5.0})
