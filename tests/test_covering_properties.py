"""Property tests for ``reduce_by_covering``.

These pin the de-quadratic rewrite's semantics against an independently
written quadratic oracle on randomized filter sets that deliberately
include equal filters (mutual covering — the tie-break path), nested
ranges, disjoint ranges and conservative conjunctions.
"""

import random

import pytest

from repro.pubsub.covering import covers, reduce_by_covering
from repro.pubsub.filters import (
    AttributeConstraint,
    ConjunctionFilter,
    Op,
    RangeFilter,
)


def quadratic_oracle(filters):
    """The documented semantics, written as the naive O(n^2) scan:
    keep a filter unless some *other* entry covers it and that entry either
    strictly covers it (no mutual cover) or wins the repr-key tie-break."""
    kept = {}
    for key, f in filters.items():
        covered = False
        for other_key, other in filters.items():
            if other_key == key or not other.covers(f):
                continue
            if not f.covers(other) or repr(other_key) < repr(key):
                covered = True
                break
        if not covered:
            kept[key] = f
    return kept


def random_filter(rnd):
    """Filters on a coarse lattice, so nesting/equality/mutual covering all
    occur often; a sprinkle of conjunctions exercises the conservative
    covering path."""
    if rnd.random() < 0.25:
        attr = rnd.choice(("topic", "kind"))
        lo = rnd.randrange(0, 8) / 8.0
        hi = min(1.0, lo + rnd.randrange(0, 5) / 8.0)
        return ConjunctionFilter(
            [AttributeConstraint(attr, Op.RANGE, (lo, hi))]
        )
    lo = rnd.randrange(0, 8) / 8.0
    return RangeFilter(lo, min(1.0, lo + rnd.randrange(0, 5) / 8.0))


def random_filter_map(rnd, n):
    keys = rnd.sample(range(100), k=n)
    return {key: random_filter(rnd) for key in keys}


@pytest.mark.parametrize("seed", range(25))
def test_reduction_equals_quadratic_oracle(seed):
    rnd = random.Random(seed)
    filters = random_filter_map(rnd, rnd.randrange(1, 25))
    assert reduce_by_covering(filters) == quadratic_oracle(filters)


@pytest.mark.parametrize("seed", range(15))
def test_reduction_is_insertion_order_insensitive(seed):
    rnd = random.Random(1000 + seed)
    filters = random_filter_map(rnd, 18)
    want = reduce_by_covering(filters)
    items = list(filters.items())
    for _ in range(4):
        rnd.shuffle(items)
        assert reduce_by_covering(dict(items)) == want


@pytest.mark.parametrize("seed", range(15))
def test_reduction_is_idempotent(seed):
    rnd = random.Random(2000 + seed)
    once = reduce_by_covering(random_filter_map(rnd, 20))
    assert reduce_by_covering(once) == once


@pytest.mark.parametrize("seed", range(15))
def test_reduction_is_sound_and_minimal(seed):
    rnd = random.Random(3000 + seed)
    filters = random_filter_map(rnd, 20)
    kept = reduce_by_covering(filters)
    # kept is a sub-map of the input
    assert all(filters[key] == f for key, f in kept.items())
    # sound: every input filter is covered by some survivor
    for f in filters.values():
        assert any(covers(g, f) for g in kept.values())
    # minimal: no survivor is covered by a *different* survivor
    for key, f in kept.items():
        for other_key, other in kept.items():
            if other_key != key:
                assert not covers(other, f)


def test_equal_filters_keep_smallest_key():
    f = RangeFilter(0.0, 0.5)
    kept = reduce_by_covering({10: f, 2: RangeFilter(0.0, 0.5), 30: f})
    assert sorted(kept) == [10]  # repr-ordering: '10' < '2' < '30'


def test_empty_and_singleton_maps():
    assert reduce_by_covering({}) == {}
    f = RangeFilter(0.1, 0.2)
    assert reduce_by_covering({("k", 1): f}) == {("k", 1): f}
