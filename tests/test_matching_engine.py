"""Differential tests: counting matching engine vs legacy scan path.

The broker-wide :class:`~repro.pubsub.matching.CountingMatchingEngine` must
be *event-for-event identical* to the per-neighbour scan path — same
matched neighbours, same matched client entries, in the same order — under
randomized workloads covering every :class:`~repro.pubsub.filters.Op`
variant, labelled client entries, table churn, and MHH's direct table
surgery. Any divergence is a routing bug, so these tests drive both
implementations with identical inputs and assert equality after every
mutation batch.
"""

import random

import pytest

from repro.pubsub.events import Notification
from repro.pubsub.filter_table import ClientEntry, FilterTable
from repro.pubsub.filters import (
    AttributeConstraint,
    ConjunctionFilter,
    Op,
    RangeFilter,
)
from repro.pubsub.matching import CountingMatchingEngine
from repro.pubsub.system import PubSubSystem

NEIGHBORS = [1, 2, 7, 9]
ATTRS = ["topic", "kind", "size", "region", "flag"]


# ---------------------------------------------------------------------------
# random workload generation (seeded, deterministic)
# ---------------------------------------------------------------------------
def random_filter(rng: random.Random):
    kind = rng.randrange(4)
    if kind == 0:
        lo = rng.uniform(0.0, 0.9)
        return RangeFilter(lo, lo + rng.uniform(0.0, 0.3))
    if kind == 1:
        lo = rng.uniform(0.0, 50.0)
        return RangeFilter(lo, lo + rng.uniform(0.0, 20.0), attr="size")
    n = rng.randrange(0, 4)
    return ConjunctionFilter([random_constraint(rng) for _ in range(n)])


def random_constraint(rng: random.Random) -> AttributeConstraint:
    op = rng.choice(list(Op))
    attr = rng.choice(ATTRS)
    if op is Op.RANGE:
        if rng.random() < 0.2:
            # non-numeric bounds exercise the exact-check fallback
            lo, hi = sorted([rng.choice("abcx"), rng.choice("cxyz")])
            return AttributeConstraint(attr, op, (lo, hi))
        lo = rng.uniform(-1.0, 1.0)
        return AttributeConstraint(attr, op, (lo, lo + rng.uniform(0.0, 1.0)))
    if op is Op.PREFIX:
        return AttributeConstraint(attr, op, rng.choice(["", "a", "ab", "abc", "xy"]))
    if op is Op.EXISTS:
        return AttributeConstraint(attr, op)
    value = rng.choice(
        [
            rng.uniform(-1.0, 1.0),
            rng.randrange(-3, 4),
            rng.choice(["abc", "abd", "xyz", ""]),
            rng.choice([True, False]),
        ]
    )
    return AttributeConstraint(attr, op, value)


def random_event(rng: random.Random, event_id: int) -> Notification:
    attrs = {}
    for attr in ATTRS[1:]:
        roll = rng.random()
        if roll < 0.35:
            continue  # attribute absent
        if roll < 0.6:
            attrs[attr] = rng.uniform(-1.5, 1.5)
        elif roll < 0.75:
            attrs[attr] = rng.choice(["abc", "abde", "x", "xyzw", ""])
        elif roll < 0.85:
            attrs[attr] = rng.randrange(-3, 4)
        else:
            attrs[attr] = rng.choice([True, False])
    return Notification(
        event_id, publisher=0, seq=event_id, publish_time=0.0,
        topic=rng.uniform(-0.1, 1.1), attrs=attrs,
    )


def assert_tables_agree(counting, scan, rng, n_events, event_base):
    for i in range(n_events):
        ev = random_event(rng, event_base + i)
        for origin in [None] + NEIGHBORS[:2]:
            assert counting.match_neighbors(ev, exclude=origin) == \
                scan.match_neighbors(ev, exclude=origin)
            got = counting.match_clients(ev, origin)
            want = scan.match_clients(ev, origin)
            assert [e.key for e in got] == [e.key for e in want]
            c_nbrs, c_entries = counting.match(ev, origin)
            s_nbrs, s_entries = scan.match(ev, origin)
            assert c_nbrs == s_nbrs
            assert [e.key for e in c_entries] == [e.key for e in s_entries]


# ---------------------------------------------------------------------------
# randomized differential property test
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_differential_random_tables(seed):
    """Counting and scan agree across random table churn + events."""
    rng = random.Random(seed)
    counting = FilterTable(0, NEIGHBORS, engine="counting")
    scan = FilterTable(0, NEIGHBORS, engine="scan")
    broker_keys: list[tuple[int, str]] = []
    client_keys: list = []
    next_key = 0
    for batch in range(20):
        for _ in range(rng.randrange(1, 6)):
            action = rng.random()
            if action < 0.4 or not (broker_keys or client_keys):
                nbr = rng.choice(NEIGHBORS)
                key = f"k{next_key}"
                next_key += 1
                f = random_filter(rng)
                counting.add_broker_filter(nbr, key, f)
                scan.add_broker_filter(nbr, key, f)
                broker_keys.append((nbr, key))
            elif action < 0.65:
                key = ("c", next_key)
                next_key += 1
                label = rng.choice([None] + NEIGHBORS)
                f = random_filter(rng)
                counting.set_client_entry(ClientEntry(1000 + next_key, key, f, label=label))
                scan.set_client_entry(ClientEntry(1000 + next_key, key, f, label=label))
                client_keys.append(key)
            elif action < 0.85 and broker_keys:
                nbr, key = broker_keys.pop(rng.randrange(len(broker_keys)))
                assert counting.remove_broker_filter(nbr, key) \
                    == scan.remove_broker_filter(nbr, key)
            elif client_keys:
                key = client_keys.pop(rng.randrange(len(client_keys)))
                counting.remove_entry_by_key(key)
                scan.remove_entry_by_key(key)
        assert_tables_agree(counting, scan, rng, 25, batch * 1000)


@pytest.mark.parametrize("seed", range(6))
def test_differential_mhh_style_surgery(seed):
    """Counting and scan agree after MHH-style direct table edits.

    Replays the exact mutation pattern of §4.1 migration surgery:
    install-toward / remove-from on broker filters plus labelled
    client-entry replacement, interleaved with matching.
    """
    rng = random.Random(1000 + seed)
    counting = FilterTable(0, NEIGHBORS, engine="counting")
    scan = FilterTable(0, NEIGHBORS, engine="scan")
    f = RangeFilter(0.1, 0.8)
    key = ("sub", 7)
    for table in (counting, scan):
        table.set_client_entry(ClientEntry(7, key, f, live=True))
    for step in range(30):
        frm, to = rng.sample(NEIGHBORS, 2)
        # step 1-2 of §4.1: flip the filter toward the migration direction
        for table in (counting, scan):
            table.add_broker_filter(to, key, f)
        assert_tables_agree(counting, scan, rng, 8, 10_000 + step * 100)
        for table in (counting, scan):
            assert table.remove_broker_filter(to, key)
        # label flip: entry accepts only events arriving from `frm`
        label = rng.choice([None, frm, to])
        for table in (counting, scan):
            table.get_entry_by_key(key).label = label
        assert_tables_agree(counting, scan, rng, 8, 20_000 + step * 100)
        # transit-style replacement: remove + re-add under the same key
        label = rng.choice([None, frm])
        for table in (counting, scan):
            table.remove_entry_by_key(key)
            table.set_client_entry(ClientEntry(7, key, f, label=label))
        assert_tables_agree(counting, scan, rng, 8, 30_000 + step * 100)


@pytest.mark.parametrize("protocol", ["mhh", "sub-unsub"])
def test_differential_end_to_end_sim(protocol):
    """Whole-system determinism: both engines produce identical outcomes."""
    results = {}
    for mode in ("counting", "scan"):
        system = PubSubSystem(
            grid_k=3, protocol=protocol, seed=11, matching_engine=mode
        )
        sub = system.add_client(RangeFilter(0.0, 0.6), broker=0, mobile=True)
        pub = system.add_client(RangeFilter(2.0, 2.0), broker=8)
        sub.connect(0)
        pub.connect(8)
        system.run(until=2000.0)
        for i in range(6):
            pub.publish(topic=i / 10.0)
        system.run(until=4000.0)
        sub.disconnect()
        system.run(until=4500.0)
        for i in range(6):
            pub.publish(topic=i / 10.0)
        sub.connect(4)
        system.sim.run()
        stats = system.metrics.delivery.stats
        results[mode] = (
            stats.delivered,
            stats.duplicates,
            stats.order_violations,
            stats.missing,
            system.metrics.traffic.overhead_hops(),
        )
    assert results["counting"] == results["scan"]


# ---------------------------------------------------------------------------
# engine unit behaviour
# ---------------------------------------------------------------------------
def ev(topic, **attrs):
    return Notification(0, 0, 0, 0.0, topic, attrs or None)


def test_engine_empty_conjunction_always_matches():
    eng = CountingMatchingEngine()
    eng.add("all", ConjunctionFilter([]))
    assert eng.match(ev(0.5)) == ["all"]
    eng.discard("all")
    assert eng.match(ev(0.5)) == []


def test_engine_replace_and_discard():
    eng = CountingMatchingEngine()
    eng.add("s", RangeFilter(0.0, 0.4))
    assert eng.match(ev(0.2)) == ["s"]
    eng.add("s", RangeFilter(0.6, 0.9))  # replace
    assert eng.match(ev(0.2)) == []
    assert eng.match(ev(0.7)) == ["s"]
    assert "s" in eng and len(eng) == 1
    eng.discard("s")
    eng.discard("s")  # idempotent
    assert eng.match(ev(0.7)) == []


def test_engine_counting_requires_all_constraints():
    eng = CountingMatchingEngine()
    eng.add(
        "s",
        ConjunctionFilter(
            [
                AttributeConstraint("kind", Op.EQ, "alert"),
                AttributeConstraint("size", Op.GE, 10),
                AttributeConstraint("topic", Op.RANGE, (0.0, 0.5)),
            ]
        ),
    )
    assert eng.match(ev(0.3, kind="alert", size=12)) == ["s"]
    assert eng.match(ev(0.3, kind="alert", size=9)) == []
    assert eng.match(ev(0.3, size=12)) == []
    assert eng.match(ev(0.9, kind="alert", size=12)) == []


def test_engine_duplicate_constraints_in_one_filter():
    c = AttributeConstraint("kind", Op.EQ, "x")
    eng = CountingMatchingEngine()
    eng.add("s", ConjunctionFilter([c, c]))
    assert eng.match(ev(0.0, kind="x")) == ["s"]


def test_engine_groups_boolean_semantics():
    eng = CountingMatchingEngine()
    eng.add_group_member("g1", "a", RangeFilter(0.0, 0.3))
    eng.add_group_member("g1", "b", RangeFilter(0.5, 0.8))
    eng.add_group_member(
        "g2", "c", ConjunctionFilter([AttributeConstraint("kind", Op.EQ, "x")])
    )
    slots, groups = eng.match_with_groups(ev(0.6))
    assert slots == [] and groups == {"g1"}
    slots, groups = eng.match_with_groups(ev(0.4, kind="x"))
    assert groups == {"g2"}
    eng.discard_group_member("g1", "b")
    assert eng.match_with_groups(ev(0.6))[1] == set()
    assert eng.group_size("g1") == 1 and eng.group_size("g2") == 1


def test_engine_shared_constraints_across_slots():
    f = ConjunctionFilter([AttributeConstraint("kind", Op.EQ, "x")])
    eng = CountingMatchingEngine()
    eng.add("s1", f)
    eng.add("s2", ConjunctionFilter([AttributeConstraint("kind", Op.EQ, "x")]))
    assert sorted(eng.match(ev(0.0, kind="x"))) == ["s1", "s2"]
    eng.discard("s1")
    assert eng.match(ev(0.0, kind="x")) == ["s2"]
