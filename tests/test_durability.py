"""End-to-end durability: zero write-offs, handover, driver parity.

The tentpole's acceptance battery:

* **Zero write-off** — with ``durable=True`` a crash, restart or overlay
  partition costs no deliveries: ``crash_lost == shed == 0`` alongside
  the reliability lane's ``missing == lost == 0``, across the fuzzer's
  seeded scenario space and hand-picked worst cases (permanent broker
  death with sessions anchored there).
* **Session handover** — when a client's durable session was anchored at
  a broker declared permanently dead, the repair round hands the unacked
  window to the new home broker (counted in
  ``DurabilityManager.handovers``) instead of exhausting retries against
  the corpse — durable runs never trip a breaker.
* **Opt-in byte-identity** — default-off configs construct no durability
  state at all, and durable runs are trace-identical across sim engines
  and across the simulated/live drivers.
* **Stale-timer regression** (satellite) — a retransmit timer armed
  mid-backoff against a broker that then dies permanently must be
  cancelled by the crash sweep, never fire into the repaired overlay
  (``ReliabilityManager.stale_timer_fires`` pinned at 0).
"""

from __future__ import annotations

import pytest

from repro.conformance.fuzzer import (
    ScenarioFuzzer,
    check_invariants,
    compare_outcomes,
    run_scenario,
)
from repro.conformance.scenarios import ENGINE_BUNDLES, Scenario
from repro.drivers.live import run_virtual_scenario
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_system, drain_to_quiescence
from repro.network.faults import FaultProfile
from repro.network.recovery import CrashPlan
from repro.pubsub.system import PubSubSystem
from repro.pubsub.wal import decode_records
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(
    clients_per_broker=3,
    mobile_fraction=0.5,
    mean_connected_s=10.0,
    mean_disconnected_s=5.0,
    publish_interval_s=15.0,
    duration_s=120.0,
)

LOSSY = FaultProfile(deliver_loss=0.2, deliver_duplicate=0.05)


def _dur_cfg(protocol="mhh", seed=7, crashes=None, **kw):
    return ExperimentConfig(
        protocol=protocol, grid_k=3, seed=seed, workload=SPEC,
        faults=LOSSY, reliable=True, durable=True, crashes=crashes, **kw,
    )


def _run_simulated(cfg):
    system, workload = build_system(cfg)
    system.metrics.delivery.record_log = True
    system.run(until=cfg.workload.duration_ms)
    workload.stop()
    drain_to_quiescence(system, workload)
    return system


def _assert_zero_write_off(system):
    st = system.metrics.delivery.stats
    assert st.missing == 0
    assert st.lost_explicit == 0
    assert st.crash_lost == 0
    assert st.shed == 0
    assert st.write_offs == 0
    assert system.metrics.traffic.total_breaker_trips() == 0


# ---------------------------------------------------------------------------
# construction / gating
# ---------------------------------------------------------------------------
def test_default_config_builds_no_durability():
    cfg = ExperimentConfig(protocol="mhh", grid_k=3, seed=7, workload=SPEC)
    system, _ = build_system(cfg)
    assert system.durability is None
    rel_only, _ = build_system(
        ExperimentConfig(protocol="mhh", grid_k=3, seed=7, workload=SPEC,
                         reliable=True)
    )
    assert rel_only.durability is None


def test_wal_dir_requires_durable():
    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=3, protocol="mhh", seed=1, wal_dir="/tmp/x")


def test_durable_run_logs_and_checkpoints():
    system = _run_simulated(_dur_cfg())
    dur = system.durability
    assert dur is not None
    assert dur.records_appended > 0
    assert dur.store.name == "memory"
    _assert_zero_write_off(system)


# ---------------------------------------------------------------------------
# zero write-off under every failure shape
# ---------------------------------------------------------------------------
def test_crash_and_restart_loses_nothing():
    cfg = _dur_cfg(crashes=CrashPlan.parse(crashes=["1@60"],
                                           restarts=["1@90"]))
    system = _run_simulated(cfg)
    assert system.recovery.repairs == 2
    _assert_zero_write_off(system)


def test_permanent_death_hands_sessions_over():
    cfg = _dur_cfg(seed=11, crashes=CrashPlan.parse(crashes=["4@60"]))
    system = _run_simulated(cfg)
    _assert_zero_write_off(system)
    # broker 4 never comes back: any session anchored there must have been
    # re-homed by the repair round, and nothing retried against the corpse
    dur = system.durability
    assert all(s.anchor != 4 for s in dur.sessions.values())
    assert system.reliability.stale_timer_fires == 0


def test_partition_loses_nothing():
    cfg = _dur_cfg(crashes=CrashPlan.parse(partitions=["0-1@60"]))
    system = _run_simulated(cfg)
    _assert_zero_write_off(system)


@pytest.mark.parametrize("protocol", ["mhh", "sub-unsub", "two-phase"])
def test_durable_lane_scenarios_conform(protocol):
    """One full fuzzer-lane scenario per reliable protocol."""
    scenario = Scenario.durable_from_seed(97, protocol)
    outcome = run_scenario(scenario)
    assert check_invariants(scenario, outcome) == []
    assert outcome.crash_lost == 0
    assert outcome.shed == 0


def test_durability_lane_batch_passes():
    report = ScenarioFuzzer(
        n_scenarios=3, master_seed=3, cross_engine=False,
        durability_lane=True,
    ).run()
    assert report.passed, [r.violations for r in report.failures]
    assert all(r.durability_lane for r in report.results)
    assert "--durability-lane" in report.results[0].replay_command()


# ---------------------------------------------------------------------------
# determinism: engines and drivers
# ---------------------------------------------------------------------------
def test_durable_run_identical_across_engines():
    scenario = Scenario.durable_from_seed(41)
    primary = run_scenario(scenario, *ENGINE_BUNDLES[0])
    legacy = run_scenario(scenario, *ENGINE_BUNDLES[1])
    assert check_invariants(scenario, primary) == []
    assert compare_outcomes(primary, legacy) == []


def test_durable_run_identical_across_drivers():
    cfg = _dur_cfg(crashes=CrashPlan.parse(crashes=["1@60"],
                                           restarts=["1@90"]))
    sim = _run_simulated(cfg)
    live = run_virtual_scenario(cfg)
    assert sim.metrics.delivery.log == live.metrics.delivery.log
    assert (sim.durability.records_appended
            == live.durability.records_appended)
    assert sim.durability.handovers == live.durability.handovers
    _assert_zero_write_off(live)


def test_virtual_driver_writes_real_wal_files(tmp_path):
    cfg = _dur_cfg(wal_dir=str(tmp_path),
                   crashes=CrashPlan.parse(crashes=["1@60"],
                                           restarts=["1@90"]))
    system = run_virtual_scenario(cfg)
    _assert_zero_write_off(system)
    assert system.durability.store.name == "file"
    wal_files = sorted(tmp_path.glob("b*/seg*.wal"))
    assert wal_files, "no WAL segments written to --wal-dir"
    for path in wal_files:
        _, torn = decode_records(path.read_bytes())
        assert torn == 0


# ---------------------------------------------------------------------------
# satellite: the stale retransmit-timer regression
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [7, 11, 23])
def test_no_stale_timer_fires_after_permanent_death(seed):
    """A timer armed mid-backoff against a broker later declared dead must
    be cancelled by the crash sweep (epoch bump), not fire into the
    repaired generation. Reliability-only (no WAL): the fix is in the
    crash path itself."""
    cfg = ExperimentConfig(
        protocol="mhh", grid_k=3, seed=seed, workload=SPEC,
        faults=FaultProfile(deliver_loss=0.3), reliable=True,
        crashes=CrashPlan.parse(crashes=["1@50"]),
    )
    system = _run_simulated(cfg)
    assert system.reliability.stale_timer_fires == 0
    st = system.metrics.delivery.stats
    assert st.missing == 0


def test_no_stale_timer_fires_across_fuzzer_seeds():
    report = ScenarioFuzzer(
        n_scenarios=3, master_seed=5, cross_engine=False,
        reliability_lane=True, crash_lane=True,
    ).run()
    assert report.passed, [r.violations for r in report.failures]
