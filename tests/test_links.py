"""Unit tests for the link layer: latency, FIFO, accounting, wireless."""

import pytest

from repro.errors import RoutingError
from repro.network.links import LinkLayer
from repro.network.paths import ShortestPaths
from repro.network.topology import grid_topology
from repro.sim.core import Simulator


class Msg:
    category = "test"

    def __init__(self, tag):
        self.tag = tag


def make_links(k=3):
    sim = Simulator()
    topo = grid_topology(k)
    hops_log = []

    def account(category, hops, wireless):
        hops_log.append((category, hops, wireless))

    links = LinkLayer(sim, topo, ShortestPaths(topo), account=account)
    return sim, links, hops_log


def test_broker_hop_latency_and_accounting():
    sim, links, log = make_links()
    got = []
    links.register_broker(0, lambda m, f: got.append((m.tag, f, sim.now)))
    links.register_broker(1, lambda m, f: got.append((m.tag, f, sim.now)))
    links.broker_to_broker(1, 0, Msg("a"))
    sim.run()
    assert got == [("a", 1, 10.0)]
    assert log == [("test", 1, False)]


def test_broker_to_broker_requires_adjacency():
    sim, links, _ = make_links()
    links.register_broker(0, lambda m, f: None)
    with pytest.raises(RoutingError):
        links.broker_to_broker(0, 8, Msg("x"))  # corners of 3x3 not adjacent


def test_unicast_latency_is_hops_times_latency():
    sim, links, log = make_links()
    got = []
    links.register_broker(8, lambda m, f: got.append(sim.now))
    links.register_broker(0, lambda m, f: None)
    links.unicast(0, 8, Msg("x"))  # manhattan distance 4
    sim.run()
    assert got == [40.0]
    assert log == [("test", 4, False)]


def test_unicast_to_self_zero_cost():
    sim, links, log = make_links()
    got = []
    links.register_broker(5, lambda m, f: got.append(sim.now))
    links.unicast(5, 5, Msg("x"))
    sim.run()
    assert got == [0.0]
    assert log == []


def test_link_fifo_order_preserved():
    sim, links, _ = make_links()
    got = []
    links.register_broker(1, lambda m, f: got.append(m.tag))
    links.register_broker(0, lambda m, f: None)
    for i in range(20):
        links.broker_to_broker(0, 1, Msg(i))
    sim.run()
    assert got == list(range(20))


def test_unicast_fifo_between_same_pair():
    sim, links, _ = make_links()
    got = []
    links.register_broker(8, lambda m, f: got.append(m.tag))
    for i in range(10):
        links.unicast(0, 8, Msg(i))
    sim.run()
    assert got == list(range(10))


def test_wireless_downlink_serializes():
    sim, links, _ = make_links()
    got = []
    links.register_client(7, lambda m: got.append((m.tag, sim.now)))
    links.broker_to_client(7, Msg("a"))
    links.broker_to_client(7, Msg("b"))
    links.broker_to_client(7, Msg("c"))
    sim.run()
    assert got == [("a", 20.0), ("b", 40.0), ("c", 60.0)]


def test_wireless_uplink_reaches_broker():
    sim, links, _ = make_links()
    got = []
    links.register_client(3, lambda m: None)
    links.register_broker(4, lambda m, f: got.append((m.tag, f, sim.now)))
    links.client_to_broker(3, 4, Msg("up"))
    sim.run()
    # uplink sender id is encoded as -1 - client_id
    assert got == [("up", -4, 20.0)]


def test_cancel_downlink_pending_returns_queued_not_in_service():
    sim, links, _ = make_links()
    got = []
    links.register_client(2, lambda m: got.append(m.tag))
    links.broker_to_client(2, Msg("a"))
    links.broker_to_client(2, Msg("b"))
    links.broker_to_client(2, Msg("c"))
    sim.run(until=5.0)  # "a" is in service
    reclaimed = links.cancel_downlink_pending(2)
    assert [m.tag for m in reclaimed] == ["b", "c"]
    sim.run()
    assert got == ["a"]  # in-service message completed


def test_downlink_backlog_counts_in_service_and_queued():
    sim, links, _ = make_links()
    links.register_client(2, lambda m: None)
    links.broker_to_client(2, Msg("a"))
    links.broker_to_client(2, Msg("b"))
    sim.run(until=5.0)
    assert links.downlink_backlog(2) == 2
    sim.run(until=25.0)
    assert links.downlink_backlog(2) == 1
    sim.run()
    assert links.downlink_backlog(2) == 0


def test_wireless_channel_resumes_after_idle():
    sim, links, _ = make_links()
    got = []
    links.register_client(2, lambda m: got.append(sim.now))
    links.broker_to_client(2, Msg("a"))
    sim.run()
    assert got == [20.0]
    # channel idle; next send starts fresh
    links.broker_to_client(2, Msg("b"))
    sim.run()
    assert got == [20.0, 40.0]


def test_unknown_broker_raises():
    sim, links, _ = make_links()
    links.unicast(0, 1, Msg("x"))
    with pytest.raises(RoutingError):
        sim.run()


def test_wireless_accounting_tagged():
    sim, links, log = make_links()
    links.register_client(1, lambda m: None)
    links.broker_to_client(1, Msg("d"))
    sim.run()
    assert log == [("test", 1, True)]
