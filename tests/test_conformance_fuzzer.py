"""The conformance fuzzer: seed-determinism, replay, invariant detection."""

import dataclasses
import json

import pytest

from repro.conformance.fuzzer import (
    FuzzReport,
    ScenarioFuzzer,
    ScenarioOutcome,
    ScenarioResult,
    check_invariants,
    compare_outcomes,
    main,
    run_scenario,
)
from repro.conformance.scenarios import ENGINE_BUNDLES, PROTOCOLS, Scenario


def quick_seed(predicate, start=0):
    """First scenario seed whose sampled scenario satisfies ``predicate``
    (sampling is cheap — no simulation runs)."""
    for seed in range(start, start + 5000):
        if predicate(Scenario.from_seed(seed)):
            return seed
    raise AssertionError("no matching scenario seed found")


def small(s):
    return (
        s.grid_k == 2 and s.clients_per_broker == 3 and s.duration_s == 180.0
    )


# ---------------------------------------------------------------------------
# scenario sampling
# ---------------------------------------------------------------------------
def test_from_seed_is_deterministic():
    for seed in (0, 1, 12345, 2**31 - 1):
        assert Scenario.from_seed(seed) == Scenario.from_seed(seed)


def test_scenario_space_reaches_every_dimension():
    scenarios = [Scenario.from_seed(s) for s in range(300)]
    assert {s.protocol for s in scenarios} == set(PROTOCOLS)
    assert {s.mobility_model for s in scenarios} == {
        "uniform", "hotspot", "ping-pong", "trace"
    }
    assert any(s.faults.active for s in scenarios)
    assert any(not s.faults.active for s in scenarios)
    assert any(s.topic_skew > 0 for s in scenarios)


def test_label_carries_the_replay_seed():
    s = Scenario.from_seed(77)
    assert "seed=77" in s.label()
    assert s.protocol in s.label()


def test_scenario_seeds_derive_from_master_seed():
    a = ScenarioFuzzer(n_scenarios=10, master_seed=4).scenario_seeds()
    b = ScenarioFuzzer(n_scenarios=10, master_seed=4).scenario_seeds()
    c = ScenarioFuzzer(n_scenarios=10, master_seed=5).scenario_seeds()
    assert a == b != c
    assert len(set(a)) == 10


# ---------------------------------------------------------------------------
# replay determinism
# ---------------------------------------------------------------------------
def test_run_scenario_replays_byte_identically():
    seed = quick_seed(lambda s: small(s) and s.faults.active)
    scenario = Scenario.from_seed(seed)
    a = run_scenario(scenario, *ENGINE_BUNDLES[0])
    b = run_scenario(scenario, *ENGINE_BUNDLES[0])
    assert a == b
    assert a.delivery_log  # something actually happened


def test_fuzzer_run_one_passes_on_a_small_scenario():
    seed = quick_seed(lambda s: small(s) and s.protocol == "mhh")
    result = ScenarioFuzzer(cross_engine=True).run_one(seed)
    assert result.passed, result.violations


# ---------------------------------------------------------------------------
# invariant matrix detects violations
# ---------------------------------------------------------------------------
def outcome(**kw):
    base = dict(
        engine_bundle=ENGINE_BUNDLES[0],
        published=10,
        expected=20,
        delivered=20,
        duplicates=0,
        order_violations=0,
        lost=0,
        missing=0,
        handoffs=3,
        injected_drops=0,
        injected_dups=0,
        meter_drops=0,
        meter_dups=0,
        sim_events=1000,
    )
    base.update(kw)
    return ScenarioOutcome(**base)


def scenario_for(protocol):
    seed = quick_seed(lambda s: s.protocol == protocol)
    return Scenario.from_seed(seed)


def test_clean_outcome_is_conformant():
    assert check_invariants(scenario_for("mhh"), outcome()) == []


def test_missing_deliveries_flagged_for_every_protocol():
    for protocol in PROTOCOLS:
        v = check_invariants(scenario_for(protocol), outcome(missing=2))
        assert any("missing=2" in x for x in v)


def test_reliable_protocol_must_lose_exactly_the_link_drops():
    scenario = scenario_for("sub-unsub")
    v = check_invariants(
        scenario, outcome(lost=3, injected_drops=2, meter_drops=2)
    )
    assert any("lose exactly" in x for x in v)


def test_home_broker_may_lose_more_but_not_less_than_link_drops():
    scenario = scenario_for("home-broker")
    ok = outcome(lost=5, injected_drops=2, meter_drops=2, delivered=15,
                 missing=0)
    assert check_invariants(scenario, ok) == []
    v = check_invariants(
        scenario, outcome(lost=1, injected_drops=2, meter_drops=2)
    )
    assert any("escaped the accounting" in x for x in v)


def test_order_violations_flagged_only_for_reliable_protocols():
    bad = outcome(order_violations=1)
    assert any(
        "order" in x for x in check_invariants(scenario_for("two-phase"), bad)
    )
    assert check_invariants(scenario_for("home-broker"), bad) == []


def test_unexplained_duplicates_flagged():
    v = check_invariants(scenario_for("mhh"), outcome(duplicates=1))
    assert any("duplicates=1" in x for x in v)


def test_meter_ledger_must_match_injector():
    v = check_invariants(
        scenario_for("mhh"),
        outcome(lost=2, injected_drops=2, meter_drops=1),
    )
    assert any("meter drop ledger" in x for x in v)


def test_cross_engine_divergence_detected():
    a = outcome(delivery_log=((1, 2, 3.0), (4, 5, 6.0)))
    b = outcome(delivery_log=((1, 2, 3.0), (4, 5, 7.0)))
    v = compare_outcomes(a, b)
    assert any("delivery log diverged at entry 1" in x for x in v)
    v = compare_outcomes(outcome(), outcome(sim_events=999))
    assert any("sim_events diverged" in x for x in v)
    assert compare_outcomes(outcome(), outcome()) == []


# ---------------------------------------------------------------------------
# report + CLI
# ---------------------------------------------------------------------------
def test_report_round_trips_to_json(tmp_path):
    report = FuzzReport(
        master_seed=1,
        results=[
            ScenarioResult(5, "mhh", "seed=5 mhh k=2", []),
            ScenarioResult(6, "home-broker", "seed=6 home-broker k=3",
                           ["missing=1"]),
        ],
    )
    assert not report.passed
    assert [r.seed for r in report.failures] == [6]
    assert report.protocol_counts() == {"mhh": 1, "home-broker": 1}
    blob = json.dumps(report.as_dict())
    parsed = json.loads(blob)
    assert parsed["scenarios"][1]["replay"].endswith("--scenario-seed 6")


def test_cli_replays_single_scenario(tmp_path, capsys):
    seed = quick_seed(small)
    out = tmp_path / "fuzz.json"
    rc = main([
        "--scenario-seed", str(seed), "--no-cross-engine", "--out", str(out)
    ])
    captured = capsys.readouterr().out
    assert rc == 0
    assert f"PASS seed={seed}" in captured
    parsed = json.loads(out.read_text())
    assert parsed["passed"] is True
    assert parsed["scenarios"][0]["seed"] == seed


# ---------------------------------------------------------------------------
# reliability lane
# ---------------------------------------------------------------------------
def test_reliability_lane_is_deterministic_and_forces_loss():
    for seed in (1, 99, 12345):
        a = Scenario.reliability_from_seed(seed)
        assert a == Scenario.reliability_from_seed(seed)
        assert a.reliable
        assert a.faults.deliver_loss in (0.05, 0.1, 0.2)
        assert not a.crashes.active
        # the lane layers on top of the base scenario without perturbing
        # its draw order: everything but the fault/reliability knobs is
        # the plain-lane scenario, byte for byte
        base = Scenario.from_seed(seed)
        assert dataclasses.replace(
            a, faults=base.faults, reliable=False, retry_budget=8,
            queue_cap=None,
        ) == base


def test_reliability_lane_composes_with_the_crash_lane():
    s = Scenario.reliability_from_seed(7, "mhh", crash=True)
    assert s.reliable
    assert s.protocol == "mhh"
    assert s.crashes.active
    # unlike the plain crash lane, links stay lossy: the only permitted
    # write-offs are crash_lost and shed, which check_invariants asserts
    assert s.faults.active


def rel_scenario(protocol="mhh", **kw):
    return Scenario.reliability_from_seed(5, protocol, **kw)


def test_reliable_run_must_recover_every_link_loss():
    v = check_invariants(
        rel_scenario(), outcome(lost=2, injected_drops=2, meter_drops=2)
    )
    assert any("must recover" in x for x in v)
    clean = outcome(injected_drops=2, meter_drops=2, recovered=2)
    assert check_invariants(rel_scenario(), clean) == []


def test_reliability_decouples_the_duplicate_count():
    # retransmits add duplicates the injector never made (and reassembly
    # may absorb injected copies): neither direction is a violation
    extra = outcome(duplicates=5, injected_dups=2, meter_dups=2)
    fewer = outcome(duplicates=1, injected_dups=2, meter_dups=2)
    assert check_invariants(rel_scenario(), extra) == []
    assert check_invariants(rel_scenario(), fewer) == []


def test_phantom_recoveries_flagged():
    v = check_invariants(rel_scenario(), outcome(recovered=3))
    assert any("recoveries without matching drops" in x for x in v)


def test_shed_without_cap_or_crash_flagged():
    scenario = rel_scenario()
    assert scenario.queue_cap is None  # seed 5 draws no cap
    v = check_invariants(scenario, outcome(shed=1))
    assert any("shed policy" in x for x in v)
    capped = dataclasses.replace(scenario, queue_cap=32)
    assert check_invariants(capped, outcome(shed=1)) == []


def test_reliability_machinery_must_stay_dark_when_off():
    v = check_invariants(scenario_for("mhh"), outcome(retransmits=4))
    assert any("machinery fired" in x for x in v)


def test_reliability_lane_replay_command_carries_the_flags():
    r = ScenarioResult(9, "mhh", "seed=9", [], reliability_lane=True,
                       forced_protocol="mhh")
    assert r.replay_command() == (
        "python -m repro.conformance.fuzzer --scenario-seed 9 "
        "--reliability-lane --protocol mhh"
    )
