"""Unit + property tests for the interval index (stab and containment).

The index maintains its sorted arrays incrementally by default; every test
here also runs against ``IntervalIndex(incremental=False)`` (the legacy
rebuild-per-mutation oracle) via the differential tests at the bottom.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.pubsub.interval_index import IntervalIndex


def test_stab_hits_and_misses():
    idx = IntervalIndex()
    idx.add("a", 0.1, 0.4)
    idx.add("b", 0.3, 0.9)
    assert idx.stab(0.35)
    assert idx.stab(0.1)
    assert idx.stab(0.9)
    assert not idx.stab(0.05)
    assert not idx.stab(0.95)


def test_empty_index():
    idx = IntervalIndex()
    assert not idx.stab(0.5)
    assert not idx.contains_interval(0.1, 0.2)
    assert len(idx) == 0


def test_remove_and_discard():
    idx = IntervalIndex()
    idx.add("a", 0.0, 1.0)
    assert idx.stab(0.5)
    idx.remove("a")
    assert not idx.stab(0.5)
    idx.discard("a")  # absent: no error
    idx.add("b", 0.2, 0.4)
    idx.discard("b")
    assert not idx.stab(0.3)


def test_replace_same_key():
    idx = IntervalIndex()
    idx.add("a", 0.0, 0.1)
    idx.add("a", 0.5, 0.6)
    assert not idx.stab(0.05)
    assert idx.stab(0.55)
    assert len(idx) == 1


def test_contains_interval():
    idx = IntervalIndex()
    idx.add("a", 0.1, 0.5)
    assert idx.contains_interval(0.2, 0.4)
    assert idx.contains_interval(0.1, 0.5)
    assert not idx.contains_interval(0.05, 0.3)
    assert not idx.contains_interval(0.2, 0.6)


def test_contains_interval_exclude_self():
    idx = IntervalIndex()
    idx.add("a", 0.1, 0.5)
    assert not idx.contains_interval(0.1, 0.5, exclude="a")
    idx.add("b", 0.0, 0.9)
    assert idx.contains_interval(0.1, 0.5, exclude="a")


def test_contains_interval_exclude_with_equal_intervals():
    idx = IntervalIndex()
    idx.add("a", 0.2, 0.4)
    idx.add("b", 0.2, 0.4)
    assert idx.contains_interval(0.2, 0.4, exclude="a")
    assert idx.contains_interval(0.2, 0.4, exclude="b")


def test_stabbing_keys():
    idx = IntervalIndex()
    idx.add("a", 0.0, 0.5)
    idx.add("b", 0.4, 0.9)
    assert set(idx.stabbing_keys(0.45)) == {"a", "b"}
    assert idx.stabbing_keys(0.95) == []


def test_mutation_after_query_rebuilds():
    idx = IntervalIndex()
    idx.add("a", 0.0, 0.2)
    assert idx.stab(0.1)
    idx.add("b", 0.6, 0.8)
    assert idx.stab(0.7)  # rebuilt lazily


interval_sets = st.lists(
    st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
    min_size=0, max_size=30,
)


@settings(max_examples=200, deadline=None)
@given(raw=interval_sets, x=st.floats(0, 1, allow_nan=False))
def test_property_stab_matches_bruteforce(raw, x):
    idx = IntervalIndex()
    items = []
    for i, (a, b) in enumerate(raw):
        lo, hi = min(a, b), max(a, b)
        idx.add(i, lo, hi)
        items.append((lo, hi))
    expect = any(lo <= x <= hi for lo, hi in items)
    assert idx.stab(x) == expect


@settings(max_examples=200, deadline=None)
@given(
    raw=interval_sets,
    q=st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
    exclude=st.one_of(st.none(), st.integers(0, 29)),
)
def test_property_containment_matches_bruteforce(raw, q, exclude):
    idx = IntervalIndex()
    items = {}
    for i, (a, b) in enumerate(raw):
        lo, hi = min(a, b), max(a, b)
        idx.add(i, lo, hi)
        items[i] = (lo, hi)
    qlo, qhi = min(q), max(q)
    expect = any(
        lo <= qlo and qhi <= hi
        for key, (lo, hi) in items.items()
        if key != exclude
    )
    assert idx.contains_interval(qlo, qhi, exclude=exclude) == expect


@settings(max_examples=100, deadline=None)
@given(raw=interval_sets, x=st.floats(0, 1, allow_nan=False), data=st.data())
def test_property_removal_consistency(raw, x, data):
    idx = IntervalIndex()
    items = {}
    for i, (a, b) in enumerate(raw):
        lo, hi = min(a, b), max(a, b)
        idx.add(i, lo, hi)
        items[i] = (lo, hi)
    if items:
        victim = data.draw(st.sampled_from(sorted(items)))
        idx.remove(victim)
        del items[victim]
    expect = any(lo <= x <= hi for lo, hi in items.values())
    assert idx.stab(x) == expect


# ---------------------------------------------------------------------------
# incremental maintenance vs the rebuild-from-scratch oracle
# ---------------------------------------------------------------------------
def test_incremental_mutation_between_queries():
    """Mutations after the arrays are built repair them in place."""
    idx = IntervalIndex()
    idx.add("a", 0.0, 0.2)
    assert idx.stab(0.1)          # arrays built here
    idx.add("b", 0.6, 0.8)        # incremental insert
    assert idx.stab(0.7)
    idx.add("a", 0.3, 0.4)        # incremental replace
    assert not idx.stab(0.1) and idx.stab(0.35)
    idx.remove("b")               # incremental delete
    assert not idx.stab(0.7)
    assert sorted(idx.items()) == [("a", (0.3, 0.4))]


def test_incremental_ties_on_hi_keep_exclusion_exact():
    """Equal-hi intervals: whichever is the stored max, exclusion works."""
    idx = IntervalIndex()
    idx.add("a", 0.1, 0.9)
    assert idx.stab(0.5)
    idx.add("b", 0.2, 0.9)        # tie on hi after arrays exist
    assert idx.contains_interval(0.3, 0.9, exclude="a")
    assert idx.contains_interval(0.3, 0.9, exclude="b")
    idx.remove("b")
    assert not idx.contains_interval(0.3, 0.9, exclude="a")


def test_contained_keys_enumeration():
    idx = IntervalIndex()
    idx.add("in1", 0.2, 0.3)
    idx.add("in2", 0.25, 0.4)
    idx.add("straddle", 0.1, 0.35)
    idx.add("outside", 0.5, 0.6)
    assert sorted(idx.contained_keys(0.2, 0.4)) == ["in1", "in2"]
    assert idx.contained_keys(0.9, 1.0) == []


def contained_bruteforce(items, lo, hi):
    return sorted(k for k, (l, h) in items.items() if lo <= l and h <= hi)


@pytest.mark.parametrize("seed", range(8))
def test_differential_incremental_vs_rebuild(seed):
    """Randomized churn: every query identical to the rebuild oracle (and
    to brute force), after every mutation."""
    rnd = random.Random(seed)
    inc = IntervalIndex()
    oracle = IntervalIndex(incremental=False)
    items = {}
    for step in range(400):
        roll = rnd.random()
        if roll < 0.5 or not items:
            k = rnd.randrange(30)
            a, b = sorted((rnd.uniform(0, 1), rnd.uniform(0, 1)))
            inc.add(k, a, b)
            oracle.add(k, a, b)
            items[k] = (a, b)
        elif roll < 0.75:
            k = rnd.choice(list(items))
            inc.remove(k)
            oracle.remove(k)
            del items[k]
        else:
            k = rnd.randrange(40)
            inc.discard(k)
            oracle.discard(k)
            items.pop(k, None)
        if rnd.random() < 0.6:
            x = rnd.uniform(-0.2, 1.2)
            brute = any(lo <= x <= hi for lo, hi in items.values())
            assert inc.stab(x) == oracle.stab(x) == brute, (seed, step)
            stabbed = sorted(
                k for k, (lo, hi) in items.items() if lo <= x <= hi
            )
            assert sorted(inc.stab_all(x)) == sorted(oracle.stab_all(x)) \
                == stabbed, (seed, step)
            a, b = sorted((rnd.uniform(0, 1), rnd.uniform(0, 1)))
            for excl in (None, rnd.randrange(30)):
                brute_c = any(
                    lo <= a and b <= hi
                    for k, (lo, hi) in items.items() if k != excl
                )
                assert inc.contains_interval(a, b, excl) \
                    == oracle.contains_interval(a, b, excl) == brute_c, \
                    (seed, step, excl)
            assert sorted(inc.contained_keys(a, b)) \
                == sorted(oracle.contained_keys(a, b)) \
                == contained_bruteforce(items, a, b), (seed, step)
            assert sorted(inc.items()) == sorted(oracle.items()) \
                == sorted(items.items())
