"""Unit + property tests for the interval index (stab and containment)."""

from hypothesis import given, settings, strategies as st

from repro.pubsub.interval_index import IntervalIndex


def test_stab_hits_and_misses():
    idx = IntervalIndex()
    idx.add("a", 0.1, 0.4)
    idx.add("b", 0.3, 0.9)
    assert idx.stab(0.35)
    assert idx.stab(0.1)
    assert idx.stab(0.9)
    assert not idx.stab(0.05)
    assert not idx.stab(0.95)


def test_empty_index():
    idx = IntervalIndex()
    assert not idx.stab(0.5)
    assert not idx.contains_interval(0.1, 0.2)
    assert len(idx) == 0


def test_remove_and_discard():
    idx = IntervalIndex()
    idx.add("a", 0.0, 1.0)
    assert idx.stab(0.5)
    idx.remove("a")
    assert not idx.stab(0.5)
    idx.discard("a")  # absent: no error
    idx.add("b", 0.2, 0.4)
    idx.discard("b")
    assert not idx.stab(0.3)


def test_replace_same_key():
    idx = IntervalIndex()
    idx.add("a", 0.0, 0.1)
    idx.add("a", 0.5, 0.6)
    assert not idx.stab(0.05)
    assert idx.stab(0.55)
    assert len(idx) == 1


def test_contains_interval():
    idx = IntervalIndex()
    idx.add("a", 0.1, 0.5)
    assert idx.contains_interval(0.2, 0.4)
    assert idx.contains_interval(0.1, 0.5)
    assert not idx.contains_interval(0.05, 0.3)
    assert not idx.contains_interval(0.2, 0.6)


def test_contains_interval_exclude_self():
    idx = IntervalIndex()
    idx.add("a", 0.1, 0.5)
    assert not idx.contains_interval(0.1, 0.5, exclude="a")
    idx.add("b", 0.0, 0.9)
    assert idx.contains_interval(0.1, 0.5, exclude="a")


def test_contains_interval_exclude_with_equal_intervals():
    idx = IntervalIndex()
    idx.add("a", 0.2, 0.4)
    idx.add("b", 0.2, 0.4)
    assert idx.contains_interval(0.2, 0.4, exclude="a")
    assert idx.contains_interval(0.2, 0.4, exclude="b")


def test_stabbing_keys():
    idx = IntervalIndex()
    idx.add("a", 0.0, 0.5)
    idx.add("b", 0.4, 0.9)
    assert set(idx.stabbing_keys(0.45)) == {"a", "b"}
    assert idx.stabbing_keys(0.95) == []


def test_mutation_after_query_rebuilds():
    idx = IntervalIndex()
    idx.add("a", 0.0, 0.2)
    assert idx.stab(0.1)
    idx.add("b", 0.6, 0.8)
    assert idx.stab(0.7)  # rebuilt lazily


interval_sets = st.lists(
    st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
    min_size=0, max_size=30,
)


@settings(max_examples=200, deadline=None)
@given(raw=interval_sets, x=st.floats(0, 1, allow_nan=False))
def test_property_stab_matches_bruteforce(raw, x):
    idx = IntervalIndex()
    items = []
    for i, (a, b) in enumerate(raw):
        lo, hi = min(a, b), max(a, b)
        idx.add(i, lo, hi)
        items.append((lo, hi))
    expect = any(lo <= x <= hi for lo, hi in items)
    assert idx.stab(x) == expect


@settings(max_examples=200, deadline=None)
@given(
    raw=interval_sets,
    q=st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
    exclude=st.one_of(st.none(), st.integers(0, 29)),
)
def test_property_containment_matches_bruteforce(raw, q, exclude):
    idx = IntervalIndex()
    items = {}
    for i, (a, b) in enumerate(raw):
        lo, hi = min(a, b), max(a, b)
        idx.add(i, lo, hi)
        items[i] = (lo, hi)
    qlo, qhi = min(q), max(q)
    expect = any(
        lo <= qlo and qhi <= hi
        for key, (lo, hi) in items.items()
        if key != exclude
    )
    assert idx.contains_interval(qlo, qhi, exclude=exclude) == expect


@settings(max_examples=100, deadline=None)
@given(raw=interval_sets, x=st.floats(0, 1, allow_nan=False), data=st.data())
def test_property_removal_consistency(raw, x, data):
    idx = IntervalIndex()
    items = {}
    for i, (a, b) in enumerate(raw):
        lo, hi = min(a, b), max(a, b)
        idx.add(i, lo, hi)
        items[i] = (lo, hi)
    if items:
        victim = data.draw(st.sampled_from(sorted(items)))
        idx.remove(victim)
        del items[victim]
    expect = any(lo <= x <= hi for lo, hi in items.values())
    assert idx.stab(x) == expect
