"""Unit + property tests for the MST overlay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.network.spanning_tree import SpanningTree, minimum_spanning_tree
from repro.network.topology import Topology, grid_topology


def test_tree_has_n_minus_1_edges():
    for k in [2, 4, 7]:
        t = minimum_spanning_tree(grid_topology(k), seed=0)
        assert sum(1 for _ in t.edges()) == k * k - 1


def test_tree_edges_are_topology_edges():
    topo = grid_topology(5)
    t = minimum_spanning_tree(topo, seed=3)
    for child, parent in t.edges():
        assert topo.has_edge(child, parent)


def test_deterministic_per_seed():
    a = minimum_spanning_tree(grid_topology(6), seed=9)
    b = minimum_spanning_tree(grid_topology(6), seed=9)
    assert a.parent == b.parent


def test_different_seeds_give_different_trees():
    a = minimum_spanning_tree(grid_topology(6), seed=1)
    b = minimum_spanning_tree(grid_topology(6), seed=2)
    assert a.parent != b.parent


def test_disconnected_rejected():
    topo = Topology(4, [(0, 1), (2, 3)])
    with pytest.raises(TopologyError):
        minimum_spanning_tree(topo, seed=0)


def test_weighted_mst_picks_light_edges():
    # triangle with one heavy edge: MST must avoid it
    topo = Topology(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
    t = minimum_spanning_tree(topo, seed=0)
    edges = {frozenset(e) for e in t.edges()}
    assert frozenset((0, 2)) not in edges


def test_matches_networkx_mst_weight():
    nx = pytest.importorskip("networkx")
    rngedges = [
        (0, 1, 4.0), (0, 2, 1.0), (1, 2, 2.0), (1, 3, 5.0),
        (2, 3, 8.0), (2, 4, 10.0), (3, 4, 2.0), (0, 4, 7.0),
    ]
    topo = Topology(5, rngedges)
    t = minimum_spanning_tree(topo, seed=0)
    our_weight = sum(topo.weight(u, v) for u, v in t.edges())
    g = nx.Graph()
    g.add_weighted_edges_from(rngedges)
    their_weight = sum(
        d["weight"] for *_uv, d in nx.minimum_spanning_tree(g).edges(data=True)
    )
    assert our_weight == pytest.approx(their_weight)


def test_path_endpoints_and_adjacency():
    t = minimum_spanning_tree(grid_topology(6), seed=4)
    path = t.path(0, 35)
    assert path[0] == 0 and path[-1] == 35
    adj = {u: set(t.neighbors(u)) for u in range(36)}
    for a, b in zip(path, path[1:]):
        assert b in adj[a]
    assert len(set(path)) == len(path)  # simple path


def test_distance_matches_path_length():
    t = minimum_spanning_tree(grid_topology(5), seed=2)
    for u, v in [(0, 24), (3, 17), (12, 12), (4, 20)]:
        assert t.distance(u, v) == len(t.path(u, v)) - 1


def test_next_hop_walks_the_path():
    t = minimum_spanning_tree(grid_topology(5), seed=2)
    path = t.path(2, 22)
    cur = 2
    walked = [cur]
    while cur != 22:
        cur = t.next_hop(cur, 22)
        walked.append(cur)
    assert walked == path


def test_next_hop_self():
    t = minimum_spanning_tree(grid_topology(3), seed=0)
    assert t.next_hop(4, 4) == 4


def test_diameter_bounds():
    k = 6
    t = minimum_spanning_tree(grid_topology(k), seed=1)
    d = t.diameter()
    assert 2 * (k - 1) <= d <= k * k - 1


def test_average_distance_positive_and_below_diameter():
    t = minimum_spanning_tree(grid_topology(5), seed=1)
    avg = t.average_distance()
    assert 0 < avg <= t.diameter()


def test_bad_parent_vector_rejected():
    with pytest.raises(TopologyError):
        SpanningTree([1, 0, -1], root=2)  # 0,1 form a detached cycle
    with pytest.raises(TopologyError):
        SpanningTree([0, 0, 1], root=0)  # root parent must be -1


@settings(max_examples=25, deadline=None)
@given(k=st.integers(min_value=2, max_value=7), seed=st.integers(0, 1000))
def test_property_tree_is_spanning_and_acyclic(k, seed):
    t = minimum_spanning_tree(grid_topology(k), seed=seed)
    n = k * k
    # connectivity: every node reaches the root by parent pointers, with no
    # cycles (bounded walk)
    for v in range(n):
        seen = set()
        cur = v
        while cur != t.root:
            assert cur not in seen
            seen.add(cur)
            cur = t.parent[cur]
            assert cur != -1


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=6),
    seed=st.integers(0, 50),
    data=st.data(),
)
def test_property_tree_distance_symmetric(k, seed, data):
    t = minimum_spanning_tree(grid_topology(k), seed=seed)
    n = k * k
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    assert t.distance(u, v) == t.distance(v, u)
    assert t.distance(u, v) >= (0 if u == v else 1)
