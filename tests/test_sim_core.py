"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SchedulingError
from repro.sim.core import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "mid")
    sim.run()
    assert fired == ["early", "mid", "late"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(50):
        sim.schedule(7.0, fired.append, i)
    sim.run()
    assert fired == list(range(50))


def test_zero_delay_event_fires_after_current_instant_fifo():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.0, fired.append, "inner")

    sim.schedule(1.0, outer)
    sim.schedule(1.0, fired.append, "sibling")
    sim.run()
    assert fired == ["outer", "sibling", "inner"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(4.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.5]
    assert sim.now == 4.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(30.0, fired.append, "b")
    sim.run(until=20.0)
    assert fired == ["a"]
    assert sim.now == 20.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=123.0)
    assert sim.now == 123.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-0.001, lambda: None)


def test_schedule_at_into_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_step_fires_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == [1, 2]


def test_peek_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_returns_none():
    assert Simulator().peek() is None


def test_events_processed_counts_only_fired():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    sim.run()
    assert sim.events_processed == 1


def test_callback_exception_propagates_and_run_is_reusable():
    sim = Simulator()

    def boom():
        raise ValueError("boom")

    sim.schedule(1.0, boom)
    sim.schedule(2.0, lambda: None)
    with pytest.raises(ValueError):
        sim.run()
    # the failing event was consumed; the rest still runs
    sim.run()
    assert sim.now == 2.0


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SchedulingError as e:
            errors.append(e)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_schedule_fifo_counts_and_introspects():
    sim = Simulator()
    fired = []
    sim.schedule_fifo(2.0, fired.append, "a")
    sim.schedule_fifo(2.0, fired.append, "b")
    sim.schedule_fifo(5.0, fired.append, "c")
    assert sim.pending == 3
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.events_processed == 3
    assert sim.pending == 0


def test_schedule_fifo_on_heap_engine_is_equivalent():
    sim = Simulator(engine="heap")
    fired = []
    sim.schedule_fifo(10.0, fired.append, "lane-style")
    sim.schedule(5.0, fired.append, "timer")
    sim.run()
    assert fired == ["timer", "lane-style"]
    assert sim.engine == "heap"


def test_peek_with_lane_ahead_of_cancelled_heap_event():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule_fifo(3.0, lambda: None)
    h.cancel()
    assert sim.peek() == 3.0


def test_callback_exception_from_lane_keeps_engine_consistent():
    sim = Simulator()
    fired = []

    def boom():
        raise ValueError("boom")

    sim.schedule_fifo(1.0, boom)
    sim.schedule_fifo(1.0, fired.append, "next")
    with pytest.raises(ValueError):
        sim.run()
    sim.run()
    assert fired == ["next"]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0
