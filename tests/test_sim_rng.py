"""Unit tests for named random streams."""

from repro.sim.rng import RandomStreams


def test_same_seed_same_stream_reproduces():
    a = RandomStreams(42).stream("x")
    b = RandomStreams(42).stream("x")
    assert [float(a.random()) for _ in range(5)] == [
        float(b.random()) for _ in range(5)
    ]


def test_different_names_are_independent():
    rs = RandomStreams(42)
    a = [float(rs.stream("a").random()) for _ in range(5)]
    b = [float(rs.stream("b").random()) for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert float(a.random()) != float(b.random())


def test_stream_is_cached():
    rs = RandomStreams(7)
    assert rs.stream("s") is rs.stream("s")


def test_draw_order_in_one_stream_does_not_affect_other():
    # consume lots of stream "a", then check "b" matches a fresh instance
    rs1 = RandomStreams(5)
    for _ in range(1000):
        rs1.stream("a").random()
    b1 = float(rs1.stream("b").random())
    rs2 = RandomStreams(5)
    b2 = float(rs2.stream("b").random())
    assert b1 == b2


def test_exponential_mean_roughly_correct():
    rs = RandomStreams(3)
    n = 4000
    total = sum(rs.exponential("e", 250.0) for _ in range(n))
    assert 220.0 < total / n < 280.0


def test_integers_in_range():
    rs = RandomStreams(3)
    draws = {rs.integers("i", 0, 4) for _ in range(200)}
    assert draws == {0, 1, 2, 3}


def test_uniform_in_range():
    rs = RandomStreams(3)
    for _ in range(100):
        x = rs.uniform("u", 2.0, 3.0)
        assert 2.0 <= x < 3.0
