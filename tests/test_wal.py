"""The write-ahead log: codec, stores, compaction, replay.

Satellite battery for the durability subsystem's storage layer:

* **Codec** — length+CRC32 framing round-trips literal-tuple records; a
  torn tail (short frame, bad checksum, unparseable payload) truncates to
  the last clean record instead of poisoning the replay.
* **Stores** — the in-memory (simulated driver) and file-backed (live
  driver) stores behave identically behind the :class:`LogStore` facade,
  including segment rolling and atomic compaction replace; the file store
  physically truncates torn tails on open, like a real recovery scan.
* **Replay idempotence** — applying every record twice yields exactly the
  state of applying it once (crash-during-replay is safe to restart).
* **Compaction safety** — a checkpoint never drops an unacked delivery or
  the event payload it needs: the property the zero-write-off lane rests
  on, driven here by randomized publish/deliver/ack/checkpoint schedules.
* **Replay oracle** — after a real durable end-to-end run, the state
  rebuilt purely from log bytes matches the independently maintained
  in-memory mirror (anchors and unacked windows exactly; delivery cursors
  up to acks whose settled events compaction already retired).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_system, drain_to_quiescence
from repro.metrics.delivery import DeliveryChecker
from repro.network.faults import FaultProfile
from repro.network.recovery import CrashPlan
from repro.pubsub.events import Notification
from repro.pubsub.wal import (
    DurabilityManager,
    FileLogStore,
    MemoryLogStore,
    decode_records,
    encode_record,
)
from repro.workload.spec import WorkloadSpec

# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------
RECORDS = [
    ("pub", 1, (7, 2, 0, 1500.0, 3.25, None)),
    ("dlv", 2, 11, 7),
    ("ack", 3, 11, 7),
    ("ses", 4, 11, 0.0, 4.5, (3, 7)),
    ("ses", 5, 12, None, None, ()),
]


def test_codec_round_trip():
    blob = b"".join(encode_record(r) for r in RECORDS)
    records, torn = decode_records(blob)
    assert records == RECORDS
    assert torn == 0


def test_decode_empty():
    assert decode_records(b"") == ([], 0)


@pytest.mark.parametrize("cut", [1, 4, 7, 11])
def test_torn_tail_truncates_to_clean_prefix(cut):
    """A mid-record crash leaves a partial frame; decode drops exactly it."""
    blob = b"".join(encode_record(r) for r in RECORDS)
    tail = encode_record(("dlv", 6, 99, 1234))
    torn_blob = blob + tail[:cut]
    records, torn = decode_records(torn_blob)
    assert records == RECORDS
    assert torn == cut


def test_corrupt_checksum_stops_decode():
    blob = bytearray(b"".join(encode_record(r) for r in RECORDS))
    # flip a payload byte of the third record: everything from there on is
    # untrusted, even the structurally intact records behind it
    offset = len(encode_record(RECORDS[0]) + encode_record(RECORDS[1])) + 10
    blob[offset] ^= 0xFF
    records, torn = decode_records(bytes(blob))
    assert records == RECORDS[:2]
    assert torn == len(blob) - len(
        encode_record(RECORDS[0]) + encode_record(RECORDS[1])
    )


def test_non_tuple_payload_is_torn():
    import struct
    import zlib

    good = encode_record(("pub", 1, (1, 0, 0, 0.0, 1.0, None)))
    payload = b"[1, 2, 3]"  # parses but is not a tuple
    framed = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
    records, torn = decode_records(good + framed)
    assert records == [("pub", 1, (1, 0, 0, 0.0, 1.0, None))]
    assert torn == len(framed)


# ---------------------------------------------------------------------------
# stores
# ---------------------------------------------------------------------------
def _fill(store, broker=0, n=10):
    recs = [("dlv", i, 5, i) for i in range(n)]
    for r in recs:
        store.append(broker, encode_record(r))
    return recs


def test_memory_store_rolls_segments():
    store = MemoryLogStore(segment_bytes=64)
    recs = _fill(store)
    segs = store.segments(0)
    assert len(segs) > 1
    decoded = []
    for seg in segs:
        got, torn = decode_records(seg)
        assert torn == 0
        decoded.extend(got)
    assert decoded == recs
    assert store.brokers() == [0]


def test_file_store_rolls_segments(tmp_path):
    store = FileLogStore(str(tmp_path), segment_bytes=64)
    recs = _fill(store)
    segs = store.segments(0)
    assert len(segs) > 1
    decoded = []
    for seg in segs:
        got, torn = decode_records(seg)
        assert torn == 0
        decoded.extend(got)
    assert decoded == recs
    assert store.brokers() == [0]


def test_memory_and_file_stores_are_equivalent(tmp_path):
    """Identical append/replace sequences yield identical segment images."""
    mem = MemoryLogStore(segment_bytes=96)
    fil = FileLogStore(str(tmp_path), segment_bytes=96)
    for store in (mem, fil):
        _fill(store, broker=0, n=12)
        _fill(store, broker=3, n=2)
        store.replace(3, encode_record(("ack", 99, 1, 1)))
    assert mem.brokers() == fil.brokers()
    for bid in mem.brokers():
        assert mem.segments(bid) == fil.segments(bid)


def test_file_store_truncates_torn_tail_on_open(tmp_path):
    """A real mid-record crash artifact is physically removed on reopen."""
    store = FileLogStore(str(tmp_path), segment_bytes=1 << 16)
    recs = _fill(store, n=4)
    # simulate the crash: raw garbage after the last clean record
    paths = store._segment_paths(0)
    assert len(paths) == 1
    with open(paths[0], "ab") as fh:
        fh.write(encode_record(("dlv", 77, 1, 1))[:9])
    reopened = FileLogStore(str(tmp_path), segment_bytes=1 << 16)
    segs = reopened.segments(0)
    records, torn = decode_records(segs[0])
    assert records == recs
    assert torn == 0  # the tail is gone from disk, not just skipped
    # appends continue cleanly after the truncated tail
    reopened.append(0, encode_record(("ack", 5, 5, 0)))
    records, torn = decode_records(reopened.segments(0)[0])
    assert records == recs + [("ack", 5, 5, 0)]
    assert torn == 0


def test_file_store_replace_is_atomic_swap(tmp_path):
    store = FileLogStore(str(tmp_path), segment_bytes=64)
    _fill(store, n=10)
    assert len(store._segment_paths(0)) > 1
    compacted = encode_record(("ses", 1, 4, None, None, ()))
    store.replace(0, compacted)
    paths = store._segment_paths(0)
    assert len(paths) == 1
    assert store.segments(0) == [compacted]
    assert not any(p.endswith(".tmp") for p in paths)


def test_file_store_close_removes_owned_scratch_dir(tmp_path):
    root = tmp_path / "scratch"
    store = FileLogStore(str(root), owns_dir=True)
    _fill(store, n=2)
    assert root.is_dir()
    store.close()
    assert not root.exists()
    keeper = FileLogStore(str(tmp_path / "kept"))
    _fill(keeper, n=2)
    keeper.close()
    assert (tmp_path / "kept").is_dir()


# ---------------------------------------------------------------------------
# manager-level: randomized schedules against a real delivery checker
# ---------------------------------------------------------------------------
class _Host:
    """Minimal system facade the DurabilityManager needs (unit scope)."""

    def __init__(self, checker: DeliveryChecker) -> None:
        self.clients: dict = {}
        self.brokers: dict = {}
        self.reliability = None

        class _M:
            pass

        self.metrics = _M()
        self.metrics.delivery = checker


def _drive(seed: int, store=None, checkpoint_every: int = 8):
    """One randomized publish/deliver/ack/checkpoint schedule."""
    rnd = random.Random(seed)
    checker = DeliveryChecker()
    clients = list(range(4))
    for cid in clients:
        checker.register_subscription(cid, 0.0, 10.0)
    dur = DurabilityManager(
        _Host(checker),
        store if store is not None else MemoryLogStore(segment_bytes=256),
        checkpoint_every=checkpoint_every,
    )
    events = []
    for step in range(rnd.randrange(20, 60)):
        op = rnd.choice(("pub", "pub", "dlv", "dlv", "ack", "ckpt"))
        if op == "pub":
            ev = Notification(
                len(events), rnd.randrange(2), len(events),
                float(step), rnd.uniform(0.0, 10.0), None,
            )
            events.append(ev)
            dur.on_publish(rnd.randrange(3), ev)
        elif op == "dlv" and events:
            dur.on_deliver(
                rnd.randrange(3), rnd.choice(clients), rnd.choice(events)
            )
        elif op == "ack" and events:
            cid = rnd.choice(clients)
            s = dur.sessions.get(cid)
            if s is not None and s.unacked:
                eid = rnd.choice(sorted(s.unacked))
                dur.on_settled(s.anchor, cid, s.unacked[eid])
        elif op == "ckpt":
            dur.checkpoint(rnd.randrange(3))
    return dur


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_compaction_never_drops_an_unacked_delivery(seed):
    """After arbitrary checkpoints, every unacked window survives replay
    with its event payload intact — the invariant zero-write-off needs."""
    dur = _drive(seed)
    for bid in (0, 1, 2):
        dur.checkpoint(bid)
    state = dur.replay()
    for cid, mirror in dur.sessions.items():
        replayed = state.sessions.get(cid)
        if mirror.unacked:
            assert replayed is not None
        if replayed is None:
            continue
        assert set(replayed.unacked) == set(mirror.unacked)
        for eid in mirror.unacked:
            assert eid in state.events
            assert state.events[eid].event_id == eid


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_replay_is_idempotent(seed):
    """Feeding the log twice reconstructs exactly the single-pass state:
    a crash mid-recovery can always restart the replay from scratch."""
    dur = _drive(seed)
    once = dur.replay()
    doubled = MemoryLogStore()
    for bid in dur.store.brokers():
        for seg in dur.store.segments(bid):
            doubled.append(bid, seg)
    for bid in dur.store.brokers():
        for seg in dur.store.segments(bid):
            doubled.append(bid, seg)
    dur2 = DurabilityManager(dur.system, doubled)
    twice = dur2.replay()
    assert sorted(once.events) == sorted(twice.events)
    assert {
        c: s.state_key() for c, s in once.sessions.items()
    } == {c: s.state_key() for c, s in twice.sessions.items()}


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_replay_matches_mirror_oracle_unit(seed):
    """Replay from log bytes == the independently maintained mirror."""
    dur = _drive(seed)
    state = dur.replay()
    assert sorted(state.events) == sorted(dur.events)
    for cid, mirror in dur.sessions.items():
        replayed = state.sessions.get(cid)
        if replayed is None:
            assert not mirror.unacked
            continue
        assert replayed.anchor == mirror.anchor
        assert replayed.lo == mirror.lo and replayed.hi == mirror.hi
        assert set(replayed.unacked) == set(mirror.unacked)
        # acks on events compaction already retired are allowed to age out
        # of the log; nothing else may diverge
        assert replayed.acked <= mirror.acked
        assert replayed.acked >= {
            e for e in mirror.acked if e in state.events
        }


# ---------------------------------------------------------------------------
# end-to-end replay oracle: a real durable run's log vs its mirror
# ---------------------------------------------------------------------------
_E2E = ExperimentConfig(
    protocol="mhh",
    grid_k=3,
    seed=11,
    workload=WorkloadSpec(
        clients_per_broker=3,
        mobile_fraction=0.5,
        mean_connected_s=10.0,
        mean_disconnected_s=5.0,
        publish_interval_s=15.0,
        duration_s=120.0,
    ),
    faults=FaultProfile(deliver_loss=0.1),
    crashes=CrashPlan.parse(crashes=["1@60"], restarts=["1@90"]),
    reliable=True,
    durable=True,
)


def test_replayed_state_matches_live_mirror_end_to_end():
    system, workload = build_system(_E2E)
    system.run(until=_E2E.workload.duration_ms)
    workload.stop()
    drain_to_quiescence(system, workload)
    dur = system.durability
    assert dur is not None
    assert dur.records_appended > 0
    state = dur.replay()
    assert state.torn_segments == 0
    assert sorted(state.events) == sorted(dur.events)
    for cid, mirror in dur.sessions.items():
        replayed = state.sessions.get(cid)
        if replayed is None:
            assert not mirror.unacked
            continue
        assert replayed.anchor == mirror.anchor
        assert set(replayed.unacked) == set(mirror.unacked)
        assert replayed.acked <= mirror.acked
        assert replayed.acked >= {
            e for e in mirror.acked if e in state.events
        }
