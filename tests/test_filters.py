"""Unit + property tests for the filter language."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FilterError
from repro.pubsub.events import Notification
from repro.pubsub.filters import (
    AttributeConstraint,
    ConjunctionFilter,
    Op,
    RangeFilter,
)


def ev(topic=0.0, **attrs):
    return Notification(0, 0, 0, 0.0, topic, attrs or None)


# ---------------------------------------------------------------------------
# RangeFilter
# ---------------------------------------------------------------------------
class TestRangeFilter:
    def test_matches_inside_and_boundaries(self):
        f = RangeFilter(0.2, 0.4)
        assert f.matches(ev(0.3))
        assert f.matches(ev(0.2))
        assert f.matches(ev(0.4))
        assert not f.matches(ev(0.1999))
        assert not f.matches(ev(0.4001))

    def test_point_range(self):
        f = RangeFilter(0.5, 0.5)
        assert f.matches(ev(0.5))
        assert not f.matches(ev(0.50001))

    def test_invalid_range_rejected(self):
        with pytest.raises(FilterError):
            RangeFilter(0.6, 0.4)

    def test_covers_nested(self):
        assert RangeFilter(0.1, 0.9).covers(RangeFilter(0.2, 0.8))
        assert RangeFilter(0.1, 0.9).covers(RangeFilter(0.1, 0.9))
        assert not RangeFilter(0.2, 0.8).covers(RangeFilter(0.1, 0.9))
        assert not RangeFilter(0.1, 0.5).covers(RangeFilter(0.4, 0.6))

    def test_covers_respects_attribute(self):
        assert not RangeFilter(0.0, 1.0).covers(
            RangeFilter(0.2, 0.3, attr="price")
        )

    def test_non_topic_attribute(self):
        f = RangeFilter(1.0, 5.0, attr="price")
        assert f.matches(ev(0.0, price=3))
        assert not f.matches(ev(0.0, price=9))
        assert not f.matches(ev(0.0))  # attribute absent

    def test_non_numeric_value_never_matches(self):
        f = RangeFilter(1.0, 5.0, attr="price")
        assert not f.matches(ev(0.0, price="three"))

    def test_identity_equality_and_hash(self):
        assert RangeFilter(0.1, 0.2) == RangeFilter(0.1, 0.2)
        assert hash(RangeFilter(0.1, 0.2)) == hash(RangeFilter(0.1, 0.2))
        assert RangeFilter(0.1, 0.2) != RangeFilter(0.1, 0.3)

    def test_as_range(self):
        assert RangeFilter(0.1, 0.2).as_range() == ("topic", 0.1, 0.2)

    def test_width(self):
        assert RangeFilter(0.25, 0.75).width == 0.5


# ---------------------------------------------------------------------------
# AttributeConstraint
# ---------------------------------------------------------------------------
class TestConstraints:
    @pytest.mark.parametrize(
        "op,value,good,bad",
        [
            (Op.EQ, 5, 5, 6),
            (Op.NE, 5, 6, 5),
            (Op.LT, 5, 4, 5),
            (Op.LE, 5, 5, 6),
            (Op.GT, 5, 6, 5),
            (Op.GE, 5, 5, 4),
            (Op.RANGE, (2, 4), 3, 5),
            (Op.PREFIX, "foo", "foobar", "barfoo"),
        ],
    )
    def test_ops(self, op, value, good, bad):
        c = AttributeConstraint("a", op, value)
        assert c.matches_value(good)
        assert not c.matches_value(bad)

    def test_exists(self):
        c = AttributeConstraint("a", Op.EXISTS)
        assert c.matches_value(0)
        assert c.matches_value("x")
        assert not c.matches_value(None)

    def test_missing_value_fails_non_exists(self):
        assert not AttributeConstraint("a", Op.EQ, 1).matches_value(None)

    def test_incomparable_types_do_not_match(self):
        assert not AttributeConstraint("a", Op.LT, 5).matches_value("abc")

    def test_range_requires_pair(self):
        with pytest.raises(FilterError):
            AttributeConstraint("a", Op.RANGE, 5)
        with pytest.raises(FilterError):
            AttributeConstraint("a", Op.RANGE, (5, 2))

    def test_prefix_requires_string(self):
        with pytest.raises(FilterError):
            AttributeConstraint("a", Op.PREFIX, 7)

    def test_empty_attr_rejected(self):
        with pytest.raises(FilterError):
            AttributeConstraint("", Op.EQ, 1)

    # implication --------------------------------------------------------
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ((Op.RANGE, (2, 4)), (Op.RANGE, (1, 5)), True),
            ((Op.RANGE, (1, 5)), (Op.RANGE, (2, 4)), False),
            ((Op.EQ, 3), (Op.RANGE, (1, 5)), True),
            ((Op.EQ, 7), (Op.RANGE, (1, 5)), False),
            ((Op.LT, 3), (Op.LT, 5), True),
            ((Op.LT, 5), (Op.LT, 3), False),
            ((Op.LT, 5), (Op.LE, 5), True),
            ((Op.LE, 5), (Op.LT, 5), False),
            ((Op.GT, 5), (Op.GE, 5), True),
            ((Op.GE, 5), (Op.GT, 5), False),
            ((Op.GT, 5), (Op.GT, 3), True),
            ((Op.EQ, 5), (Op.EXISTS, None), True),
            ((Op.PREFIX, "foobar"), (Op.PREFIX, "foo"), True),
            ((Op.PREFIX, "foo"), (Op.PREFIX, "foobar"), False),
            ((Op.NE, 3), (Op.NE, 3), True),
            ((Op.NE, 3), (Op.NE, 4), False),
        ],
    )
    def test_implies(self, a, b, expected):
        ca = AttributeConstraint("x", a[0], a[1])
        cb = AttributeConstraint("x", b[0], b[1])
        assert ca.implies(cb) is expected

    def test_implies_needs_same_attribute(self):
        a = AttributeConstraint("x", Op.EQ, 1)
        b = AttributeConstraint("y", Op.EXISTS)
        assert not a.implies(b)


# ---------------------------------------------------------------------------
# ConjunctionFilter
# ---------------------------------------------------------------------------
class TestConjunction:
    def test_all_constraints_must_hold(self):
        f = ConjunctionFilter([
            AttributeConstraint("topic", Op.RANGE, (0.0, 0.5)),
            AttributeConstraint("prio", Op.GE, 3),
        ])
        assert f.matches(ev(0.2, prio=5))
        assert not f.matches(ev(0.2, prio=1))
        assert not f.matches(ev(0.9, prio=5))

    def test_empty_conjunction_matches_everything(self):
        f = ConjunctionFilter([])
        assert f.matches(ev(0.123, anything=1))
        assert f.covers(RangeFilter(0.1, 0.2))

    def test_covers_conjunction(self):
        broad = ConjunctionFilter([
            AttributeConstraint("topic", Op.RANGE, (0.0, 0.8)),
        ])
        narrow = ConjunctionFilter([
            AttributeConstraint("topic", Op.RANGE, (0.2, 0.5)),
            AttributeConstraint("prio", Op.EQ, 1),
        ])
        assert broad.covers(narrow)
        assert not narrow.covers(broad)

    def test_covers_range_filter(self):
        conj = ConjunctionFilter([
            AttributeConstraint("topic", Op.RANGE, (0.0, 0.9)),
        ])
        assert conj.covers(RangeFilter(0.1, 0.5))
        assert not conj.covers(RangeFilter(0.1, 0.95))

    def test_range_filter_covers_conjunction(self):
        conj = ConjunctionFilter([
            AttributeConstraint("topic", Op.RANGE, (0.2, 0.3)),
            AttributeConstraint("prio", Op.EQ, 1),
        ])
        assert RangeFilter(0.1, 0.5).covers(conj)

    def test_as_range_single_closed_constraint(self):
        conj = ConjunctionFilter([
            AttributeConstraint("topic", Op.RANGE, (0.2, 0.3)),
        ])
        assert conj.as_range() == ("topic", 0.2, 0.3)

    def test_as_range_none_for_open_or_multi(self):
        assert ConjunctionFilter([
            AttributeConstraint("topic", Op.LT, 0.5),
        ]).as_range() is None
        assert ConjunctionFilter([
            AttributeConstraint("topic", Op.RANGE, (0.2, 0.3)),
            AttributeConstraint("prio", Op.EQ, 1),
        ]).as_range() is None

    def test_identity_is_order_insensitive(self):
        a = ConjunctionFilter([
            AttributeConstraint("x", Op.EQ, 1),
            AttributeConstraint("y", Op.EQ, 2),
        ])
        b = ConjunctionFilter([
            AttributeConstraint("y", Op.EQ, 2),
            AttributeConstraint("x", Op.EQ, 1),
        ])
        assert a == b
        assert hash(a) == hash(b)


# ---------------------------------------------------------------------------
# property tests: covering soundness (the routing-correctness requirement)
# ---------------------------------------------------------------------------
ranges = st.tuples(
    st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)
).map(lambda ab: RangeFilter(min(ab), max(ab)))


@settings(max_examples=200, deadline=None)
@given(f=ranges, g=ranges, x=st.floats(0, 1, allow_nan=False))
def test_property_covering_sound_for_ranges(f, g, x):
    """covers(f, g) and g matches x => f matches x."""
    if f.covers(g) and g.matches(ev(x)):
        assert f.matches(ev(x))


@settings(max_examples=200, deadline=None)
@given(f=ranges, g=ranges)
def test_property_covering_antisymmetry_up_to_equality(f, g):
    if f.covers(g) and g.covers(f):
        assert (f.lo, f.hi) == (g.lo, g.hi)


constraint_ops = st.sampled_from([Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE])


@settings(max_examples=300, deadline=None)
@given(
    op1=constraint_ops,
    v1=st.integers(-5, 5),
    op2=constraint_ops,
    v2=st.integers(-5, 5),
    x=st.integers(-10, 10),
)
def test_property_implication_sound(op1, v1, op2, v2, x):
    """c1 implies c2 and x satisfies c1 => x satisfies c2."""
    c1 = AttributeConstraint("a", op1, v1)
    c2 = AttributeConstraint("a", op2, v2)
    if c1.implies(c2) and c1.matches_value(x):
        assert c2.matches_value(x)
