"""Unit tests for the broker filter table."""

import pytest

from repro.errors import ProtocolError
from repro.pubsub.events import Notification
from repro.pubsub.filter_table import ClientEntry, FilterTable
from repro.pubsub.filters import ConjunctionFilter, AttributeConstraint, Op, RangeFilter


def ev(x):
    return Notification(0, 99, 0, 0.0, x)


@pytest.fixture
def table():
    return FilterTable(broker_id=0, neighbors=[1, 2, 3])


def test_match_neighbors_by_range(table):
    table.add_broker_filter(1, "k1", RangeFilter(0.0, 0.5))
    table.add_broker_filter(2, "k2", RangeFilter(0.6, 0.9))
    assert table.match_neighbors(ev(0.3), exclude=None) == [1]
    assert table.match_neighbors(ev(0.7), exclude=None) == [2]
    assert table.match_neighbors(ev(0.55), exclude=None) == []


def test_match_neighbors_excludes_arrival_direction(table):
    table.add_broker_filter(1, "k1", RangeFilter(0.0, 1.0))
    table.add_broker_filter(2, "k2", RangeFilter(0.0, 1.0))
    assert table.match_neighbors(ev(0.5), exclude=1) == [2]


def test_match_neighbors_one_hit_per_neighbor(table):
    table.add_broker_filter(1, "k1", RangeFilter(0.0, 0.5))
    table.add_broker_filter(1, "k2", RangeFilter(0.2, 0.8))
    assert table.match_neighbors(ev(0.3), exclude=None) == [1]


def test_general_filter_fallback(table):
    conj = ConjunctionFilter([
        AttributeConstraint("kind", Op.EQ, "alert"),
    ])
    table.add_broker_filter(3, "kg", conj)
    event = Notification(1, 0, 0, 0.0, 0.5, {"kind": "alert"})
    assert table.match_neighbors(event, exclude=None) == [3]
    assert table.match_neighbors(ev(0.5), exclude=None) == []


def test_remove_broker_filter(table):
    table.add_broker_filter(1, "k1", RangeFilter(0.0, 0.5))
    assert table.remove_broker_filter(1, "k1") is True
    assert table.remove_broker_filter(1, "k1") is False
    assert table.match_neighbors(ev(0.3), exclude=None) == []


def test_client_entry_matching_unlabelled(table):
    table.set_client_entry(ClientEntry(7, "c7", RangeFilter(0.0, 0.5)))
    assert [e.client for e in table.match_clients(ev(0.3), from_broker=1)] == [7]
    assert [e.client for e in table.match_clients(ev(0.3), from_broker=None)] == [7]
    assert table.match_clients(ev(0.9), from_broker=1) == []


def test_labelled_entry_only_accepts_from_label(table):
    table.set_client_entry(
        ClientEntry(7, "c7", RangeFilter(0.0, 0.5), label=2)
    )
    assert table.match_clients(ev(0.3), from_broker=1) == []
    assert [e.client for e in table.match_clients(ev(0.3), from_broker=2)] == [7]
    # locally published events never match labelled entries
    assert table.match_clients(ev(0.3), from_broker=None) == []


def test_multiple_entries_per_client(table):
    table.set_client_entry(ClientEntry(7, ("c7", 0), RangeFilter(0.0, 0.5)))
    table.set_client_entry(ClientEntry(7, ("c7", 1), RangeFilter(0.0, 0.5)))
    assert len(table.entries_for_client(7)) == 2
    with pytest.raises(ProtocolError):
        table.get_client_entry(7)
    table.remove_entry_by_key(("c7", 0))
    assert table.get_client_entry(7).key == ("c7", 1)


def test_remove_absent_entry_raises(table):
    with pytest.raises(ProtocolError):
        table.remove_client_entry(7)
    with pytest.raises(ProtocolError):
        table.remove_entry_by_key("nope")


def test_require_client_entry(table):
    with pytest.raises(ProtocolError):
        table.require_client_entry(7)
    table.set_client_entry(ClientEntry(7, "c7", RangeFilter(0.0, 0.5)))
    assert table.require_client_entry(7).client == 7


def test_advertised_bookkeeping(table):
    f = RangeFilter(0.2, 0.4)
    table.advertised_add(1, "k", f)
    assert table.advertised_has(1, "k")
    assert table.advertised_covers(1, RangeFilter(0.25, 0.35))
    assert not table.advertised_covers(1, RangeFilter(0.1, 0.3))
    assert table.advertised_keys(1) == ["k"]
    assert table.advertised_remove(1, "k") is True
    assert not table.advertised_has(1, "k")


def test_broker_filter_get_reconstructs_range(table):
    table.add_broker_filter(1, "k", RangeFilter(0.2, 0.4))
    got = table.broker_filter_get(1, "k")
    assert got.as_range() == ("topic", 0.2, 0.4)


def test_snapshots(table):
    table.add_broker_filter(1, "k1", RangeFilter(0.0, 0.5))
    table.advertised_add(2, "k2", RangeFilter(0.0, 0.5))
    assert table.snapshot_broker_filters()[1] == {"k1"}
    assert table.snapshot_advertised()[2] == {"k2"}
