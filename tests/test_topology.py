"""Unit tests for the network topology."""

import pytest

from repro.errors import TopologyError
from repro.network.topology import Topology, grid_topology


def test_grid_node_and_edge_counts():
    for k in [1, 2, 3, 5, 10]:
        g = grid_topology(k)
        assert g.n == k * k
        assert g.edge_count == 2 * k * (k - 1)


def test_grid_corner_degree():
    g = grid_topology(4)
    assert g.degree(0) == 2           # corner
    assert g.degree(1) == 3           # edge
    assert g.degree(5) == 4           # interior


def test_grid_neighbors_of_centre():
    g = grid_topology(3)
    assert g.neighbors(4) == [1, 3, 5, 7]


def test_grid_is_connected():
    assert grid_topology(6).is_connected()


def test_disconnected_graph_detected():
    t = Topology(4, [(0, 1), (2, 3)])
    assert not t.is_connected()


def test_single_node_is_connected():
    assert Topology(1).is_connected()


def test_duplicate_edge_rejected():
    t = Topology(3, [(0, 1)])
    with pytest.raises(TopologyError):
        t.add_edge(1, 0)


def test_self_loop_rejected():
    with pytest.raises(TopologyError):
        Topology(3, [(1, 1)])


def test_out_of_range_edge_rejected():
    with pytest.raises(TopologyError):
        Topology(3, [(0, 3)])


def test_non_positive_weight_rejected():
    t = Topology(2)
    with pytest.raises(TopologyError):
        t.add_edge(0, 1, 0.0)


def test_zero_nodes_rejected():
    with pytest.raises(TopologyError):
        Topology(0)


def test_weight_lookup():
    t = Topology(2, [(0, 1, 2.5)])
    assert t.weight(0, 1) == 2.5
    assert t.weight(1, 0) == 2.5
    with pytest.raises(TopologyError):
        t.weight(0, 0)


def test_edges_iterate_once_each():
    g = grid_topology(3)
    edges = list(g.edges())
    assert len(edges) == g.edge_count
    assert all(u < v for u, v, _w in edges)
    assert len(set((u, v) for u, v, _ in edges)) == len(edges)


def test_grid_size_zero_rejected():
    with pytest.raises(TopologyError):
        grid_topology(0)


def test_matches_networkx_grid():
    nx = pytest.importorskip("networkx")
    k = 5
    ours = grid_topology(k)
    theirs = nx.grid_2d_graph(k, k)
    assert ours.edge_count == theirs.number_of_edges()
    for (r1, c1), (r2, c2) in theirs.edges():
        assert ours.has_edge(r1 * k + c1, r2 * k + c2)
