"""Scenario + property tests for the home-broker baseline protocol."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ProtocolError
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem
from repro.pubsub import messages as m


def build(k=3, seed=1):
    return PubSubSystem(grid_k=k, protocol="home-broker", seed=seed)


def pair(system, home, pub_broker):
    sub = system.add_client(RangeFilter(0.0, 0.5), broker=home, mobile=True)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=pub_broker)
    sub.connect(home)
    pub.connect(pub_broker)
    system.run(until=2000.0)
    return sub, pub


def test_delivery_at_home():
    system = build()
    sub, pub = pair(system, 0, 8)
    pub.publish(0.2)
    system.sim.run()
    assert system.metrics.delivery.stats.delivered == 1


def test_triangle_routing_via_home():
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    sub.disconnect()
    system.run(until=3000.0)
    sub.connect(15)  # foreign broker
    system.run(until=6000.0)
    pub.publish(0.2)
    system.sim.run()
    assert system.metrics.delivery.stats.delivered == 1
    # the live event travelled the extra home->foreign leg
    assert system.metrics.traffic.wired_hops.get("hb_forward", 0) > 0


def test_stored_backlog_forwarded_at_registration():
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(6):
        pub.publish(0.2)
    system.run(until=6000.0)
    sub.connect(15)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.delivered == 6
    assert system.metrics.traffic.wired_hops.get("event_migration", 0) > 0


def test_in_transit_events_lost_when_client_moves():
    """The paper's reliability gap, made concrete."""
    system = build(k=5)
    sub, pub = pair(system, 0, 2)
    sub.disconnect()
    system.run(until=3000.0)
    sub.connect(24)  # far foreign corner
    system.run(until=6000.0)
    pub.publish(0.2)
    # leave while the forwarded event is in transit home->foreign
    system.run(until=system.sim.now + 60.0)
    sub.disconnect()
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.lost_explicit >= 1
    assert stats.delivered + stats.lost_explicit == stats.expected


def test_loss_accounting_balances_under_churn():
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    for target in (15, 3, 12):
        sub.disconnect()
        system.run(until=system.sim.now + 500.0)
        for _ in range(3):
            pub.publish(0.2)
        sub.connect(target)
        system.run(until=system.sim.now + 300.0)
        pub.publish(0.3)
        system.run(until=system.sim.now + 100.0)
    if not sub.connected:
        sub.connect(sub.last_broker)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.duplicates == 0
    assert stats.missing == 0  # every expected event delivered or lost
    assert stats.delivered + stats.lost_explicit == stats.expected


def test_reconnect_at_home_skips_registration():
    system = build()
    sub, pub = pair(system, 0, 8)
    sub.disconnect()
    system.run(until=3000.0)
    pub.publish(0.2)
    system.run(until=5000.0)
    ctrl_before = system.metrics.traffic.wired_hops.get("mobility_ctrl", 0)
    sub.connect(0)
    system.sim.run()
    ctrl_after = system.metrics.traffic.wired_hops.get("mobility_ctrl", 0)
    assert ctrl_after == ctrl_before  # no register round-trip
    assert system.metrics.delivery.stats.delivered == 1


def test_first_attach_must_be_at_home():
    system = build()
    sub = system.add_client(RangeFilter(0.0, 0.5), broker=0)
    sub.connect(5)  # not its home
    with pytest.raises(ProtocolError):
        system.sim.run()


def test_stale_deregister_ignored_on_fast_moves():
    """Move foreign->foreign faster than control messages travel."""
    system = build(k=5)
    sub, pub = pair(system, 12, 11)
    sub.disconnect()
    system.run(until=3000.0)
    sub.connect(0)  # far foreign
    system.run(until=system.sim.now + 30.0)  # deregister still in flight
    sub.disconnect()
    sub.connect(24)  # other corner immediately
    system.run(until=8000.0)
    pub.publish(0.2)
    system.sim.run()
    stats = system.metrics.delivery.stats
    # the event must reach the client at broker 24 (location must not have
    # been clobbered by the stale deregister from broker 0)
    assert stats.delivered == 1
    assert stats.lost_explicit == 0


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 15),
    schedule=st.lists(
        st.tuples(
            st.sampled_from(["move", "publish", "wait"]),
            st.integers(0, 8),
            st.floats(min_value=5.0, max_value=3000.0),
        ),
        min_size=1,
        max_size=10,
    ),
)
def test_property_hb_accounts_every_event(seed, schedule):
    """HB may lose events but must account for each one exactly once."""
    system = PubSubSystem(grid_k=3, protocol="home-broker", seed=seed)
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(2.0, 2.0), broker=8)
    sub.connect(0)
    pub.connect(8)
    system.run(until=2000.0)
    for action, param, dwell in schedule:
        if action == "move":
            if sub.connected:
                sub.disconnect()
                system.run(until=system.sim.now + dwell / 3.0)
            sub.connect(param % 9)
        elif action == "publish":
            pub.publish(param / 10.0)
        system.run(until=system.sim.now + dwell)
    if not sub.connected:
        sub.connect(sub.last_broker)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.duplicates == 0
    assert stats.order_violations == 0
    assert stats.delivered + stats.lost_explicit == stats.expected
