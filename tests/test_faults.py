"""Wireless fault injection: loss/dup/jitter knobs and their accounting.

The contract under test (see repro/network/faults.py): every injected
fault is *accounted* — drops land in the delivery checker as explicit
losses and in the traffic meter's ledgers, duplicates equal the checker's
duplicate count — and an inactive profile changes nothing at all.
"""

import pytest

from repro.errors import ConfigurationError
from repro.network.faults import FAULT_FREE, FaultProfile, LinkFaultInjector
from repro.network.links import _WirelessChannel
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem
from repro.sim.core import Simulator
from repro.sim.rng import RandomStreams


# ---------------------------------------------------------------------------
# profile
# ---------------------------------------------------------------------------
class TestFaultProfile:
    def test_default_is_inactive(self):
        assert not FaultProfile().active
        assert not FAULT_FREE.active
        assert FAULT_FREE.label() == "faults=off"

    @pytest.mark.parametrize(
        "kw",
        [
            {"deliver_loss": 0.1},
            {"deliver_duplicate": 0.1},
            {"wireless_jitter_ms": 1.0},
        ],
    )
    def test_any_knob_activates(self, kw):
        profile = FaultProfile(**kw)
        assert profile.active
        assert profile.label() != "faults=off"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultProfile(deliver_loss=1.5)
        with pytest.raises(ConfigurationError):
            FaultProfile(deliver_duplicate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultProfile(wireless_jitter_ms=-1.0)


# ---------------------------------------------------------------------------
# system wiring
# ---------------------------------------------------------------------------
def lossy_system(**fault_kw):
    system = PubSubSystem(
        grid_k=2, protocol="mhh", seed=3, faults=FaultProfile(**fault_kw)
    )
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=3)
    sub.connect(0)
    pub.connect(3)
    system.run(until=500.0)
    return system, sub, pub


def test_inactive_profile_builds_no_injector():
    system = PubSubSystem(grid_k=2, protocol="mhh", seed=1,
                          faults=FaultProfile())
    assert system.fault_injector is None
    assert system.links.faults is None
    system = PubSubSystem(grid_k=2, protocol="mhh", seed=1)
    assert system.fault_injector is None


def test_total_loss_accounts_every_delivery():
    system, sub, pub = lossy_system(deliver_loss=1.0)
    for _ in range(5):
        pub.publish(topic=0.5)
        system.run(until=system.sim.now + 500.0)
    system.run()
    stats = system.metrics.delivery.stats
    assert stats.expected == 5
    assert stats.delivered == 0
    assert stats.lost_explicit == 5
    assert stats.missing == 0
    assert system.fault_injector.drops == 5
    assert system.metrics.traffic.total_dropped() == 5
    # per-link ledger: all five drops on the subscriber's downlink
    assert system.metrics.traffic.link_fault_counts("drop") == {
        (sub.id, "down"): 5
    }


def test_total_duplication_doubles_every_delivery():
    system, sub, pub = lossy_system(deliver_duplicate=1.0)
    for _ in range(4):
        pub.publish(topic=0.5)
        system.run(until=system.sim.now + 500.0)
    system.run()
    stats = system.metrics.delivery.stats
    assert stats.expected == 4
    assert stats.delivered == 8
    assert stats.duplicates == 4
    assert stats.missing == 0
    assert stats.order_violations == 0
    assert system.fault_injector.dups_delivered == 4
    assert system.metrics.traffic.total_duplicated() == 4


def test_loss_spares_control_traffic():
    """Only final deliveries ride the unreliable path: with 100% loss the
    protocol still connects, publishes and hands off without wedging."""
    system, sub, pub = lossy_system(deliver_loss=1.0)
    pub.publish(topic=0.5)
    system.run(until=system.sim.now + 500.0)
    sub.disconnect()
    sub.connect(1)  # silent-move handoff under total delivery loss
    pub.publish(topic=0.5)
    system.run()
    stats = system.metrics.delivery.stats
    assert stats.expected == 2
    assert stats.missing == 0
    assert stats.lost_explicit == 2
    assert system.metrics.handoffs.handoff_count == 1


def test_jitter_changes_timing_but_not_outcome():
    def run(jitter):
        system = PubSubSystem(
            grid_k=2, protocol="mhh", seed=3,
            faults=FaultProfile(wireless_jitter_ms=jitter) if jitter else None,
        )
        system.metrics.delivery.record_log = True
        sub = system.add_client(RangeFilter(0.0, 1.0), broker=0)
        pub = system.add_client(RangeFilter(0.9, 0.9), broker=3)
        sub.connect(0)
        pub.connect(3)
        system.run(until=500.0)
        for _ in range(6):
            pub.publish(topic=0.5)
        system.run()
        return system.metrics.delivery

    plain = run(0.0)
    jittered = run(25.0)
    jittered2 = run(25.0)
    # deterministic: identical seed -> identical jittered log, byte for byte
    assert jittered.log == jittered2.log
    # same deliveries, same order (serial FIFO survives jitter), later times
    assert [entry[:2] for entry in jittered.log] == [
        entry[:2] for entry in plain.log
    ]
    assert jittered.stats.order_violations == 0
    assert jittered.log != plain.log  # timing did move
    assert all(
        jt >= pt for (_, _, jt), (_, _, pt) in zip(jittered.log, plain.log)
    )


def test_seeded_loss_replays_identically():
    def run():
        system, sub, pub = lossy_system(deliver_loss=0.4,
                                        deliver_duplicate=0.3)
        system.metrics.delivery.record_log = True
        for _ in range(20):
            pub.publish(topic=0.5)
            system.run(until=system.sim.now + 100.0)
        system.run()
        return system

    a, b = run(), run()
    assert a.metrics.delivery.log == b.metrics.delivery.log
    assert a.fault_injector.drops == b.fault_injector.drops
    assert a.fault_injector.dups_delivered == b.fault_injector.dups_delivered
    assert dict(a.fault_injector.drops_by_link) == dict(
        b.fault_injector.drops_by_link
    )


# ---------------------------------------------------------------------------
# channel-level edge cases
# ---------------------------------------------------------------------------
def make_channel(profile, delivered, droppable=lambda _msg: True,
                 dropped=None):
    sim = Simulator()
    injector = LinkFaultInjector(
        profile,
        rng=RandomStreams(1).stream("faults/wireless"),
        droppable=droppable,
        on_drop=(dropped.append if dropped is not None else lambda _m: None),
    )
    channel = _WirelessChannel(
        sim, 20.0, delivered.append, faults=injector, client=7
    )
    return sim, channel, injector


def test_cancel_pending_forgets_dup_flags():
    """A reclaimed dup-flagged message must not leave a stale id behind
    (id reuse would mint a phantom duplicate for an unrelated message)."""
    delivered = []
    sim, channel, injector = make_channel(
        FaultProfile(deliver_duplicate=1.0), delivered
    )
    first, second = object(), object()
    channel.send(first)   # goes in service, dup-flagged
    channel.send(second)  # queued behind it, dup-flagged
    assert channel.cancel_pending() == [second]
    assert channel._dup_ids == {id(first)}
    sim.run()
    # the in-service message completed and duplicated; the reclaimed one
    # neither delivered nor left a flag behind
    assert delivered == [first, first]
    assert injector.dups_delivered == 1
    assert channel._dup_ids == set()


def test_dropped_message_never_occupies_the_channel():
    delivered = []
    dropped = []
    sim, channel, injector = make_channel(
        FaultProfile(deliver_loss=1.0), delivered, dropped=dropped
    )
    msg = object()
    channel.send(msg)
    assert channel.backlog == 0
    sim.run()
    assert delivered == []
    assert dropped == [msg]
    assert injector.drops == 1


def test_ineligible_payloads_consume_no_randomness():
    delivered = []
    sim, channel, injector = make_channel(
        FaultProfile(deliver_loss=1.0), delivered,
        droppable=lambda _msg: False,
    )
    state = injector.rng.bit_generator.state
    for _ in range(3):
        channel.send(object())
    assert injector.rng.bit_generator.state == state
    sim.run()
    assert len(delivered) == 3
    assert injector.drops == 0
