"""Tests for paced queue streaming and the ordering guarantees around it."""

import pytest

from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem


def build(protocol="mhh", pacing=None, batch=1, k=4, seed=1, trace=None):
    return PubSubSystem(
        grid_k=k, protocol=protocol, seed=seed,
        migration_batch_size=batch, stream_pacing_ms=pacing, trace=trace,
    )


def loaded_pair(system, backlog, sub_broker=0, pub_broker=5):
    sub = system.add_client(RangeFilter(0.0, 0.5), broker=sub_broker, mobile=True)
    pub = system.add_client(RangeFilter(2.0, 2.0), broker=pub_broker)
    sub.connect(sub_broker)
    pub.connect(pub_broker)
    system.run(until=2000.0)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(backlog):
        pub.publish(0.2)
    system.run(until=8000.0)
    return sub, pub


def migration_window_ms(system, sub, backlog, target):
    """Reconnect and measure first->last delivery time of the backlog."""
    sub.connect(target)
    system.sim.run()
    log = system.metrics.delivery
    assert log.stats.delivered == backlog
    return None


def test_pacing_stretches_stream_duration():
    """With pacing, a big backlog takes proportional simulated time."""
    def total_drain_time(pacing):
        system = build(pacing=pacing, batch=1)
        system.metrics.delivery.record_log = True
        sub, _pub = loaded_pair(system, backlog=40)
        t0 = system.sim.now
        sub.connect(15)
        system.sim.run()
        times = [t for (_c, _e, t) in system.metrics.delivery.log]
        return max(times) - t0

    fast = total_drain_time(pacing=0.0)
    slow = total_drain_time(pacing=10.0)
    # 40 events, one per 10 ms: at least ~300 ms longer than unpaced
    # (the serial wireless leg is common to both)
    assert slow >= fast


def test_pacing_zero_is_instantaneous_dispatch():
    system = build(pacing=0.0, batch=5)
    sub, _pub = loaded_pair(system, backlog=25)
    sub.connect(15)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.delivered == 25
    assert stats.duplicates == 0 and stats.order_violations == 0


@pytest.mark.parametrize("batch", [1, 3, 10, 100])
def test_batch_sizes_preserve_semantics(batch):
    system = build(batch=batch)
    sub, _pub = loaded_pair(system, backlog=23)
    sub.connect(15)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.delivered == stats.expected == 23
    assert stats.duplicates == 0 and stats.order_violations == 0


def test_batching_reduces_migration_hop_count():
    def migration_hops(batch):
        system = build(batch=batch)
        sub, _pub = loaded_pair(system, backlog=30)
        sub.connect(15)
        system.sim.run()
        return system.metrics.traffic.wired_hops.get("event_migration", 0)

    assert migration_hops(10) < migration_hops(1)


def test_stop_mid_stream_keeps_remainder_in_place():
    """A disconnect mid-drain must strand no events and re-deliver none."""
    system = build(batch=1, k=5, trace=["stopped_migration"])
    sub, pub = loaded_pair(system, backlog=50, pub_broker=12)
    sub.connect(24)
    # the paced stream (50 batches x 10 ms) is mid-flight after 150 ms
    system.run(until=system.sim.now + 150.0)
    sub.disconnect()
    system.run(until=system.sim.now + 3000.0)
    stops = system.tracer.select("stopped_migration")
    assert stops, "expected the migration to be stopped mid-stream"
    sub.connect(7)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.delivered == stats.expected == 50
    assert stats.duplicates == 0 and stats.order_violations == 0


def test_order_preserved_across_paced_migration_per_publisher():
    system = build(batch=2, k=5)
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    pubs = [
        system.add_client(RangeFilter(2.0, 2.0), broker=b) for b in (6, 12, 18)
    ]
    sub.connect(0)
    for p in pubs:
        p.connect(p.home_broker)
    system.run(until=2000.0)
    sub.disconnect()
    system.run(until=3000.0)
    # interleaved publications from several publishers
    for round_ in range(10):
        for p in pubs:
            p.publish(0.5)
        system.run(until=system.sim.now + 40.0)
    sub.connect(24)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.delivered == 30
    assert stats.order_violations == 0
    assert stats.duplicates == 0


def test_sub_unsub_paced_transfer_still_merges_completely():
    system = build(protocol="sub-unsub", batch=1, k=4)
    sub, _pub = loaded_pair(system, backlog=35)
    sub.connect(15)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.delivered == stats.expected == 35
    assert stats.duplicates == 0 and stats.order_violations == 0


def test_home_broker_paced_drain_keeps_order_with_live_traffic():
    """Events published during the stored-backlog drain must not overtake."""
    system = build(protocol="home-broker", batch=1, k=5)
    sub = system.add_client(RangeFilter(0.0, 0.5), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(2.0, 2.0), broker=12)
    sub.connect(0)
    pub.connect(12)
    system.run(until=2000.0)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(30):
        pub.publish(0.2)
    system.run(until=8000.0)
    sub.connect(24)
    # publish during the paced drain window
    for _ in range(5):
        system.run(until=system.sim.now + 30.0)
        pub.publish(0.2)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.order_violations == 0
    assert stats.duplicates == 0
    assert stats.delivered + stats.lost_explicit == stats.expected
