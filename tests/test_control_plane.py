"""Differential tests for the incremental control plane.

Three layers, each checked against its legacy oracle under randomized
churn:

* the **covering index** (:class:`~repro.pubsub.covering.CoveringIndex`)
  against brute-force ``covers`` scans — both directions, exactly;
* the **filter table**'s indexed covering checks, withdrawal-candidate
  enumeration (including its legacy scan *order*), and client-entry index
  against the scanning implementations;
* **whole systems**: randomized subscribe/unsubscribe/mobility storms run
  under every combination of matching engine × covering index (× covering
  on/off) must produce identical routing decisions, identical traffic,
  identical final tables, and a consistent advertisement mirror.

The incremental-vs-rebuild :class:`IntervalIndex` differential lives in
``tests/test_interval_index.py`` next to the other interval-index tests.
"""

import random

import pytest

from repro.pubsub.covering import CoveringIndex
from repro.pubsub.filter_table import ClientEntry, FilterTable
from repro.pubsub.filters import (
    AttributeConstraint,
    ConjunctionFilter,
    Op,
    RangeFilter,
)
from repro.pubsub.system import PubSubSystem

NEIGHBORS = [1, 2, 7, 9]
ATTRS = ["topic", "kind", "size", "region"]


# ---------------------------------------------------------------------------
# random filter generation (seeded, deterministic; range-heavy like the
# paper's workload but with every constraint shape represented)
# ---------------------------------------------------------------------------
def random_filter(rnd: random.Random):
    kind = rnd.randrange(5)
    if kind == 0:
        lo = rnd.uniform(0.0, 0.9)
        return RangeFilter(lo, lo + rnd.uniform(0.0, 0.3))
    if kind == 1:
        lo = rnd.uniform(0.0, 50.0)
        return RangeFilter(lo, lo + rnd.uniform(0.0, 20.0), attr="size")
    n = rnd.randrange(0, 4)
    return ConjunctionFilter([random_constraint(rnd) for _ in range(n)])


def random_constraint(rnd: random.Random) -> AttributeConstraint:
    op = rnd.choice(list(Op))
    attr = rnd.choice(ATTRS)
    if op is Op.RANGE:
        if rnd.random() < 0.15:
            lo, hi = sorted([rnd.choice("abcx"), rnd.choice("cxyz")])
            return AttributeConstraint(attr, op, (lo, hi))
        lo = rnd.uniform(-1.0, 1.0)
        return AttributeConstraint(attr, op, (lo, lo + rnd.uniform(0.0, 1.0)))
    if op is Op.PREFIX:
        return AttributeConstraint(attr, op, rnd.choice(["", "a", "ab", "xy"]))
    if op is Op.EXISTS:
        return AttributeConstraint(attr, op)
    value = rnd.choice(
        [
            rnd.uniform(-1.0, 1.0),
            rnd.randrange(-3, 4),
            rnd.choice(["abc", "x", ""]),
            True,
            False,
        ]
    )
    return AttributeConstraint(attr, op, value)


# ---------------------------------------------------------------------------
# CoveringIndex vs brute force
# ---------------------------------------------------------------------------
def legacy_peer_covers(members: dict, f) -> bool:
    """The unindexed _PeerFilters covering semantics: topic intervals in a
    topic-only index (consulted for topic-range queries), all else scanned."""
    def is_topic_range(m):
        rng = m.as_range()
        return rng is not None and rng[0] == "topic"

    rng = f.as_range()
    if rng is not None and rng[0] == "topic":
        for m in members.values():
            if is_topic_range(m):
                mrng = m.as_range()
                if mrng[1] <= rng[1] and rng[2] <= mrng[2]:
                    return True
    return any(
        m.covers(f) for m in members.values() if not is_topic_range(m)
    )


@pytest.mark.parametrize("seed", range(10))
def test_covering_index_differential(seed):
    """covers() == peer-scan semantics; covered_by() == exact brute force."""
    rnd = random.Random(seed)
    ci = CoveringIndex()
    members: dict = {}
    for _step in range(250):
        if rnd.random() < 0.55 or not members:
            key = rnd.randrange(60)
            f = random_filter(rnd)
            ci.add(key, f)
            members[key] = f
        else:
            key = rnd.choice(list(members))
            ci.discard(key)
            del members[key]
        if rnd.random() < 0.4:
            q = random_filter(rnd)
            assert ci.covers(q) == legacy_peer_covers(members, q)
            expect = {k for k, m in members.items() if q.covers(m)}
            assert set(ci.covered_by(q)) == expect
    assert len(ci) == len(members)


@pytest.mark.parametrize("seed", range(6))
def test_advertised_covers_indexed_matches_scan(seed):
    """FilterTable.advertised_covers agrees across covering_index modes."""
    rnd = random.Random(100 + seed)
    indexed = FilterTable(0, NEIGHBORS, covering_index=True)
    scan = FilterTable(0, NEIGHBORS, covering_index=False)
    live: list = []
    for _step in range(200):
        nbr = rnd.choice(NEIGHBORS)
        if rnd.random() < 0.6 or not live:
            key = f"k{rnd.randrange(80)}"
            f = random_filter(rnd)
            indexed.advertised_add(nbr, key, f)
            scan.advertised_add(nbr, key, f)
            live.append((nbr, key))
        else:
            nbr, key = live.pop(rnd.randrange(len(live)))
            assert indexed.advertised_remove(nbr, key) == \
                scan.advertised_remove(nbr, key)
        q = random_filter(rnd)
        for n in NEIGHBORS:
            assert indexed.advertised_covers(n, q) == \
                scan.advertised_covers(n, q)
            assert set(indexed.advertised_keys(n)) == \
                set(scan.advertised_keys(n))


# ---------------------------------------------------------------------------
# withdrawal-candidate enumeration: content AND order vs the legacy scan
# ---------------------------------------------------------------------------
def legacy_candidates(table: FilterTable, nbr: int, f):
    """The pre-index candidate walk: every client entry, then every other
    neighbour's filters in keys() order — filtered to what ``f`` covers."""
    out = []
    for entry in table.clients.values():
        if f.covers(entry.filter):
            out.append((entry.key, entry.filter))
    for other in table.neighbors:
        if other == nbr:
            continue
        for key, cand in table.iter_broker_filters(other):
            if f.covers(cand):
                out.append((key, cand))
    return out


@pytest.mark.parametrize("seed", range(8))
def test_covered_candidates_content_and_order(seed):
    rnd = random.Random(200 + seed)
    table = FilterTable(0, NEIGHBORS, covering_index=True)
    broker_keys: list = []
    client_keys: list = []
    next_key = 0
    for _step in range(300):
        action = rnd.random()
        if action < 0.35 or not (broker_keys or client_keys):
            nbr = rnd.choice(NEIGHBORS)
            key = f"k{next_key}"
            next_key += 1
            table.add_broker_filter(nbr, key, random_filter(rnd))
            broker_keys.append((nbr, key))
        elif action < 0.6:
            key = ("c", next_key)
            next_key += 1
            table.set_client_entry(
                ClientEntry(1000 + next_key, key, random_filter(rnd))
            )
            client_keys.append(key)
        elif action < 0.8 and broker_keys:
            nbr, key = broker_keys.pop(rnd.randrange(len(broker_keys)))
            assert table.remove_broker_filter(nbr, key)
        elif client_keys:
            key = client_keys.pop(rnd.randrange(len(client_keys)))
            table.remove_entry_by_key(key)
        if rnd.random() < 0.4:
            f = random_filter(rnd)
            for nbr in NEIGHBORS:
                got = table.covered_candidates(nbr, f)
                want = legacy_candidates(table, nbr, f)
                assert got == want, (nbr, f)


# ---------------------------------------------------------------------------
# client-entry index
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_entries_for_client_matches_scan_order(seed):
    rnd = random.Random(300 + seed)
    table = FilterTable(0, NEIGHBORS)
    keys: list = []
    for step in range(300):
        if rnd.random() < 0.6 or not keys:
            client = rnd.randrange(6)
            key = ("c", client, rnd.randrange(4))
            table.set_client_entry(
                ClientEntry(client, key, random_filter(rnd))
            )
            if key not in keys:
                keys.append(key)
        else:
            key = keys.pop(rnd.randrange(len(keys)))
            table.remove_entry_by_key(key)
        for client in range(6):
            got = table.entries_for_client(client)
            want = [e for e in table.clients.values() if e.client == client]
            assert got == want, (step, client)


def test_filter_lookups_return_installed_objects():
    """No per-lookup filter reconstruction: get() is the installed object."""
    table = FilterTable(0, NEIGHBORS)
    rf = RangeFilter(0.2, 0.4)
    conj = ConjunctionFilter([AttributeConstraint("kind", Op.EQ, "x")])
    table.add_broker_filter(1, "r", rf)
    table.add_broker_filter(1, "g", conj)
    table.advertised_add(2, "r", rf)
    assert table.broker_filter_get(1, "r") is rf
    assert table.broker_filter_get(1, "g") is conj
    assert table.advertised_get(2, "r") is rf
    assert table.broker_filter_get(1, "missing") is None
    assert table.advertised_count(2) == 1
    assert dict(table.iter_broker_filters(1)) == {"r": rf, "g": conj}


# ---------------------------------------------------------------------------
# whole-system churn storms: every mode combination must agree exactly
# ---------------------------------------------------------------------------
def run_churn_storm(protocol, covering, engine, covering_index, seed):
    """One scripted random mobility/publish storm; returns every observable."""
    system = PubSubSystem(
        grid_k=3,
        protocol=protocol,
        seed=7,
        covering_enabled=covering,
        matching_engine=engine,
        covering_index=covering_index,
    )
    rnd = random.Random(seed)
    subs = [
        system.add_client(
            RangeFilter(rnd.uniform(0.0, 0.5), rnd.uniform(0.5, 1.0)),
            broker=rnd.randrange(9),
            mobile=True,
        )
        for _ in range(4)
    ]
    pubs = [
        system.add_client(RangeFilter(2.0, 2.0), broker=rnd.randrange(9))
        for _ in range(2)
    ]
    for c in subs + pubs:
        c.connect(c.home_broker)
    system.run(until=1500.0)
    now = 1500.0
    for _step in range(25):
        for sub in subs:
            roll = rnd.random()
            if sub.connected and roll < 0.35:
                sub.disconnect()
            elif not sub.connected and roll < 0.7:
                sub.connect(rnd.randrange(9))
        for pub in pubs:
            for _ in range(rnd.randrange(3)):
                pub.publish(topic=rnd.random())
        now += rnd.choice([40.0, 120.0, 400.0, 1200.0])
        system.run(until=now)
    for sub in subs:  # let every protocol settle and drain
        if not sub.connected:
            sub.connect(sub.last_broker if sub.last_broker is not None
                        else sub.home_broker)
    system.sim.run()
    system.check_mirror_invariant()
    stats = system.metrics.delivery.stats
    tables = {
        bid: (
            broker.table.snapshot_broker_filters(),
            broker.table.snapshot_advertised(),
            sorted(map(repr, broker.table.clients)),
        )
        for bid, broker in system.brokers.items()
    }
    return (
        stats.delivered,
        stats.duplicates,
        stats.order_violations,
        stats.missing,
        system.metrics.traffic.overhead_hops(),
        dict(system.metrics.traffic.by_category()),
        system.sim.events_processed,
        tables,
    )


@pytest.mark.parametrize(
    "protocol,covering",
    [("sub-unsub", True), ("sub-unsub", False), ("mhh", False),
     ("home-broker", False)],
)
def test_churn_storm_all_modes_agree(protocol, covering):
    """Randomized churn: engine × covering-index modes are bit-identical."""
    outcomes = {}
    for engine in ("counting", "scan"):
        for covering_index in (True, False):
            outcomes[(engine, covering_index)] = run_churn_storm(
                protocol, covering, engine, covering_index, seed=42
            )
    baseline = outcomes[("counting", True)]
    for mode, outcome in outcomes.items():
        assert outcome == baseline, f"{mode} diverged from (counting, True)"
    # the storm must actually have exercised delivery
    assert baseline[0] > 0


@pytest.mark.parametrize("protocol", ["sub-unsub", "mhh", "home-broker"])
def test_entries_for_client_differential_under_system_churn(protocol):
    """The client->entries map must equal a full-table scan at every broker
    after every step of a live connect/handoff/withdraw storm (pins the
    PR 3 index against real protocol churn, not just synthetic table ops:
    sub-unsub's epoch overlap creates the multi-entry case, handoffs and
    withdrawals exercise removal)."""
    system = PubSubSystem(grid_k=3, protocol=protocol, seed=13)
    rnd = random.Random(99)
    subs = [
        system.add_client(
            RangeFilter(rnd.uniform(0.0, 0.5), rnd.uniform(0.5, 1.0)),
            broker=rnd.randrange(9),
            mobile=True,
        )
        for _ in range(5)
    ]
    for c in subs:
        c.connect(c.home_broker)
    system.run(until=1500.0)
    client_ids = [c.id for c in subs]

    def assert_index_matches_scan():
        for broker in system.brokers.values():
            table = broker.table
            for cid in client_ids:
                got = table.entries_for_client(cid)
                want = [e for e in table.clients.values() if e.client == cid]
                assert got == want, (broker.id, cid)

    now = 1500.0
    for _step in range(30):
        for sub in subs:
            roll = rnd.random()
            if sub.connected and roll < 0.4:
                sub.disconnect()
            elif not sub.connected and roll < 0.8:
                sub.connect(rnd.randrange(9))
        now += rnd.choice([40.0, 200.0, 900.0])
        system.run(until=now)
        assert_index_matches_scan()
    for sub in subs:
        if not sub.connected:
            sub.connect(sub.last_broker if sub.last_broker is not None
                        else sub.home_broker)
    system.sim.run()
    assert_index_matches_scan()
