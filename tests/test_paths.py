"""Unit + property tests for shortest paths in the physical network."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.network.paths import ShortestPaths
from repro.network.topology import Topology, grid_topology


def manhattan(k, u, v):
    return abs(u // k - v // k) + abs(u % k - v % k)


def test_grid_distance_is_manhattan():
    k = 6
    sp = ShortestPaths(grid_topology(k))
    for u, v in [(0, 35), (3, 33), (7, 7), (10, 25)]:
        assert sp.distance(u, v) == manhattan(k, u, v)
        assert sp.hop_count(u, v) == manhattan(k, u, v)


def test_path_is_shortest_and_valid():
    k = 5
    topo = grid_topology(k)
    sp = ShortestPaths(topo)
    path = sp.path(0, 24)
    assert path[0] == 0 and path[-1] == 24
    assert len(path) - 1 == manhattan(k, 0, 24)
    for a, b in zip(path, path[1:]):
        assert topo.has_edge(a, b)


def test_next_hop_reduces_distance():
    k = 7
    sp = ShortestPaths(grid_topology(k))
    cur, dst = 0, 48
    steps = 0
    while cur != dst:
        nxt = sp.next_hop(cur, dst)
        assert sp.distance(nxt, dst) == sp.distance(cur, dst) - 1
        cur = nxt
        steps += 1
    assert steps == manhattan(k, 0, 48)


def test_next_hop_self():
    sp = ShortestPaths(grid_topology(3))
    assert sp.next_hop(5, 5) == 5


def test_weighted_dijkstra():
    # 0-1 cheap+cheap beats 0-2 direct expensive
    topo = Topology(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
    sp = ShortestPaths(topo)
    assert sp.distance(0, 2) == 2.0
    assert sp.path(0, 2) == [0, 1, 2]
    assert sp.hop_count(0, 2) == 2


def test_disconnected_raises():
    sp = ShortestPaths(Topology(4, [(0, 1), (2, 3)]))
    with pytest.raises(RoutingError):
        sp.distance(0, 3)
    with pytest.raises(RoutingError):
        sp.next_hop(0, 3)


def test_diameter_and_average_grid():
    k = 5
    sp = ShortestPaths(grid_topology(k))
    assert sp.diameter() == 2 * (k - 1)
    # exact closed form for mean Manhattan distance over ordered pairs
    expected_axis = (k * k - 1) / (3 * k)
    assert sp.average_distance() == pytest.approx(
        2 * expected_axis * (k * k) / (k * k - 1), rel=0.05
    )


def test_matches_networkx_lengths():
    nx = pytest.importorskip("networkx")
    topo = Topology(6, [
        (0, 1, 2.0), (1, 2, 2.0), (0, 3, 1.0), (3, 4, 1.0),
        (4, 2, 1.0), (2, 5, 3.0), (1, 5, 9.0),
    ])
    sp = ShortestPaths(topo)
    g = nx.Graph()
    for u, v, w in topo.edges():
        g.add_edge(u, v, weight=w)
    for src in range(6):
        lengths = nx.single_source_dijkstra_path_length(g, src)
        for dst, d in lengths.items():
            assert sp.distance(src, dst) == pytest.approx(d)


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_property_triangle_inequality_on_grid(k, data):
    sp = ShortestPaths(grid_topology(k))
    n = k * k
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    c = data.draw(st.integers(0, n - 1))
    assert sp.distance(a, c) <= sp.distance(a, b) + sp.distance(b, c)
