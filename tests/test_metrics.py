"""Unit tests for the metrics layer."""

from repro.metrics.delivery import DeliveryChecker
from repro.metrics.handoff import HandoffLog
from repro.metrics.summary import ResultRow, summarize
from repro.metrics.hub import MetricsHub
from repro.metrics.traffic import TrafficMeter
from repro.pubsub.events import Notification
from repro.pubsub import messages as m


def ev(i, publisher=0, seq=None, topic=0.5, t=0.0):
    return Notification(i, publisher, seq if seq is not None else i, t, topic)


# ---------------------------------------------------------------------------
# TrafficMeter
# ---------------------------------------------------------------------------
class TestTrafficMeter:
    def test_wired_hops_accumulate_per_category(self):
        tm = TrafficMeter()
        tm.account("event", 3, False)
        tm.account("event", 2, False)
        tm.account("mobility_ctrl", 5, False)
        assert tm.wired_hops["event"] == 5
        assert tm.total_wired() == 10

    def test_wireless_tracked_separately(self):
        tm = TrafficMeter()
        tm.account("event", 1, True)
        assert tm.total_wired() == 0
        assert tm.wireless_msgs["event"] == 1

    def test_overhead_selects_mobility_categories(self):
        tm = TrafficMeter()
        tm.account(m.CAT_EVENT, 100, False)
        tm.account(m.CAT_SUB_INITIAL, 50, False)
        tm.account(m.CAT_MOBILITY_CTRL, 7, False)
        tm.account(m.CAT_MIGRATION, 9, False)
        tm.account(m.CAT_HB_FORWARD, 4, False)
        tm.account(m.CAT_SUB_HANDOFF, 2, False)
        assert tm.overhead_hops() == 7 + 9 + 4 + 2

    def test_reset(self):
        tm = TrafficMeter()
        tm.account("event", 1, False)
        tm.reset()
        assert tm.total_wired() == 0


# ---------------------------------------------------------------------------
# DeliveryChecker
# ---------------------------------------------------------------------------
class TestDeliveryChecker:
    def make(self):
        dc = DeliveryChecker()
        dc.register_subscription(1, 0.0, 0.5)
        dc.register_subscription(2, 0.4, 0.9)
        return dc

    def test_expected_counts_matching_clients(self):
        dc = self.make()
        dc.on_publish(ev(0, topic=0.45))  # matches both
        dc.on_publish(ev(1, topic=0.1))   # matches 1
        dc.on_publish(ev(2, topic=0.95))  # matches none
        assert dc.stats.expected == 3
        assert dc.expected_per_client == {1: 2, 2: 1}

    def test_delivery_balances(self):
        dc = self.make()
        e = ev(0, topic=0.45)
        dc.on_publish(e)
        dc.on_delivery(1, e, 10.0)
        dc.on_delivery(2, e, 11.0)
        assert dc.stats.missing == 0

    def test_duplicate_detected(self):
        dc = self.make()
        e = ev(0, topic=0.2)
        dc.on_publish(e)
        dc.on_delivery(1, e, 10.0)
        dc.on_delivery(1, e, 11.0)
        assert dc.stats.duplicates == 1
        assert dc.stats.missing == 0

    def test_order_violation_detected_per_publisher(self):
        dc = self.make()
        e1 = ev(0, publisher=7, seq=0, topic=0.2)
        e2 = ev(1, publisher=7, seq=1, topic=0.2)
        dc.on_publish(e1)
        dc.on_publish(e2)
        dc.on_delivery(1, e2, 10.0)
        dc.on_delivery(1, e1, 11.0)  # older after newer
        assert dc.stats.order_violations == 1

    def test_order_across_publishers_unconstrained(self):
        dc = self.make()
        a = ev(0, publisher=7, seq=5, topic=0.2)
        b = ev(1, publisher=8, seq=0, topic=0.2)
        dc.on_publish(a)
        dc.on_publish(b)
        dc.on_delivery(1, a, 10.0)
        dc.on_delivery(1, b, 11.0)
        assert dc.stats.order_violations == 0

    def test_explicit_loss(self):
        dc = self.make()
        e = ev(0, topic=0.2)
        dc.on_publish(e)
        dc.on_loss(1, e)
        assert dc.stats.lost_explicit == 1
        assert dc.stats.missing == 0

    def test_matching_clients_vectorised(self):
        dc = self.make()
        assert set(dc.matching_clients(0.45).tolist()) == {1, 2}
        assert set(dc.matching_clients(0.95).tolist()) == set()

    def test_per_client_missing_diagnostics(self):
        dc = self.make()
        e = ev(0, topic=0.2)
        dc.on_publish(e)
        assert dc.per_client_missing() == {1: 1}


# ---------------------------------------------------------------------------
# HandoffLog
# ---------------------------------------------------------------------------
class TestHandoffLog:
    def test_first_attach_is_not_a_handoff(self):
        log = HandoffLog()
        log.on_connect(1, 10.0, None, 3)
        assert log.handoff_count == 0

    def test_same_broker_reconnect_counted_separately(self):
        log = HandoffLog()
        log.on_connect(1, 10.0, 3, 3)
        assert log.handoff_count == 0
        assert log.reconnects_same_broker == 1

    def test_delay_measures_first_delivery_only(self):
        log = HandoffLog()
        log.on_connect(1, 10.0, 3, 4)
        log.on_delivery(1, 150.0)
        log.on_delivery(1, 200.0)
        assert log.delays() == [140.0]
        assert log.mean_delay() == 140.0

    def test_disconnect_before_delivery_discards_open_record(self):
        log = HandoffLog()
        log.on_connect(1, 10.0, 3, 4)
        log.on_disconnect(1, 50.0)
        log.on_delivery(1, 150.0)
        assert log.delays() == []
        assert log.handoff_count == 1  # the handoff still happened

    def test_mean_delay_none_when_no_samples(self):
        assert HandoffLog().mean_delay() is None


# ---------------------------------------------------------------------------
# hub + summary
# ---------------------------------------------------------------------------
def test_hub_wires_delivery_and_handoffs():
    hub = MetricsHub()
    hub.delivery.register_subscription(1, 0.0, 1.0)
    hub.on_client_connect(1, 0.0, None, 0)
    hub.on_client_connect(1, 100.0, 0, 3)  # a handoff
    e = ev(0, topic=0.5)
    hub.on_publish(e)
    hub.on_delivery(1, e, 180.0)
    assert hub.handoffs.handoff_count == 1
    assert hub.mean_handoff_delay() == 80.0
    hub.account(m.CAT_MIGRATION, 10, False)
    assert hub.overhead_per_handoff() == 10.0


def test_overhead_per_handoff_none_without_handoffs():
    hub = MetricsHub()
    hub.account(m.CAT_MIGRATION, 10, False)
    assert hub.overhead_per_handoff() is None


def test_summarize_builds_row():
    hub = MetricsHub()
    hub.delivery.register_subscription(1, 0.0, 1.0)
    e = ev(0, topic=0.5)
    hub.on_publish(e)
    hub.on_delivery(1, e, 5.0)
    row = summarize("mhh", hub, {"k": 3}, sim_events=42, wall_seconds=0.1)
    assert isinstance(row, ResultRow)
    assert row.protocol == "mhh"
    assert row.delivered == 1
    assert row.params["k"] == 3
    d = row.as_dict()
    assert d["protocol"] == "mhh"
    assert d["missing"] == 0


class TestHandoffLogDiscardOpen:
    def test_discard_reports_count_and_keeps_records(self):
        log = HandoffLog()
        log.on_connect(1, 10.0, 3, 4)
        log.on_connect(2, 20.0, 5, 6)
        assert log.discard_open() == 2
        assert log.handoff_count == 2  # the handoffs still happened...
        assert log.delays() == []      # ...but contribute no delay samples

    def test_delivery_after_discard_cannot_fill_in_delay(self):
        log = HandoffLog()
        log.on_connect(1, 10.0, 3, 4)
        log.discard_open()
        log.on_delivery(1, 500.0)  # drain-phase delivery
        assert log.delays() == []
        assert log.records[0].delay is None

    def test_discard_is_idempotent_and_safe_when_empty(self):
        log = HandoffLog()
        assert log.discard_open() == 0
        log.on_connect(1, 10.0, 3, 4)
        assert log.discard_open() == 1
        assert log.discard_open() == 0

    def test_closed_records_survive_discard(self):
        log = HandoffLog()
        log.on_connect(1, 10.0, 3, 4)
        log.on_delivery(1, 60.0)   # closes the record (delay = 50)
        log.on_connect(2, 20.0, 5, 6)
        assert log.discard_open() == 1  # only client 2's was still open
        assert log.delays() == [50.0]

    def test_same_broker_reconnect_closes_an_open_record(self):
        log = HandoffLog()
        log.on_connect(1, 10.0, 3, 4)      # handoff, open
        log.on_disconnect(1, 30.0)
        log.on_connect(1, 40.0, 4, 4)      # same-broker reconnect
        assert log.discard_open() == 0     # nothing left open
        log.on_delivery(1, 90.0)
        assert log.delays() == []          # and nothing can be filled in

    def test_new_handoff_after_discard_measures_normally(self):
        log = HandoffLog()
        log.on_connect(1, 10.0, 3, 4)
        log.discard_open()
        log.on_connect(1, 100.0, 4, 5)
        log.on_delivery(1, 130.0)
        assert log.delays() == [30.0]
        assert log.median_delay() == 30.0
